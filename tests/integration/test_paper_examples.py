"""Integration tests reproducing the paper's worked examples end to end.

Experiment ids refer to the per-experiment index in DESIGN.md.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ProvenanceView,
    count_standalone_worlds,
    is_standalone_private,
    is_workflow_private,
    minimum_cost_safe_subset,
    standalone_out_set,
    standalone_privacy_level,
    workflow_privacy_level,
)
from repro.optim import solve_exact_ip, union_of_standalone_optima
from repro.reductions import make_m1, make_m2, input_names
from repro.workloads import (
    example5_problem,
    example6_majority_module,
    example6_one_one_module,
    example7_chain,
    figure1_view_attributes,
    figure1_workflow,
    proposition2_chain,
)
from repro.core import derive_cardinality_requirements, derive_set_requirements


class TestE1Figure1:
    """E1: the Figure-1 workflow, its relations and the view of Figure 1d."""

    def test_provenance_relation_has_four_executions(self):
        workflow = figure1_workflow()
        assert len(workflow.provenance_relation()) == 4

    def test_m1_functionality_matches_figure_1c(self):
        workflow = figure1_workflow()
        relation = workflow.module("m1").relation()
        assert len(relation) == 4
        assert {"a1": 1, "a2": 0, "a3": 1, "a4": 1, "a5": 0} in relation

    def test_view_matches_figure_1d(self):
        workflow = figure1_workflow()
        view = ProvenanceView(
            workflow, figure1_view_attributes() | {"a2", "a4", "a6", "a7"}
        )
        m1_view = workflow.module("m1").relation().project(["a1", "a3", "a5"])
        expected = {(0, 0, 1), (0, 1, 0), (1, 1, 0), (1, 1, 1)}
        assert {
            tuple(row[n] for n in ("a1", "a3", "a5")) for row in m1_view
        } == expected


class TestE2PossibleWorlds:
    """E2: Example 2/3 — 64 worlds, Γ=4 safety, 3-output failure case."""

    def test_sixty_four_worlds(self):
        workflow = figure1_workflow()
        m1 = workflow.module("m1")
        assert count_standalone_worlds(m1, figure1_view_attributes()) == 64

    def test_gamma4_safety_of_the_view(self):
        workflow = figure1_workflow()
        m1 = workflow.module("m1")
        assert is_standalone_private(m1, figure1_view_attributes(), 4)

    def test_out_set_for_input_00(self):
        workflow = figure1_workflow()
        m1 = workflow.module("m1")
        out = standalone_out_set(m1, {"a1": 0, "a2": 0}, figure1_view_attributes())
        assert out == {(0, 0, 1), (0, 1, 1), (1, 0, 0), (1, 1, 0)}

    def test_hiding_only_inputs_is_not_4_private(self):
        workflow = figure1_workflow()
        m1 = workflow.module("m1")
        assert standalone_privacy_level(m1, {"a3", "a4", "a5"}) == 3


class TestE7Proposition2:
    """E7: the one-one chain — workflow worlds collapse but privacy survives."""

    @pytest.mark.parametrize("k", [1, 2])
    def test_world_count_ratio_is_large(self, k):
        workflow = proposition2_chain(k)
        m1 = workflow.module("m1")
        gamma = 2
        hidden = {f"y0"}
        visible_m1 = set(m1.attribute_names) - hidden
        standalone_worlds = count_standalone_worlds(m1, visible_m1)
        # Standalone world count is Γ^(2^k); the workflow count is (Γ!)^(2^k/Γ),
        # which for Γ=2 equals 2^(2^k / 2) — strictly smaller for k >= 1.
        assert standalone_worlds == gamma ** (2**k)

    @pytest.mark.parametrize("k", [1, 2])
    def test_privacy_is_preserved_despite_the_collapse(self, k):
        workflow = proposition2_chain(k)
        hidden = {"y0"}
        visible = set(workflow.attribute_names) - hidden
        assert is_workflow_private(workflow, "m1", visible, 2)
        assert is_workflow_private(workflow, "m2", visible, 2)


class TestE9Example5:
    """E9: the Ω(n) gap between standalone assembly and the workflow optimum."""

    @pytest.mark.parametrize("n", [3, 6, 9])
    def test_costs_match_the_example(self, n):
        epsilon = 0.1
        problem = example5_problem(n, epsilon=epsilon)
        baseline = union_of_standalone_optima(problem).cost()
        optimum = solve_exact_ip(problem).cost()
        assert baseline == pytest.approx(n + 1)
        assert optimum == pytest.approx(2 + epsilon)

    def test_gap_is_linear_in_n(self):
        ratios = []
        for n in (4, 8, 12):
            problem = example5_problem(n)
            ratios.append(
                union_of_standalone_optima(problem).cost()
                / solve_exact_ip(problem).cost()
            )
        # Ratios grow roughly like n / 2.1.
        assert ratios[1] / ratios[0] == pytest.approx(9 / 5, rel=0.05)
        assert ratios[2] > ratios[1] > ratios[0]


class TestE14Example6:
    """E14: set lists blow up while cardinality lists stay tiny."""

    def test_one_one_module_lists(self):
        module = example6_one_one_module(2)
        set_list = derive_set_requirements(module, 4)
        card_list = derive_cardinality_requirements(module, 4)
        assert len(card_list) <= 3
        assert len(set_list) >= 2
        assert len(set_list) > len(card_list)

    def test_majority_module_lists(self):
        module = example6_majority_module(2)
        card_list = derive_cardinality_requirements(module, 2)
        pairs = {(o.alpha, o.beta) for o in card_list}
        assert pairs == {(3, 0), (0, 1)}


class TestE15Example7:
    """E15: standalone safety fails next to public modules; privatization repairs it."""

    def test_hiding_inputs_fails_next_to_constant_public_module(self):
        workflow = example7_chain(2)
        middle = workflow.module("m_mid")
        hidden = set(middle.input_names)
        visible = set(workflow.attribute_names) - hidden
        assert is_standalone_private(middle, set(middle.attribute_names) - hidden, 4)
        assert workflow_privacy_level(workflow, "m_mid", visible) == 1

    def test_hiding_outputs_fails_next_to_invertible_public_module(self):
        workflow = example7_chain(2)
        middle = workflow.module("m_mid")
        hidden = set(middle.output_names)
        visible = set(workflow.attribute_names) - hidden
        assert workflow_privacy_level(workflow, "m_mid", visible) == 1

    def test_privatization_restores_privacy(self):
        workflow = example7_chain(2)
        middle = workflow.module("m_mid")
        hidden = set(middle.input_names)
        visible = set(workflow.attribute_names) - hidden
        level = workflow_privacy_level(
            workflow, "m_mid", visible, hidden_public_modules={"m_head"}
        )
        assert level >= 4

    def test_example8_choice_of_privatized_module_follows_hidden_side(self):
        workflow = example7_chain(2)
        middle = workflow.module("m_mid")
        hidden_outputs = set(middle.output_names)
        visible = set(workflow.attribute_names) - hidden_outputs
        assert (
            workflow_privacy_level(
                workflow, "m_mid", visible, hidden_public_modules={"m_tail"}
            )
            >= 4
        )


class TestE5Theorem3Gap:
    """E5: the cost gap between m1 and m2 of the oracle lower bound."""

    def test_cost_gap_is_three_halves(self):
        ell = 8
        m1_cost = minimum_cost_safe_subset(
            make_m1(ell), 2, hidable=input_names(ell)
        ).cost
        m2_cost = minimum_cost_safe_subset(
            make_m2(ell, input_names(ell)[: ell // 2]), 2, hidable=input_names(ell)
        ).cost
        assert m2_cost == pytest.approx(ell / 2)
        assert m1_cost > 1.5 * m2_cost - 1
