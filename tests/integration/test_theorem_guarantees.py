"""Integration tests for the theorem-level guarantees (experiments E8–E17)."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    assemble_all_private_solution,
    assemble_general_solution,
    is_gamma_private_workflow,
)
from repro.optim import (
    STRENGTH_NO_CAP,
    STRENGTH_NO_SUM,
    build_cardinality_program,
    solve_cardinality_rounding,
    solve_exact_ip,
    solve_general_lp,
    solve_greedy,
    solve_set_lp,
)
from repro.reductions import (
    exact_label_cover,
    exact_set_cover,
    exact_vertex_cover,
    label_cover_to_general_secure_view,
    label_cover_to_set_secure_view,
    random_cubic_graph,
    random_label_cover,
    random_set_cover,
    set_cover_to_general_secure_view,
    set_cover_to_secure_view,
    vertex_cover_to_secure_view,
)
from repro.workloads import (
    example7_chain,
    figure1_workflow,
    random_problem,
    scientific_suite,
)


class TestE8Theorem4:
    """E8: assembling standalone guarantees yields workflow privacy."""

    def test_figure1_assembly_at_gamma_2(self):
        workflow = figure1_workflow()
        solution = assemble_all_private_solution(workflow, 2)
        assert is_gamma_private_workflow(workflow, solution.visible_attributes, 2)

    def test_assembly_with_suboptimal_per_module_choices(self):
        workflow = figure1_workflow()
        solution = assemble_all_private_solution(
            workflow,
            2,
            hidden_per_module={"m1": {"a1", "a2"}, "m2": {"a6"}, "m3": {"a7"}},
        )
        assert is_gamma_private_workflow(workflow, solution.visible_attributes, 2)


class TestE10CardinalityApproximation:
    """E10: Algorithm 1 stays within the Theorem-5 O(log n) factor."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rounding_within_logn_factor(self, seed):
        problem = random_problem(n_modules=12, kind="cardinality", seed=seed)
        optimum = solve_exact_ip(problem).cost()
        best = min(
            solve_cardinality_rounding(problem, seed=s).cost() for s in range(3)
        )
        n = len(problem.workflow)
        bound = max(16 * math.log(n), 1.0) * optimum
        assert best <= bound + 1e-6
        # Empirically the ratio is far smaller than the analysis constant.
        assert best <= 4 * optimum + 1e-6

    def test_weak_lp_values_never_exceed_full_lp(self):
        problem = random_problem(n_modules=10, kind="cardinality", seed=5)
        full = build_cardinality_program(problem).solve_relaxation().objective
        no_cap = (
            build_cardinality_program(problem, strength=STRENGTH_NO_CAP)
            .solve_relaxation()
            .objective
        )
        no_sum = (
            build_cardinality_program(problem, strength=STRENGTH_NO_SUM)
            .solve_relaxation()
            .objective
        )
        assert no_cap <= full + 1e-6
        assert no_sum <= full + 1e-6


class TestE11SetCoverReduction:
    """E11: the Theorem-5 hardness reduction preserves optima."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_optimum_preserved(self, seed):
        instance = random_set_cover(7, 5, seed=seed)
        problem = set_cover_to_secure_view(instance)
        assert solve_exact_ip(problem).cost() == pytest.approx(
            len(exact_set_cover(instance))
        )


class TestE12SetConstraints:
    """E12: ℓ_max rounding and the Figure-4 reduction."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_lmax_factor(self, seed):
        problem = random_problem(n_modules=12, kind="set", seed=seed)
        optimum = solve_exact_ip(problem).cost()
        rounded = solve_set_lp(problem).cost()
        assert rounded <= problem.lmax * optimum + 1e-6

    def test_label_cover_reduction_preserved(self):
        instance = random_label_cover(2, 2, 2, seed=7)
        problem = label_cover_to_set_secure_view(instance)
        assert solve_exact_ip(problem).cost() == pytest.approx(
            instance.cost(exact_label_cover(instance))
        )


class TestE13BoundedSharing:
    """E13: greedy (γ+1) guarantee and the Figure-5 reduction."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_greedy_factor_on_bounded_instances(self, seed):
        problem = random_problem(
            n_modules=12, kind="cardinality", seed=seed, max_sharing=2
        )
        gamma = problem.workflow.data_sharing_degree()
        assert solve_greedy(problem).cost() <= (gamma + 1) * solve_exact_ip(
            problem
        ).cost() + 1e-6

    def test_vertex_cover_reduction_preserved(self):
        instance = random_cubic_graph(8, seed=2)
        problem = vertex_cover_to_secure_view(instance)
        expected = instance.n_edges + len(exact_vertex_cover(instance))
        assert solve_exact_ip(problem).cost() == pytest.approx(expected)


class TestE16GeneralWorkflows:
    """E16/E15: Theorem-8 assembly and the general LP with privatization."""

    def test_theorem8_assembly_is_private(self):
        workflow = example7_chain(2)
        solution = assemble_general_solution(workflow, 2)
        assert is_gamma_private_workflow(
            workflow,
            solution.visible_attributes,
            2,
            hidden_public_modules=solution.privatized_modules,
        )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_general_lp_lmax_factor_on_mixed_instances(self, seed):
        problem = random_problem(
            n_modules=10, kind="set", seed=seed, private_fraction=0.6
        )
        optimum = solve_exact_ip(problem).cost()
        rounded = solve_general_lp(problem).cost()
        assert rounded <= problem.lmax * optimum + 1e-6

    def test_figure6_reduction_preserved(self):
        instance = random_label_cover(2, 2, 2, seed=9)
        problem = label_cover_to_general_secure_view(instance)
        assert solve_exact_ip(problem).cost() == pytest.approx(
            instance.cost(exact_label_cover(instance))
        )


class TestE17GeneralSetCover:
    """E17: the Theorem-9 reduction (no data sharing, cost = privatization)."""

    def test_optimum_preserved_and_sharing_free(self):
        instance = random_set_cover(6, 5, seed=3)
        problem = set_cover_to_general_secure_view(instance)
        assert problem.workflow.data_sharing_degree() == 1
        assert solve_exact_ip(problem).cost() == pytest.approx(
            len(exact_set_cover(instance))
        )


class TestE18Scalability:
    """E18: the LP-based solvers handle the scientific-workflow suite."""

    def test_suite_is_solvable_quickly(self):
        for problem in scientific_suite(sizes=(10, 25), seed=2):
            solution = solve_cardinality_rounding(problem, seed=0)
            problem.validate_solution(solution)
            greedy = solve_greedy(problem)
            problem.validate_solution(greedy)
