"""Tests for the possible-worlds enumerators (Definitions 1, 4 and 6)."""

from __future__ import annotations

import pytest

from repro.core import (
    Relation,
    count_standalone_worlds,
    enumerate_standalone_worlds,
    enumerate_workflow_worlds,
    is_standalone_world,
    is_workflow_world,
    standalone_out_set,
    workflow_out_set,
    workflow_out_sets,
)
from repro.exceptions import PrivacyError
from repro.workloads import example7_chain, figure1_view_attributes


FIGURE2_WORLDS = [
    # R1^1 .. R1^4 from Figure 2 of the paper, as (a1, a2, a3, a4, a5) tuples.
    [(0, 0, 0, 0, 1), (0, 1, 1, 0, 0), (1, 0, 1, 0, 0), (1, 1, 1, 0, 1)],
    [(0, 0, 0, 1, 1), (0, 1, 1, 1, 0), (1, 0, 1, 0, 0), (1, 1, 1, 0, 1)],
    [(0, 0, 1, 0, 0), (0, 1, 0, 0, 1), (1, 0, 1, 0, 0), (1, 1, 1, 0, 1)],
    [(0, 0, 1, 1, 0), (0, 1, 0, 1, 1), (1, 0, 1, 0, 0), (1, 1, 1, 0, 1)],
]


class TestStandaloneWorlds:
    def test_example2_counts_64_worlds(self, m1):
        assert count_standalone_worlds(m1, figure1_view_attributes()) == 64

    def test_enumeration_matches_count(self, m1):
        worlds = list(enumerate_standalone_worlds(m1, figure1_view_attributes()))
        assert len(worlds) == 64
        # Worlds are distinct relations.
        assert len(set(worlds)) == 64

    def test_true_relation_is_a_world(self, m1):
        assert is_standalone_world(m1.relation(), m1, figure1_view_attributes())

    def test_figure2_sample_relations_are_worlds(self, m1):
        for tuples in FIGURE2_WORLDS:
            candidate = Relation.from_tuples(m1.schema, tuples)
            assert is_standalone_world(candidate, m1, figure1_view_attributes())

    def test_fd_violating_relation_is_not_a_world(self, m1):
        tuples = [(0, 0, 0, 1, 1), (0, 0, 1, 1, 1)]
        candidate = Relation.from_tuples(m1.schema, tuples)
        assert not is_standalone_world(candidate, m1, figure1_view_attributes())

    def test_wrong_projection_is_not_a_world(self, m1):
        tuples = [(0, 0, 1, 1, 1), (0, 1, 1, 1, 0), (1, 0, 1, 1, 0), (1, 1, 1, 0, 1)]
        candidate = Relation.from_tuples(m1.schema, tuples)
        assert not is_standalone_world(candidate, m1, figure1_view_attributes())

    def test_all_visible_single_world(self, m1):
        assert count_standalone_worlds(m1, set(m1.attribute_names)) == 1

    def test_enumeration_respects_max_worlds(self, m1):
        worlds = list(
            enumerate_standalone_worlds(m1, figure1_view_attributes(), max_worlds=5)
        )
        assert len(worlds) == 5

    def test_work_limit_guard(self, m1):
        with pytest.raises(PrivacyError):
            list(enumerate_standalone_worlds(m1, set(), work_limit=1))

    def test_out_set_consistent_with_world_enumeration(self, m1):
        visible = figure1_view_attributes()
        expected = standalone_out_set(m1, {"a1": 0, "a2": 0}, visible)
        observed = set()
        for world in enumerate_standalone_worlds(m1, visible):
            for row in world:
                if row["a1"] == 0 and row["a2"] == 0:
                    observed.add((row["a3"], row["a4"], row["a5"]))
        assert observed == expected


class TestWorkflowWorlds:
    def test_true_provenance_relation_is_a_world(self, figure1):
        relation = figure1.provenance_relation()
        assert is_workflow_world(relation, figure1, set(figure1.attribute_names))

    def test_world_count_everything_visible_is_one(self, figure1):
        worlds = list(
            enumerate_workflow_worlds(figure1, set(figure1.attribute_names))
        )
        assert len(worlds) == 1

    def test_worlds_respect_public_modules(self):
        workflow = example7_chain(1)
        visible = set(workflow.attribute_names) - {"x0"}
        with_public = list(enumerate_workflow_worlds(workflow, visible))
        without_public = list(
            enumerate_workflow_worlds(
                workflow, visible, hidden_public_modules={"m_head"}
            )
        )
        assert len(without_public) >= len(with_public)

    def test_workflow_out_sets_cover_all_inputs(self, figure1):
        visible = set(figure1.attribute_names) - {"a4", "a5"}
        sets = workflow_out_sets(figure1, "m1", visible)
        assert set(sets) == {(0, 0), (0, 1), (1, 0), (1, 1)}
        assert all(len(out) == 4 for out in sets.values())

    def test_workflow_out_set_single_input(self, figure1):
        visible = set(figure1.attribute_names) - {"a4", "a5"}
        out = workflow_out_set(figure1, "m1", {"a1": 0, "a2": 0}, visible)
        assert len(out) == 4

    def test_work_limit_guard(self, figure1):
        with pytest.raises(PrivacyError):
            list(enumerate_workflow_worlds(figure1, set(), work_limit=1))

    def test_candidate_with_wrong_visible_projection_rejected(self, figure1):
        relation = figure1.provenance_relation()
        # Flip a visible attribute value in one row.
        rows = [dict(row) for row in relation]
        rows[0]["a1"] = 1 - rows[0]["a1"]
        candidate = Relation(figure1.schema, rows, check_domains=False)
        assert not is_workflow_world(
            candidate, figure1, set(figure1.attribute_names) - {"a4"}
        )
