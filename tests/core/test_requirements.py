"""Tests for requirement lists (set and cardinality constraints)."""

from __future__ import annotations

import pytest

from repro.core import (
    CardinalityRequirement,
    CardinalityRequirementList,
    SetRequirement,
    SetRequirementList,
    derive_cardinality_requirements,
    derive_set_requirements,
    derive_workflow_requirements,
)
from repro.exceptions import RequirementError
from repro.workloads import (
    example6_majority_module,
    example6_one_one_module,
    example7_chain,
    figure1_m1_module,
)


class TestSetRequirement:
    def test_satisfied_by_superset(self):
        option = SetRequirement(frozenset({"a"}), frozenset({"b"}))
        assert option.satisfied_by({"a", "b", "c"})
        assert not option.satisfied_by({"a"})

    def test_cost(self):
        option = SetRequirement(frozenset({"a"}), frozenset({"b"}))
        assert option.cost({"a": 2.0, "b": 3.0, "c": 9.0}) == pytest.approx(5.0)

    def test_dominates(self):
        small = SetRequirement(frozenset({"a"}), frozenset())
        big = SetRequirement(frozenset({"a"}), frozenset({"b"}))
        assert small.dominates(big)
        assert not big.dominates(small)


class TestSetRequirementList:
    def make(self) -> SetRequirementList:
        return SetRequirementList(
            "m",
            [
                SetRequirement(frozenset({"a"}), frozenset()),
                SetRequirement(frozenset(), frozenset({"b", "c"})),
                SetRequirement(frozenset({"a"}), frozenset({"b"})),
            ],
        )

    def test_empty_list_rejected(self):
        with pytest.raises(RequirementError):
            SetRequirementList("m", [])

    def test_satisfied_by_any_option(self):
        requirement = self.make()
        assert requirement.satisfied_by({"a"})
        assert requirement.satisfied_by({"b", "c"})
        assert not requirement.satisfied_by({"b"})

    def test_cheapest_option(self):
        requirement = self.make()
        costs = {"a": 10.0, "b": 1.0, "c": 1.0}
        cheapest = requirement.cheapest_option(costs)
        assert cheapest.attributes == {"b", "c"}

    def test_normalized_removes_dominated(self):
        requirement = self.make().normalized()
        # {a, b} is dominated by {a}.
        assert len(requirement) == 2
        assert all(option.attributes != {"a", "b"} for option in requirement)

    def test_validate_against_module(self, m1):
        good = SetRequirementList(
            "m1", [SetRequirement(frozenset({"a1"}), frozenset({"a3"}))]
        )
        good.validate_against(m1)
        bad = SetRequirementList(
            "m1", [SetRequirement(frozenset({"a3"}), frozenset())]
        )
        with pytest.raises(RequirementError):
            bad.validate_against(m1)

    def test_max_option_size(self):
        assert self.make().max_option_size == 2


class TestCardinalityRequirement:
    def test_negative_rejected(self):
        with pytest.raises(RequirementError):
            CardinalityRequirement(-1, 0)

    def test_satisfied_by_counts(self, m1):
        requirement = CardinalityRequirement(1, 2)
        assert requirement.satisfied_by({"a1", "a3", "a4"}, m1)
        assert not requirement.satisfied_by({"a1", "a3"}, m1)

    def test_dominates(self):
        assert CardinalityRequirement(1, 0).dominates(CardinalityRequirement(2, 1))
        assert not CardinalityRequirement(2, 0).dominates(CardinalityRequirement(1, 1))


class TestCardinalityRequirementList:
    def make(self) -> CardinalityRequirementList:
        return CardinalityRequirementList(
            "m1",
            [
                CardinalityRequirement(2, 0),
                CardinalityRequirement(0, 2),
                CardinalityRequirement(2, 1),
            ],
        )

    def test_empty_rejected(self):
        with pytest.raises(RequirementError):
            CardinalityRequirementList("m", [])

    def test_satisfied_by(self, m1):
        requirement = self.make()
        assert requirement.satisfied_by({"a1", "a2"}, m1)
        assert requirement.satisfied_by({"a3", "a4"}, m1)
        assert not requirement.satisfied_by({"a1", "a3"}, m1)

    def test_normalized_keeps_pareto_frontier(self):
        requirement = self.make().normalized()
        pairs = {(option.alpha, option.beta) for option in requirement}
        assert pairs == {(2, 0), (0, 2)}

    def test_validate_against_bounds(self, m1):
        too_many_inputs = CardinalityRequirementList(
            "m1", [CardinalityRequirement(3, 0)]
        )
        with pytest.raises(RequirementError):
            too_many_inputs.validate_against(m1)
        too_many_outputs = CardinalityRequirementList(
            "m1", [CardinalityRequirement(0, 4)]
        )
        with pytest.raises(RequirementError):
            too_many_outputs.validate_against(m1)

    def test_expansion_to_set_requirements(self, m1):
        requirement = CardinalityRequirementList("m1", [CardinalityRequirement(0, 2)])
        expanded = requirement.to_set_requirements(m1)
        assert len(expanded) == 3  # C(3, 2) choices of output pairs
        assert all(len(option.attributes) == 2 for option in expanded)


class TestDerivation:
    def test_derived_set_requirements_match_example3(self):
        module = figure1_m1_module()
        requirement = derive_set_requirements(module, 4)
        attribute_sets = {frozenset(option.attributes) for option in requirement}
        # Hiding any two of the three outputs is safe for Γ = 4 (Example 3).
        assert frozenset({"a4", "a5"}) in attribute_sets
        assert frozenset({"a3", "a4"}) in attribute_sets
        assert frozenset({"a3", "a5"}) in attribute_sets

    def test_derived_cardinality_requirements_one_one(self):
        module = example6_one_one_module(2)
        requirement = derive_cardinality_requirements(module, 4)
        pairs = {(option.alpha, option.beta) for option in requirement}
        assert (2, 0) in pairs and (0, 2) in pairs

    def test_derived_cardinality_requirements_majority(self):
        module = example6_majority_module(2)
        requirement = derive_cardinality_requirements(module, 2)
        pairs = {(option.alpha, option.beta) for option in requirement}
        assert (0, 1) in pairs and (3, 0) in pairs

    def test_derivation_infeasible_gamma(self):
        module = example6_majority_module(2)
        with pytest.raises(RequirementError):
            derive_cardinality_requirements(module, 100)

    def test_workflow_requirements_cover_private_modules_only(self):
        workflow = example7_chain(2)
        lists = derive_workflow_requirements(workflow, 2, kind="set")
        assert set(lists) == {"m_mid"}

    def test_workflow_requirements_unknown_kind(self, figure1):
        with pytest.raises(RequirementError):
            derive_workflow_requirements(figure1, 2, kind="weird")

    def test_example6_set_list_blowup_vs_cardinality(self):
        # The Example-6 contrast: the set list is much longer than the
        # cardinality list for the same one-one module.
        module = example6_one_one_module(2)
        set_list = derive_set_requirements(module, 4)
        card_list = derive_cardinality_requirements(module, 4)
        assert len(set_list) > len(card_list)
