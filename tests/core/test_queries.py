"""Tests for structural provenance queries over workflows and views."""

from __future__ import annotations

import pytest

from repro.core import (
    ProvenanceView,
    attribute_dependency_graph,
    depends_on,
    downstream_attributes,
    execution_lineage,
    module_lineage,
    producing_path,
    upstream_attributes,
    view_dependency_pairs,
    visible_upstream,
)
from repro.exceptions import SchemaError


class TestDependencyGraph:
    def test_graph_edges_follow_modules(self, figure1):
        graph = attribute_dependency_graph(figure1)
        assert graph.has_edge("a1", "a3")
        assert graph.has_edge("a4", "a6")
        assert graph.has_edge("a4", "a7")
        assert not graph.has_edge("a6", "a7")
        assert graph.edges["a1", "a3"]["module"] == "m1"

    def test_upstream_attributes(self, figure1):
        assert upstream_attributes(figure1, "a6") == {"a1", "a2", "a3", "a4"}
        assert upstream_attributes(figure1, "a1") == frozenset()

    def test_downstream_attributes(self, figure1):
        assert downstream_attributes(figure1, "a4") == {"a6", "a7"}
        assert downstream_attributes(figure1, "a7") == frozenset()

    def test_depends_on(self, figure1):
        assert depends_on(figure1, "a7", "a1")
        assert depends_on(figure1, "a7", "a7")
        assert not depends_on(figure1, "a3", "a6")

    def test_unknown_attribute_rejected(self, figure1):
        with pytest.raises(SchemaError):
            upstream_attributes(figure1, "zzz")
        with pytest.raises(SchemaError):
            depends_on(figure1, "a7", "zzz")

    def test_producing_path(self, figure1):
        assert producing_path(figure1, "a1", "a6") == ["m1", "m2"]
        assert producing_path(figure1, "a6", "a1") == []

    def test_module_lineage(self, figure1):
        assert module_lineage(figure1, "a7") == {"m1", "m3"}
        assert module_lineage(figure1, "a3") == {"m1"}
        assert module_lineage(figure1, "a1") == frozenset()

    def test_execution_lineage(self, figure1):
        lineage = execution_lineage(figure1, {"a1": 1, "a2": 1}, "a6")
        assert set(lineage) == {"a1", "a2", "a3", "a4", "a6"}
        assert lineage["a6"] == 1


class TestViewQueries:
    def test_visible_upstream(self, figure1):
        view = ProvenanceView.from_hidden(figure1, {"a3", "a4"})
        assert visible_upstream(view, "a6") == {"a1", "a2"}

    def test_view_dependency_pairs_preserved(self, figure1):
        full = ProvenanceView.from_hidden(figure1, set())
        partial = ProvenanceView.from_hidden(figure1, {"a4"})
        full_pairs = view_dependency_pairs(full)
        partial_pairs = view_dependency_pairs(partial)
        # Hiding a4 only removes pairs that mention a4; visible-to-visible
        # dependencies survive (the paper's utility claim for projections).
        assert partial_pairs <= full_pairs
        removed = full_pairs - partial_pairs
        assert all("a4" in pair for pair in removed)
        assert ("a1", "a7") in partial_pairs

    def test_dependency_pairs_are_transitive(self, figure1):
        view = ProvenanceView.from_hidden(figure1, set())
        pairs = view_dependency_pairs(view)
        assert ("a1", "a6") in pairs and ("a2", "a7") in pairs
