"""Unit tests for domains, attributes and schemas."""

from __future__ import annotations

import pytest

from repro.core import (
    BOOLEAN,
    Attribute,
    Domain,
    Schema,
    boolean_attributes,
    integer_domain,
)
from repro.exceptions import DomainError, SchemaError


class TestDomain:
    def test_boolean_domain_has_two_values(self):
        assert BOOLEAN.size == 2
        assert list(BOOLEAN) == [0, 1]

    def test_values_are_deduplicated_preserving_order(self):
        domain = Domain([3, 1, 3, 2, 1])
        assert domain.values == (3, 1, 2)

    def test_empty_domain_rejected(self):
        with pytest.raises(DomainError):
            Domain([])

    def test_contains(self):
        domain = Domain(["x", "y"])
        assert "x" in domain
        assert "z" not in domain

    def test_index(self):
        domain = Domain([10, 20, 30])
        assert domain.index(20) == 1

    def test_validate_accepts_member(self):
        assert BOOLEAN.validate(1) == 1

    def test_validate_rejects_non_member(self):
        with pytest.raises(DomainError):
            BOOLEAN.validate(2)

    def test_integer_domain_range(self):
        domain = integer_domain(4, start=1)
        assert domain.values == (1, 2, 3, 4)

    def test_integer_domain_requires_positive_size(self):
        with pytest.raises(DomainError):
            integer_domain(0)

    def test_default_name(self):
        domain = Domain([1, 2, 3])
        assert domain.name == "domain3"


class TestAttribute:
    def test_defaults_boolean_unit_cost(self):
        attr = Attribute("a")
        assert attr.domain == BOOLEAN
        assert attr.cost == 1.0

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_negative_cost_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("a", BOOLEAN, cost=-1.0)

    def test_with_cost_returns_new_attribute(self):
        attr = Attribute("a", BOOLEAN, cost=1.0)
        other = attr.with_cost(5.0)
        assert other.cost == 5.0
        assert attr.cost == 1.0
        assert other.name == "a"

    def test_boolean_attributes_with_mapping_costs(self):
        attrs = boolean_attributes(["a", "b"], {"a": 2.0})
        assert attrs[0].cost == 2.0
        assert attrs[1].cost == 1.0

    def test_boolean_attributes_with_scalar_cost(self):
        attrs = boolean_attributes(["a", "b"], 3.5)
        assert all(attr.cost == 3.5 for attr in attrs)


class TestSchema:
    def make(self) -> Schema:
        return Schema(boolean_attributes(["a", "b", "c"]))

    def test_len_and_iteration_order(self):
        schema = self.make()
        assert len(schema) == 3
        assert schema.names == ("a", "b", "c")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(boolean_attributes(["a", "a"]))

    def test_getitem_and_contains(self):
        schema = self.make()
        assert schema["b"].name == "b"
        assert "c" in schema
        assert "z" not in schema

    def test_getitem_unknown_raises(self):
        with pytest.raises(SchemaError):
            self.make()["z"]

    def test_total_cost_all_and_subset(self):
        schema = Schema(boolean_attributes(["a", "b", "c"], {"a": 2.0, "b": 3.0}))
        assert schema.total_cost() == pytest.approx(6.0)
        assert schema.total_cost(["a", "c"]) == pytest.approx(3.0)

    def test_subset_preserves_order(self):
        schema = self.make()
        sub = schema.subset(["c", "a"])
        assert sub.names == ("a", "c")

    def test_subset_unknown_raises(self):
        with pytest.raises(SchemaError):
            self.make().subset(["z"])

    def test_union_merges_and_checks_conflicts(self):
        left = Schema(boolean_attributes(["a", "b"]))
        right = Schema(boolean_attributes(["b", "c"]))
        merged = left.union(right)
        assert merged.names == ("a", "b", "c")

    def test_union_conflicting_declaration_raises(self):
        left = Schema([Attribute("a", BOOLEAN, cost=1.0)])
        right = Schema([Attribute("a", BOOLEAN, cost=2.0)])
        with pytest.raises(SchemaError):
            left.union(right)

    def test_project_order(self):
        schema = self.make()
        assert schema.project_order(["c", "a"]) == ("a", "c")

    def test_iter_assignments_counts(self):
        schema = self.make()
        assignments = list(schema.iter_assignments(["a", "b"]))
        assert len(assignments) == 4
        assert {"a": 0, "b": 0} in assignments

    def test_assignment_count(self):
        schema = Schema(
            [Attribute("a", BOOLEAN), Attribute("i", integer_domain(3))]
        )
        assert schema.assignment_count() == 6
        assert schema.assignment_count(["i"]) == 3

    def test_validate_assignment(self):
        schema = self.make()
        schema.validate_assignment({"a": 0, "b": 1})
        with pytest.raises(DomainError):
            schema.validate_assignment({"a": 7})

    def test_equality_and_hash(self):
        assert self.make() == self.make()
        assert hash(self.make()) == hash(self.make())

    def test_domain_and_cost_accessors(self):
        schema = Schema(boolean_attributes(["a"], {"a": 4.0}))
        assert schema.domain_of("a") == BOOLEAN
        assert schema.cost_of("a") == 4.0
