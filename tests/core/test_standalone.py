"""Tests for the standalone Secure-View machinery (Section 3)."""

from __future__ import annotations

import pytest

from repro.core import (
    SafeViewOracle,
    enumerate_safe_hidden_subsets,
    minimal_safe_cardinality_pairs,
    minimal_safe_hidden_subsets,
    minimum_cost_safe_subset,
    safe_cardinality_pairs,
)
from repro.exceptions import InfeasibleError, PrivacyError
from repro.workloads import (
    example6_majority_module,
    example6_one_one_module,
    figure1_m1_module,
    identity_module,
    parity_module,
)


class TestSafeViewOracle:
    def test_counts_calls_and_memoizes(self, m1):
        oracle = SafeViewOracle(m1, 4)
        assert oracle.is_safe({"a1", "a3", "a5"})
        assert oracle.is_safe({"a1", "a3", "a5"})
        assert oracle.calls == 2  # calls are counted even when memoized

    def test_hidden_side_interface(self, m1):
        oracle = SafeViewOracle(m1, 4)
        assert oracle.is_safe_hidden({"a2", "a4"})
        assert not oracle.is_safe_hidden({"a1"})

    def test_reset_counter(self, m1):
        oracle = SafeViewOracle(m1, 2)
        oracle.is_safe({"a1"})
        oracle.reset_counter()
        assert oracle.calls == 0

    def test_gamma_validation(self, m1):
        with pytest.raises(PrivacyError):
            SafeViewOracle(m1, 0)


class TestMinimumCostSafeSubset:
    def test_figure1_m1_gamma4_cost(self):
        # With unit costs, hiding any 2 attributes that work is optimal.
        module = figure1_m1_module()
        solution = minimum_cost_safe_subset(module, 4)
        assert solution.cost == pytest.approx(2.0)
        assert len(solution.hidden_attributes) == 2

    def test_respects_attribute_costs(self):
        module = figure1_m1_module(costs={"a4": 10.0, "a5": 10.0, "a2": 10.0})
        solution = minimum_cost_safe_subset(module, 4)
        # Cheap safe pairs avoid the expensive attributes.
        assert solution.cost < 10.0

    def test_gamma_one_requires_nothing(self, m1):
        solution = minimum_cost_safe_subset(m1, 1)
        assert solution.cost == 0.0
        assert solution.hidden_attributes == frozenset()

    def test_infeasible_gamma_raises(self):
        module = parity_module("p", ["a", "b"], "z")
        with pytest.raises(InfeasibleError):
            minimum_cost_safe_subset(module, 4)  # range size is only 2

    def test_cost_limit_decision_version(self, m1):
        with pytest.raises(InfeasibleError):
            minimum_cost_safe_subset(m1, 4, cost_limit=1.0)
        solution = minimum_cost_safe_subset(m1, 4, cost_limit=2.0)
        assert solution.cost <= 2.0

    def test_hidable_restriction(self, m1):
        solution = minimum_cost_safe_subset(m1, 4, hidable=["a3", "a4", "a5"])
        assert solution.hidden_attributes <= {"a3", "a4", "a5"}

    def test_solution_records_oracle_calls(self, m1):
        solution = minimum_cost_safe_subset(m1, 4)
        assert solution.oracle_calls > 0
        assert solution.gamma == 4
        assert solution.meta["privacy_level"] >= 4

    def test_solution_is_actually_safe(self, m1):
        from repro.core import is_standalone_private

        solution = minimum_cost_safe_subset(m1, 4)
        assert is_standalone_private(m1, solution.visible_attributes, 4)


class TestEnumeration:
    def test_safe_hidden_subsets_are_upward_closed(self, m1):
        safe = enumerate_safe_hidden_subsets(m1, 4)
        safe_set = set(safe)
        all_attrs = set(m1.attribute_names)
        for hidden in safe:
            for extra in all_attrs - hidden:
                assert frozenset(hidden | {extra}) in safe_set

    def test_minimal_subsets_form_antichain(self, m1):
        minimal = minimal_safe_hidden_subsets(m1, 4)
        for a in minimal:
            for b in minimal:
                if a != b:
                    assert not a <= b

    def test_minimal_subsets_cover_all_safe_sets(self, m1):
        minimal = minimal_safe_hidden_subsets(m1, 4)
        for hidden in enumerate_safe_hidden_subsets(m1, 4):
            assert any(m <= hidden for m in minimal)

    def test_identity_minimal_hidden_sets(self):
        module = identity_module("id", ["a", "b"], ["c", "d"])
        minimal = minimal_safe_hidden_subsets(module, 4)
        # Hiding both inputs or both outputs are the canonical options; any
        # other minimal option must also hide two attributes.
        assert frozenset({"a", "b"}) in minimal
        assert frozenset({"c", "d"}) in minimal
        assert all(len(m) == 2 for m in minimal)


class TestCardinalityPairs:
    def test_example6_one_one_pairs(self):
        module = example6_one_one_module(2)
        pairs = minimal_safe_cardinality_pairs(module, 4)
        assert (2, 0) in pairs
        assert (0, 2) in pairs

    def test_example6_majority_pairs(self):
        module = example6_majority_module(2)  # 4 inputs, threshold 2
        pairs = minimal_safe_cardinality_pairs(module, 2)
        assert (0, 1) in pairs
        alphas = [alpha for alpha, beta in pairs if beta == 0]
        assert alphas and min(alphas) == 3  # k + 1 hidden inputs

    def test_pairs_are_monotone_upward(self, m1):
        pairs = set(safe_cardinality_pairs(m1, 4))
        n_in, n_out = 2, 3
        for alpha, beta in list(pairs):
            for a2 in range(alpha, n_in + 1):
                for b2 in range(beta, n_out + 1):
                    assert (a2, b2) in pairs

    def test_minimal_pairs_are_pareto(self, m1):
        minimal = minimal_safe_cardinality_pairs(m1, 4)
        for a in minimal:
            for b in minimal:
                if a != b:
                    assert not (a[0] <= b[0] and a[1] <= b[1])
