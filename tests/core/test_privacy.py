"""Tests of Γ-privacy: standalone counting check and workflow brute force.

These encode the numbers worked out in Examples 2–4 of the paper.
"""

from __future__ import annotations

import pytest

from repro.core import (
    hidden_output_completions,
    is_gamma_private_workflow,
    is_standalone_private,
    is_workflow_private,
    standalone_out_counts,
    standalone_out_set,
    standalone_privacy_level,
    workflow_privacy_level,
)
from repro.exceptions import PrivacyError
from repro.workloads import constant_module, identity_module, parity_module


class TestStandalonePrivacy:
    def test_example3_visible_a1_a3_a5_is_safe_for_gamma_4(self, m1):
        assert standalone_privacy_level(m1, {"a1", "a3", "a5"}) == 4
        assert is_standalone_private(m1, {"a1", "a3", "a5"}, 4)

    def test_example3_hiding_two_outputs_is_safe_for_gamma_4(self, m1):
        # V = {a1, a2, a3}: hide outputs a4, a5.
        assert standalone_privacy_level(m1, {"a1", "a2", "a3"}) == 4

    def test_example3_hiding_only_inputs_gives_three_outputs(self, m1):
        # V = {a3, a4, a5}: only 3 possible outputs, so not 4-private.
        assert standalone_privacy_level(m1, {"a3", "a4", "a5"}) == 3
        assert not is_standalone_private(m1, {"a3", "a4", "a5"}, 4)
        assert is_standalone_private(m1, {"a3", "a4", "a5"}, 3)

    def test_all_visible_gives_level_one(self, m1):
        assert standalone_privacy_level(m1, set(m1.attribute_names)) == 1

    def test_all_hidden_gives_range_size(self, m1):
        assert standalone_privacy_level(m1, set()) == m1.range_size()

    def test_hidden_output_completions(self, m1):
        assert hidden_output_completions(m1, {"a1", "a3", "a5"}) == 2
        assert hidden_output_completions(m1, set(m1.attribute_names)) == 1
        assert hidden_output_completions(m1, {"a1", "a2"}) == 8

    def test_out_counts_keyed_by_visible_input(self, m1):
        counts = standalone_out_counts(m1, {"a1", "a3", "a5"})
        assert set(counts) == {(0,), (1,)}
        assert all(value == 4 for value in counts.values())

    def test_out_set_example2(self, m1):
        # From Figure 2: input (0,0) can map to (0,0,1), (0,1,1), (1,0,0), (1,1,0).
        out = standalone_out_set(m1, {"a1": 0, "a2": 0}, {"a1", "a3", "a5"})
        assert out == {(0, 0, 1), (0, 1, 1), (1, 0, 0), (1, 1, 0)}

    def test_gamma_must_be_positive(self, m1):
        with pytest.raises(PrivacyError):
            is_standalone_private(m1, {"a1"}, 0)

    def test_constant_module_levels(self):
        module = constant_module("c", ["a", "b"], ["z"])
        # Output visible: the constant value is revealed exactly.
        assert standalone_privacy_level(module, {"a", "b", "z"}) == 1
        # Output hidden: two completions remain possible.
        assert standalone_privacy_level(module, {"a", "b"}) == 2
        assert standalone_privacy_level(module, set()) == 2

    def test_identity_module_input_or_output_hiding(self):
        module = identity_module("id", ["a", "b"], ["c", "d"])
        # Hiding both inputs (one-one function): 4 possible outputs.
        assert standalone_privacy_level(module, {"c", "d"}) == 4
        # Hiding both outputs: 4 completions.
        assert standalone_privacy_level(module, {"a", "b"}) == 4
        # Hiding one output only halves the uncertainty.
        assert standalone_privacy_level(module, {"a", "b", "c"}) == 2

    def test_parity_module_level(self):
        module = parity_module("p", ["a", "b"], "z")
        # Hiding only the output, or only one input, leaves two candidates.
        assert standalone_privacy_level(module, {"a", "b"}) == 2
        assert standalone_privacy_level(module, {"a", "z"}) == 2
        # Everything visible pins the output down exactly.
        assert standalone_privacy_level(module, {"a", "b", "z"}) == 1

    def test_restricted_relation_changes_level(self, m1):
        restricted = m1.relation_for_inputs([{"a1": 0, "a2": 0}, {"a1": 0, "a2": 1}])
        level = standalone_privacy_level(m1, {"a1", "a3", "a5"}, relation=restricted)
        assert level == 4


class TestWorkflowPrivacy:
    def test_everything_visible_gives_level_one(self, figure1):
        level = workflow_privacy_level(figure1, "m1", set(figure1.attribute_names))
        assert level == 1

    def test_hiding_standalone_safe_set_preserves_gamma_4(self, figure1):
        visible = set(figure1.attribute_names) - {"a4", "a5"}
        assert workflow_privacy_level(figure1, "m1", visible) == 4
        assert is_workflow_private(figure1, "m1", visible, 4)

    def test_workflow_privacy_monotone_in_hiding(self, figure1):
        small = set(figure1.attribute_names) - {"a4"}
        large = set(figure1.attribute_names) - {"a4", "a5", "a2"}
        assert workflow_privacy_level(figure1, "m1", large) >= workflow_privacy_level(
            figure1, "m1", small
        )

    def test_whole_workflow_gamma_private(self, figure1):
        visible = set(figure1.attribute_names) - {"a3", "a4", "a5", "a6", "a7"}
        assert is_gamma_private_workflow(figure1, visible, 2)

    def test_whole_workflow_not_private_when_everything_visible(self, figure1):
        assert not is_gamma_private_workflow(figure1, set(figure1.attribute_names), 2)

    def test_gamma_validation(self, figure1):
        with pytest.raises(PrivacyError):
            is_workflow_private(figure1, "m1", set(), 0)

    def test_tiny_chain_privacy(self, tiny_chain):
        visible = set(tiny_chain.attribute_names) - {"b0", "b1"}
        assert is_workflow_private(tiny_chain, "first", visible, 4)
        assert is_workflow_private(tiny_chain, "second", visible, 2)
