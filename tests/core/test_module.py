"""Unit tests for modules (functionality relations with FD I -> O)."""

from __future__ import annotations

import pytest

from repro.core import Module, boolean_attributes, tabulate_function
from repro.exceptions import SchemaError, WiringError
from repro.workloads import (
    constant_module,
    identity_module,
    parity_module,
    random_permutation_module,
    xor_mask_module,
)


class TestConstruction:
    def test_input_output_overlap_rejected(self):
        a, b = boolean_attributes(["a", "b"])
        with pytest.raises(WiringError):
            Module("m", [a, b], [a], lambda x: {"a": 0})

    def test_empty_output_rejected(self):
        a, = boolean_attributes(["a"])
        with pytest.raises(WiringError):
            Module("m", [a], [], lambda x: {})

    def test_empty_name_rejected(self):
        a, b = boolean_attributes(["a", "b"])
        with pytest.raises(SchemaError):
            Module("", [a], [b], lambda x: {"b": x["a"]})

    def test_negative_privatization_cost_rejected(self):
        a, b = boolean_attributes(["a", "b"])
        with pytest.raises(SchemaError):
            Module("m", [a], [b], lambda x: {"b": x["a"]}, privatization_cost=-1)

    def test_schema_accessors(self, m1):
        assert m1.input_names == ("a1", "a2")
        assert m1.output_names == ("a3", "a4", "a5")
        assert m1.attribute_names == ("a1", "a2", "a3", "a4", "a5")
        assert set(m1.schema.names) == set(m1.attribute_names)

    def test_public_private_flags(self):
        module = constant_module("c", ["a"], ["b"], private=False)
        assert module.public and not module.private
        private = module.as_private()
        assert private.private


class TestEvaluation:
    def test_apply_matches_figure1(self, m1):
        assert m1.apply({"a1": 0, "a2": 0}) == {"a3": 0, "a4": 1, "a5": 1}
        assert m1.apply({"a1": 1, "a2": 1}) == {"a3": 1, "a4": 0, "a5": 1}

    def test_apply_ignores_extra_attributes(self, m1):
        out = m1.apply({"a1": 1, "a2": 0, "junk": 9})
        assert out == {"a3": 1, "a4": 1, "a5": 0}

    def test_apply_validates_input_domain(self, m1):
        with pytest.raises(Exception):
            m1.apply({"a1": 3, "a2": 0})

    def test_callable_protocol(self, m1):
        assert m1({"a1": 0, "a2": 1}) == m1.apply({"a1": 0, "a2": 1})

    def test_bad_function_output_detected(self):
        a, b = boolean_attributes(["a", "b"])
        module = Module("m", [a], [b], lambda x: {"wrong": 1})
        with pytest.raises(SchemaError):
            module.apply({"a": 0})


class TestRelation:
    def test_relation_size_equals_domain(self, m1):
        rel = m1.relation()
        assert len(rel) == 4
        rel.assert_fd(m1.input_names, m1.output_names)

    def test_relation_matches_figure1c(self, m1):
        rel = m1.relation()
        assert {"a1": 0, "a2": 1, "a3": 1, "a4": 1, "a5": 0} in rel

    def test_relation_is_cached(self, m1):
        assert m1.relation() is m1.relation()

    def test_relation_for_inputs_restricts(self, m1):
        rel = m1.relation_for_inputs([{"a1": 0, "a2": 0}, {"a1": 0, "a2": 0}])
        assert len(rel) == 1

    def test_tabulate_function(self, m1):
        table = tabulate_function(m1)
        assert table[(0, 0)] == (0, 1, 1)
        assert len(table) == 4


class TestClassification:
    def test_identity_is_one_to_one_and_invertible(self):
        module = identity_module("id", ["a", "b"], ["c", "d"])
        assert module.is_one_to_one()
        assert module.is_invertible()
        assert not module.is_constant()

    def test_constant_module_classification(self):
        module = constant_module("c", ["a", "b"], ["z"])
        assert module.is_constant()
        assert not module.is_one_to_one()

    def test_parity_not_one_to_one(self):
        module = parity_module("p", ["a", "b"], "z")
        assert not module.is_one_to_one()

    def test_random_permutation_is_bijection(self):
        module = random_permutation_module("perm", ["a", "b"], ["c", "d"], seed=1)
        assert module.is_invertible()
        assert len(module.image()) == 4

    def test_xor_mask_is_invertible(self):
        module = xor_mask_module("x", ["a", "b"], ["c", "d"], mask=[1, 0])
        assert module.is_invertible()

    def test_domain_and_range_sizes(self, m1):
        assert m1.domain_size() == 4
        assert m1.range_size() == 8


class TestDerivedModules:
    def test_renamed_keeps_behaviour(self, m1):
        clone = m1.renamed("other")
        assert clone.name == "other"
        assert clone.apply({"a1": 1, "a2": 0}) == m1.apply({"a1": 1, "a2": 0})

    def test_with_function_replaces_behaviour(self, m1):
        flipped = m1.with_function(lambda x: {"a3": 0, "a4": 0, "a5": 0})
        assert flipped.apply({"a1": 1, "a2": 1}) == {"a3": 0, "a4": 0, "a5": 0}
        assert flipped.name == m1.name
