"""Tests for the reconstruction-attack adversary simulation."""

from __future__ import annotations

import pytest

from repro.core import (
    SecureViewProblem,
    candidate_outputs,
    reconstruction_attack,
)
from repro.exceptions import PrivacyError
from repro.optim import solve_exact_ip
from repro.workloads import example7_chain


class TestCandidateOutputs:
    def test_fully_visible_view_pins_output(self, figure1):
        out = candidate_outputs(
            figure1, "m1", {"a1": 0, "a2": 0}, set(figure1.attribute_names)
        )
        assert out == {(0, 1, 1)}

    def test_protected_view_keeps_gamma_candidates(self, figure1):
        visible = set(figure1.attribute_names) - {"a4", "a5"}
        out = candidate_outputs(figure1, "m1", {"a1": 1, "a2": 0}, visible)
        assert len(out) == 4

    def test_unknown_input_rejected(self, tiny_chain):
        with pytest.raises(PrivacyError):
            candidate_outputs(
                tiny_chain,
                "second",
                {"b0": 0, "b1": 0},
                set(tiny_chain.attribute_names),
                relation=tiny_chain.provenance_relation_for([{"a0": 0, "a1": 1}]),
            )


class TestReconstructionAttack:
    def test_unprotected_view_recovers_the_module(self, figure1):
        report = reconstruction_attack(
            figure1, "m1", set(figure1.attribute_names), gamma_target=2
        )
        assert report.achieved_gamma == 1
        assert report.breaches_target
        assert all(exposure.recovered_correctly for exposure in report.exposures)
        assert report.worst_guessing_probability == 1.0

    def test_protected_view_meets_gamma(self, figure1):
        problem = SecureViewProblem.from_standalone_analysis(figure1, 2, kind="set")
        solution = solve_exact_ip(problem)
        report = reconstruction_attack(
            figure1, "m1", solution.visible_attributes, gamma_target=2
        )
        assert not report.breaches_target
        assert report.worst_guessing_probability <= 0.5
        assert not report.exposed_inputs

    def test_guessing_probability_is_one_over_gamma(self, figure1):
        visible = set(figure1.attribute_names) - {"a4", "a5"}
        report = reconstruction_attack(figure1, "m1", visible, gamma_target=4)
        assert report.achieved_gamma == 4
        assert report.worst_guessing_probability == pytest.approx(0.25)
        assert report.average_guessing_probability == pytest.approx(0.25)

    def test_public_module_awareness(self):
        workflow = example7_chain(2)
        middle = workflow.module("m_mid")
        visible = set(workflow.attribute_names) - set(middle.input_names)
        unaware = reconstruction_attack(
            workflow, "m_mid", visible, hidden_public_modules={"m_head"}, gamma_target=4
        )
        aware = reconstruction_attack(workflow, "m_mid", visible, gamma_target=4)
        assert unaware.achieved_gamma >= 4
        assert aware.achieved_gamma == 1
        assert aware.breaches_target and not unaware.breaches_target

    def test_records_shape(self, figure1):
        report = reconstruction_attack(figure1, "m1", set(figure1.attribute_names))
        records = report.as_records()
        assert len(records) == 4
        assert {"input", "candidates", "guess_probability", "exposed"} <= set(
            records[0]
        )
