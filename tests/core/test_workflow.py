"""Unit tests for workflow construction, wiring rules and provenance relations."""

from __future__ import annotations

import pytest

from repro.core import Module, Workflow, boolean_attributes
from repro.exceptions import CycleError, SchemaError, WiringError, WorkflowError
from repro.workloads import identity_module


def make_copy_module(name, in_names, out_names, private=True):
    ins = boolean_attributes(in_names)
    outs = boolean_attributes(out_names)

    def function(x):
        return {out: x[inp] for inp, out in zip(in_names, out_names)}

    return Module(name, ins, outs, function, private=private)


class TestConstruction:
    def test_duplicate_module_names_rejected(self):
        m = make_copy_module("m", ["a"], ["b"])
        other = make_copy_module("m", ["b"], ["c"])
        with pytest.raises(WorkflowError):
            Workflow([m, other])

    def test_empty_workflow_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow([])

    def test_duplicate_producers_rejected(self):
        m = make_copy_module("m", ["a"], ["b"])
        other = make_copy_module("n", ["c"], ["b"])
        with pytest.raises(WiringError):
            Workflow([m, other])

    def test_conflicting_attribute_declarations_rejected(self):
        a1 = boolean_attributes(["a"], 1.0)
        a2 = boolean_attributes(["a"], 2.0)
        b, c = boolean_attributes(["b", "c"])
        m = Module("m", a1, [b], lambda x: {"b": x["a"]})
        n = Module("n", a2, [c], lambda x: {"c": x["a"]})
        with pytest.raises(WiringError):
            Workflow([m, n])

    def test_cycle_detection(self):
        m = make_copy_module("m", ["a"], ["b"])
        n = make_copy_module("n", ["b"], ["a"])
        with pytest.raises(CycleError):
            Workflow([m, n])

    def test_topological_order(self, figure1):
        order = figure1.module_names
        assert order.index("m1") < order.index("m2")
        assert order.index("m1") < order.index("m3")

    def test_len_iter_contains(self, figure1):
        assert len(figure1) == 3
        assert {m.name for m in figure1} == {"m1", "m2", "m3"}
        assert "m2" in figure1 and "zzz" not in figure1

    def test_module_lookup_unknown(self, figure1):
        with pytest.raises(WorkflowError):
            figure1.module("nope")


class TestAttributeRoles:
    def test_initial_inputs(self, figure1):
        assert set(figure1.initial_inputs) == {"a1", "a2"}

    def test_final_outputs(self, figure1):
        assert set(figure1.final_outputs) == {"a6", "a7"}

    def test_intermediate_attributes(self, figure1):
        # a3, a4, a5 are produced by m1 and consumed by m2/m3.
        assert set(figure1.intermediate_attributes) == {"a3", "a4", "a5"}

    def test_producer_and_consumers(self, figure1):
        assert figure1.producer_of("a3").name == "m1"
        assert figure1.producer_of("a1") is None
        assert {m.name for m in figure1.consumers_of("a4")} == {"m2", "m3"}
        assert figure1.consumers_of("a7") == ()

    def test_unknown_attribute_raises(self, figure1):
        with pytest.raises(SchemaError):
            figure1.producer_of("zzz")

    def test_data_sharing_degree(self, figure1):
        assert figure1.data_sharing_degree() == 2
        assert figure1.has_bounded_data_sharing(2)
        assert not figure1.has_bounded_data_sharing(1)

    def test_functional_dependencies(self, figure1):
        fds = dict(
            (tuple(sorted(det)), tuple(sorted(dep)))
            for det, dep in figure1.functional_dependencies()
        )
        assert fds[("a1", "a2")] == ("a3", "a4", "a5")

    def test_private_public_partition(self):
        private = make_copy_module("p", ["a"], ["b"], private=True)
        public = make_copy_module("q", ["b"], ["c"], private=False)
        workflow = Workflow([private, public])
        assert [m.name for m in workflow.private_modules] == ["p"]
        assert [m.name for m in workflow.public_modules] == ["q"]
        assert not workflow.is_all_private


class TestExecution:
    def test_run_produces_all_attributes(self, figure1):
        result = figure1.run({"a1": 0, "a2": 1})
        assert set(result) == set(figure1.attribute_names)
        assert result["a3"] == 1 and result["a6"] == 0 and result["a7"] == 1

    def test_run_missing_input_raises(self, figure1):
        with pytest.raises(WorkflowError):
            figure1.run({"a1": 0})

    def test_run_many(self, figure1):
        rows = figure1.run_many([{"a1": 0, "a2": 0}, {"a1": 1, "a2": 1}])
        assert len(rows) == 2

    def test_provenance_relation_matches_figure1b(self, figure1):
        relation = figure1.provenance_relation()
        assert len(relation) == 4
        expected = {"a1": 1, "a2": 1, "a3": 1, "a4": 0, "a5": 1, "a6": 1, "a7": 1}
        assert expected in relation

    def test_provenance_relation_cached(self, figure1):
        assert figure1.provenance_relation() is figure1.provenance_relation()

    def test_provenance_relation_for_subset(self, figure1):
        relation = figure1.provenance_relation_for([{"a1": 0, "a2": 0}])
        assert len(relation) == 1

    def test_join_relation_consistent_with_executions(self, figure1):
        joined = figure1.join_relation()
        executed = figure1.provenance_relation()
        for row in executed:
            assert row in joined

    def test_satisfies_all_module_fds(self, figure1):
        relation = figure1.provenance_relation()
        for det, dep in figure1.functional_dependencies():
            assert relation.satisfies_fd(det, dep)


class TestDerivedWorkflows:
    def test_with_privatized(self):
        private = make_copy_module("p", ["a"], ["b"], private=True)
        public = make_copy_module("q", ["b"], ["c"], private=False)
        workflow = Workflow([private, public])
        privatized = workflow.with_privatized(["q"])
        assert privatized.is_all_private
        # The original workflow is untouched.
        assert not workflow.is_all_private

    def test_with_privatized_unknown_module(self, figure1):
        with pytest.raises(WorkflowError):
            figure1.with_privatized(["nope"])

    def test_with_modules_replaced_schema_checked(self, figure1):
        wrong = identity_module("m2", ["a3"], ["zzz"])
        with pytest.raises(WorkflowError):
            figure1.with_modules_replaced({"m2": wrong})

    def test_attribute_and_privatization_costs(self):
        private = make_copy_module("p", ["a"], ["b"], private=True)
        public = Module(
            "q",
            boolean_attributes(["b"]),
            boolean_attributes(["c"]),
            lambda x: {"c": x["b"]},
            private=False,
            privatization_cost=7.0,
        )
        workflow = Workflow([private, public])
        assert workflow.attribute_cost(["a", "b"]) == pytest.approx(2.0)
        assert workflow.privatization_cost(["q"]) == pytest.approx(7.0)
        # Privatizing a private module costs nothing.
        assert workflow.privatization_cost(["p"]) == pytest.approx(0.0)
