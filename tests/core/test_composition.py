"""Tests for the flipping machinery and the Theorem-4/8 assembly."""

from __future__ import annotations

import pytest

from repro.core import (
    assemble_all_private_solution,
    assemble_general_solution,
    build_flipped_world,
    flip_assignment,
    flip_module,
    is_gamma_private_workflow,
    is_workflow_world,
    lemma2_witness,
    privatization_closure,
    standalone_out_set,
)
from repro.exceptions import PrivacyError
from repro.workloads import example7_chain, figure1_view_attributes


class TestFlip:
    def test_flip_is_involution(self):
        p = {"a": 0, "b": 1}
        q = {"a": 1, "b": 0}
        x = {"a": 0, "b": 0, "c": 1}
        flipped = flip_assignment(x, p, q)
        assert flip_assignment(flipped, p, q) == x

    def test_flip_swaps_matching_values(self):
        p = {"a": 0}
        q = {"a": 1}
        assert flip_assignment({"a": 0}, p, q) == {"a": 1}
        assert flip_assignment({"a": 1}, p, q) == {"a": 0}

    def test_flip_leaves_other_values_untouched(self):
        p = {"a": 0}
        q = {"a": 0}
        assert flip_assignment({"a": 1}, p, q) == {"a": 1}

    def test_flip_module_schema_preserved(self, m1):
        p = {"a1": 0, "a2": 0, "a3": 0, "a4": 1, "a5": 1}
        q = {"a1": 0, "a2": 1, "a3": 1, "a4": 1, "a5": 0}
        flipped = flip_module(m1, p, q)
        assert flipped.input_names == m1.input_names
        assert flipped.output_names == m1.output_names

    def test_flip_module_maps_p_input_to_p_output(self, m1):
        # g(x) = FLIP(m(FLIP(x))): on input p|I it returns p|O when q = (x', m(x')).
        x = {"a1": 0, "a2": 0}
        y = {"a3": 1, "a4": 0, "a5": 0}
        x_prime, y_prime = lemma2_witness(m1, x, y, figure1_view_attributes())
        p = {**x, **y}
        q = {**x_prime, **y_prime}
        flipped = flip_module(m1, p, q)
        assert flipped.apply(x) == y


class TestLemma2Witness:
    def test_witness_shares_visible_values(self, m1):
        x = {"a1": 0, "a2": 0}
        y = {"a3": 0, "a4": 0, "a5": 1}
        x_prime, y_prime = lemma2_witness(m1, x, y, figure1_view_attributes())
        assert x_prime["a1"] == x["a1"]
        assert y_prime["a3"] == y["a3"] and y_prime["a5"] == y["a5"]

    def test_witness_is_an_execution(self, m1):
        x = {"a1": 0, "a2": 0}
        y = {"a3": 1, "a4": 1, "a5": 0}
        x_prime, y_prime = lemma2_witness(m1, x, y, figure1_view_attributes())
        assert m1.apply(x_prime) == y_prime

    def test_non_candidate_output_rejected(self, m1):
        x = {"a1": 0, "a2": 0}
        # a3 = 1 with a5 = 1 never co-occurs with a1 = 0 in the view.
        y = {"a3": 1, "a4": 0, "a5": 1}
        with pytest.raises(PrivacyError):
            lemma2_witness(m1, x, y, figure1_view_attributes())


class TestFlippedWorld:
    def test_flipped_world_is_a_possible_world(self, figure1):
        visible = set(figure1.attribute_names) - {"a2", "a4"}
        m1 = figure1.module("m1")
        x = {"a1": 0, "a2": 0}
        for y_tuple in standalone_out_set(m1, x, {"a1", "a3", "a5"}):
            y = dict(zip(m1.output_names, y_tuple))
            world = build_flipped_world(figure1, "m1", x, y, visible)
            assert is_workflow_world(world, figure1, visible)

    def test_flipped_world_realizes_target_output(self, figure1):
        visible = set(figure1.attribute_names) - {"a2", "a4"}
        m1 = figure1.module("m1")
        x = {"a1": 0, "a2": 0}
        y = {"a3": 0, "a4": 0, "a5": 1}
        world = build_flipped_world(figure1, "m1", x, y, visible)
        matching = [
            row
            for row in world
            if all(row[name] == x[name] for name in m1.input_names)
        ]
        assert matching
        assert all(
            all(row[name] == y[name] for name in m1.output_names)
            for row in matching
        )


class TestAssembly:
    def test_all_private_assembly_is_gamma_private(self, figure1):
        solution = assemble_all_private_solution(figure1, 2)
        visible = solution.visible_attributes
        assert is_gamma_private_workflow(figure1, visible, 2)

    def test_all_private_assembly_records_per_module_choices(self, figure1):
        solution = assemble_all_private_solution(figure1, 2)
        assert set(solution.meta["per_module_hidden"]) == {"m1", "m2", "m3"}

    def test_all_private_assembly_with_explicit_choices(self, figure1):
        solution = assemble_all_private_solution(
            figure1,
            2,
            hidden_per_module={"m1": {"a4"}, "m2": {"a6"}, "m3": {"a7"}},
        )
        assert solution.hidden_attributes == {"a4", "a6", "a7"}
        assert is_gamma_private_workflow(figure1, solution.visible_attributes, 2)

    def test_all_private_assembly_rejects_public_workflows(self):
        workflow = example7_chain(1)
        with pytest.raises(PrivacyError):
            assemble_all_private_solution(workflow, 2)

    def test_privatization_closure(self):
        workflow = example7_chain(2)
        closure = privatization_closure(workflow, {"x0"})
        assert closure == {"m_head"}
        closure = privatization_closure(workflow, {"x0", "z1"})
        assert closure == {"m_head", "m_tail"}
        assert privatization_closure(workflow, {"s0"}) == {"m_head"}

    def test_general_assembly_is_gamma_private(self):
        workflow = example7_chain(2)
        solution = assemble_general_solution(workflow, 2)
        assert is_gamma_private_workflow(
            workflow,
            solution.visible_attributes,
            2,
            hidden_public_modules=solution.privatized_modules,
        )

    def test_general_assembly_privatizes_touched_public_modules(self):
        workflow = example7_chain(2)
        solution = assemble_general_solution(
            workflow, 2, hidden_per_module={"m_mid": {"x0", "x1"}}
        )
        assert solution.hidden_attributes == {"x0", "x1"}
        assert solution.privatized_modules == {"m_head"}
