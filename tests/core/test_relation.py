"""Unit tests for the relation algebra."""

from __future__ import annotations

import pytest

from repro.core import Relation, Schema, boolean_attributes
from repro.exceptions import FunctionalDependencyError, SchemaError


@pytest.fixture
def schema() -> Schema:
    return Schema(boolean_attributes(["x", "y", "z"]))


@pytest.fixture
def relation(schema: Schema) -> Relation:
    return Relation.from_tuples(schema, [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)])


class TestConstruction:
    def test_len_and_iteration(self, relation):
        assert len(relation) == 4
        rows = list(relation)
        assert rows[0] == {"x": 0, "y": 0, "z": 0}

    def test_duplicate_rows_collapse(self, schema):
        rel = Relation.from_tuples(schema, [(0, 0, 0), (0, 0, 0)])
        assert len(rel) == 1

    def test_from_tuples_wrong_arity(self, schema):
        with pytest.raises(SchemaError):
            Relation.from_tuples(schema, [(0, 0)])

    def test_missing_attribute_raises(self, schema):
        with pytest.raises(SchemaError):
            Relation(schema, [{"x": 0, "y": 0}])

    def test_domain_checked(self, schema):
        with pytest.raises(Exception):
            Relation(schema, [{"x": 5, "y": 0, "z": 0}])

    def test_empty_relation(self, schema):
        rel = Relation.empty(schema)
        assert len(rel) == 0

    def test_contains(self, relation):
        assert {"x": 0, "y": 1, "z": 1} in relation
        assert {"x": 1, "y": 1, "z": 1} not in relation

    def test_row_accessor(self, relation):
        assert relation.row(1) == {"x": 0, "y": 1, "z": 1}

    def test_column_and_distinct(self, relation):
        assert relation.column("z") == (0, 1, 1, 0)
        assert relation.distinct_values("z") == {0, 1}

    def test_equality_ignores_row_order(self, schema):
        a = Relation.from_tuples(schema, [(0, 0, 0), (1, 1, 1)])
        b = Relation.from_tuples(schema, [(1, 1, 1), (0, 0, 0)])
        assert a == b
        assert hash(a) == hash(b)


class TestAlgebra:
    def test_project_collapses_duplicates(self, relation):
        projected = relation.project(["x"])
        assert len(projected) == 2
        assert projected.attribute_names == ("x",)

    def test_project_keeps_schema_order(self, relation):
        projected = relation.project(["z", "x"])
        assert projected.attribute_names == ("x", "z")

    def test_select_predicate(self, relation):
        selected = relation.select(lambda row: row["z"] == 1)
        assert len(selected) == 2

    def test_select_equals(self, relation):
        selected = relation.select_equals({"x": 0})
        assert len(selected) == 2
        assert all(row["x"] == 0 for row in selected)

    def test_natural_join_on_shared_attribute(self, schema):
        left = Relation.from_tuples(
            Schema(boolean_attributes(["x", "y"])), [(0, 0), (1, 1)]
        )
        right = Relation.from_tuples(
            Schema(boolean_attributes(["y", "z"])), [(0, 1), (1, 0)]
        )
        joined = left.natural_join(right)
        assert joined.attribute_names == ("x", "y", "z")
        assert len(joined) == 2
        assert {"x": 0, "y": 0, "z": 1} in joined

    def test_natural_join_without_shared_is_cross_product(self):
        left = Relation.from_tuples(Schema(boolean_attributes(["x"])), [(0,), (1,)])
        right = Relation.from_tuples(Schema(boolean_attributes(["y"])), [(0,), (1,)])
        joined = left.natural_join(right)
        assert len(joined) == 4

    def test_rename(self, relation):
        renamed = relation.rename({"x": "a"})
        assert renamed.attribute_names == ("a", "y", "z")
        assert len(renamed) == len(relation)

    def test_union_and_difference(self, schema):
        a = Relation.from_tuples(schema, [(0, 0, 0), (1, 1, 1)])
        b = Relation.from_tuples(schema, [(1, 1, 1), (1, 0, 0)])
        assert len(a.union(b)) == 3
        assert len(a.difference(b)) == 1

    def test_union_schema_mismatch(self, schema):
        other = Relation.from_tuples(Schema(boolean_attributes(["x", "y"])), [(0, 0)])
        a = Relation.from_tuples(schema, [(0, 0, 0)])
        with pytest.raises(SchemaError):
            a.union(other)

    def test_group_by(self, relation):
        groups = relation.group_by(["x"])
        assert set(groups) == {(0,), (1,)}
        assert len(groups[(0,)]) == 2

    def test_group_by_multiple_attributes(self, relation):
        groups = relation.group_by(["x", "y"])
        assert len(groups) == 4


class TestFunctionalDependencies:
    def test_satisfied_fd(self, relation):
        assert relation.satisfies_fd(["x", "y"], ["z"])

    def test_violated_fd(self, schema):
        rel = Relation.from_tuples(schema, [(0, 0, 0), (0, 0, 1)])
        assert not rel.satisfies_fd(["x", "y"], ["z"])

    def test_assert_fd_raises(self, schema):
        rel = Relation.from_tuples(schema, [(0, 0, 0), (0, 0, 1)])
        with pytest.raises(FunctionalDependencyError):
            rel.assert_fd(["x", "y"], ["z"])

    def test_fd_with_unknown_attribute(self, relation):
        with pytest.raises(SchemaError):
            relation.satisfies_fd(["nope"], ["z"])


class TestRendering:
    def test_to_text_contains_headers_and_rows(self, relation):
        text = relation.to_text()
        assert "x" in text and "z" in text
        assert len(text.splitlines()) == 2 + len(relation)

    def test_to_text_max_rows(self, relation):
        text = relation.to_text(max_rows=2)
        assert "more rows" in text
