"""Tests for provenance views and secure-view solution objects."""

from __future__ import annotations

import pytest

from repro.core import ProvenanceView, SecureViewSolution
from repro.exceptions import SchemaError


class TestProvenanceView:
    def test_visible_hidden_partition(self, figure1):
        view = ProvenanceView(figure1, frozenset({"a1", "a3", "a5"}))
        assert view.hidden_attributes == {"a2", "a4", "a6", "a7"}

    def test_from_hidden(self, figure1):
        view = ProvenanceView.from_hidden(figure1, {"a4", "a5"})
        assert view.visible_attributes == set(figure1.attribute_names) - {"a4", "a5"}

    def test_unknown_attribute_rejected(self, figure1):
        with pytest.raises(SchemaError):
            ProvenanceView(figure1, frozenset({"zzz"}))

    def test_unknown_module_rejected(self, figure1):
        with pytest.raises(SchemaError):
            ProvenanceView(figure1, frozenset({"a1"}), frozenset({"nope"}))

    def test_relation_is_projection(self, figure1):
        view = ProvenanceView(figure1, frozenset({"a1", "a3", "a5"}))
        relation = view.relation()
        assert set(relation.attribute_names) == {"a1", "a3", "a5"}
        # Figure 1d: the projection has 4 distinct rows.
        assert len(relation) == 4
        assert {"a1": 0, "a3": 0, "a5": 1} in relation

    def test_costs(self, figure1):
        view = ProvenanceView.from_hidden(figure1, {"a4", "a5"})
        assert view.hiding_cost() == pytest.approx(2.0)
        assert view.privatization_cost() == pytest.approx(0.0)
        assert view.total_cost() == pytest.approx(2.0)

    def test_restrict_narrows_visible_set(self, figure1):
        view = ProvenanceView(figure1, frozenset({"a1", "a3", "a5"}))
        narrower = view.restrict({"a1", "a2"})
        assert narrower.visible_attributes == {"a1"}

    def test_visible_public_modules(self):
        from repro.workloads import example7_chain

        workflow = example7_chain(1)
        view = ProvenanceView(
            workflow,
            frozenset(workflow.attribute_names),
            hidden_public_modules=frozenset({"m_head"}),
        )
        assert view.visible_public_modules == {"m_tail"}


class TestSecureViewSolution:
    def test_cost_accounts_for_attributes_and_modules(self):
        from repro.workloads import example7_chain

        workflow = example7_chain(1)
        solution = SecureViewSolution(
            workflow,
            frozenset({"x0"}),
            frozenset({"m_head"}),
        )
        expected = workflow.attribute_cost(["x0"]) + workflow.privatization_cost(
            ["m_head"]
        )
        assert solution.cost() == pytest.approx(expected)

    def test_visible_attributes_complement(self, figure1):
        solution = SecureViewSolution(figure1, frozenset({"a4"}))
        assert solution.visible_attributes == set(figure1.attribute_names) - {"a4"}

    def test_unknown_names_rejected(self, figure1):
        with pytest.raises(SchemaError):
            SecureViewSolution(figure1, frozenset({"zzz"}))
        with pytest.raises(SchemaError):
            SecureViewSolution(figure1, frozenset(), frozenset({"zzz"}))

    def test_view_round_trip(self, figure1):
        solution = SecureViewSolution(figure1, frozenset({"a4", "a5"}))
        view = solution.view()
        assert view.hidden_attributes == {"a4", "a5"}

    def test_with_extra_hidden(self, figure1):
        solution = SecureViewSolution(figure1, frozenset({"a4"}))
        extended = solution.with_extra_hidden({"a5"})
        assert extended.hidden_attributes == {"a4", "a5"}
        assert solution.hidden_attributes == {"a4"}
