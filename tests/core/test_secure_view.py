"""Tests for the SecureViewProblem container and its feasibility semantics."""

from __future__ import annotations

import pytest

from repro.core import (
    CardinalityRequirement,
    CardinalityRequirementList,
    SecureViewProblem,
    SetRequirement,
    SetRequirementList,
)
from repro.exceptions import RequirementError
from repro.workloads import example7_chain


def set_list(module: str, *attribute_sets: set[str]) -> SetRequirementList:
    return SetRequirementList(
        module,
        [SetRequirement(frozenset(), frozenset(attrs)) for attrs in attribute_sets],
    )


class TestConstruction:
    def test_empty_requirements_rejected(self, figure1):
        with pytest.raises(RequirementError):
            SecureViewProblem(figure1, 2, {})

    def test_mixed_requirement_kinds_rejected(self, figure1):
        requirements = {
            "m1": SetRequirementList(
                "m1", [SetRequirement(frozenset(), frozenset({"a3"}))]
            ),
            "m2": CardinalityRequirementList(
                "m2", [CardinalityRequirement(1, 0)]
            ),
        }
        with pytest.raises(RequirementError):
            SecureViewProblem(figure1, 2, requirements)

    def test_public_module_requirement_rejected(self):
        workflow = example7_chain(1)
        requirements = {
            "m_head": SetRequirementList(
                "m_head", [SetRequirement(frozenset(), frozenset({"x0"}))]
            )
        }
        with pytest.raises(RequirementError):
            SecureViewProblem(workflow, 2, requirements)

    def test_requirement_validated_against_module(self, figure1):
        requirements = {
            "m1": SetRequirementList(
                "m1", [SetRequirement(frozenset({"a6"}), frozenset())]
            )
        }
        with pytest.raises(RequirementError):
            SecureViewProblem(figure1, 2, requirements)

    def test_unknown_hidable_attribute_rejected(self, figure1):
        requirements = {"m1": set_list("m1", {"a3"})}
        with pytest.raises(RequirementError):
            SecureViewProblem(
                figure1, 2, requirements, hidable_attributes=frozenset({"zz"})
            )

    def test_from_standalone_analysis(self, figure1):
        problem = SecureViewProblem.from_standalone_analysis(figure1, 2, kind="set")
        assert set(problem.requirements) == {"m1", "m2", "m3"}
        assert problem.constraint_kind == "set"

    def test_constraint_kind_and_lmax(self, figure1):
        problem = SecureViewProblem(
            figure1,
            2,
            {"m1": set_list("m1", {"a3"}, {"a4"}, {"a5"})},
        )
        assert problem.constraint_kind == "set"
        assert problem.lmax == 3


class TestFeasibility:
    def make_problem(self, figure1) -> SecureViewProblem:
        return SecureViewProblem(
            figure1,
            2,
            {
                "m1": set_list("m1", {"a3"}, {"a4"}),
                "m2": set_list("m2", {"a6"}),
            },
        )

    def test_requirement_satisfied(self, figure1):
        problem = self.make_problem(figure1)
        assert problem.requirement_satisfied("m1", {"a3"})
        assert not problem.requirement_satisfied("m1", {"a5"})

    def test_is_feasible_all_modules(self, figure1):
        problem = self.make_problem(figure1)
        assert problem.is_feasible({"a3", "a6"})
        assert not problem.is_feasible({"a3"})

    def test_is_feasible_respects_hidable_restriction(self, figure1):
        problem = SecureViewProblem(
            figure1,
            2,
            {"m1": set_list("m1", {"a3"})},
            hidable_attributes=frozenset({"a4"}),
        )
        assert not problem.is_feasible({"a3"})

    def test_required_privatizations(self):
        workflow = example7_chain(2)
        problem = SecureViewProblem(
            workflow,
            2,
            {"m_mid": SetRequirementList(
                "m_mid", [SetRequirement(frozenset({"x0"}), frozenset())]
            )},
        )
        assert problem.required_privatizations({"x0"}) == {"m_head"}
        assert problem.is_feasible({"x0"}, {"m_head"})
        assert not problem.is_feasible({"x0"}, set())

    def test_privatization_disallowed(self):
        workflow = example7_chain(2)
        problem = SecureViewProblem(
            workflow,
            2,
            {"m_mid": SetRequirementList(
                "m_mid", [SetRequirement(frozenset({"x0"}), frozenset())]
            )},
            allow_privatization=False,
        )
        assert not problem.is_feasible({"x0"}, {"m_head"})

    def test_solution_cost_and_make_solution(self, figure1):
        problem = self.make_problem(figure1)
        assert problem.solution_cost({"a3", "a6"}) == pytest.approx(2.0)
        solution = problem.make_solution({"a3", "a6"})
        assert solution.hidden_attributes == {"a3", "a6"}
        problem.validate_solution(solution)

    def test_validate_solution_rejects_infeasible(self, figure1):
        problem = self.make_problem(figure1)
        bad = problem.make_solution({"a3"})
        with pytest.raises(RequirementError):
            problem.validate_solution(bad)

    def test_solve_dispatcher_unknown_method(self, figure1):
        problem = self.make_problem(figure1)
        from repro.exceptions import SolverError

        with pytest.raises(SolverError):
            problem.solve(method="does_not_exist")

    def test_solve_auto_produces_feasible_solution(self, figure1):
        problem = self.make_problem(figure1)
        solution = problem.solve(method="auto")
        problem.validate_solution(solution)
