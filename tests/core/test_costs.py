"""Tests for the additive cost helpers."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    attribute_cost_map,
    privatization_cost_map,
    random_attribute_costs,
    solution_cost,
    uniform_attribute_costs,
)
from repro.exceptions import SchemaError
from repro.workloads import example7_chain


class TestCostMaps:
    def test_uniform_costs(self):
        costs = uniform_attribute_costs(["a", "b"], 2.5)
        assert costs == {"a": 2.5, "b": 2.5}

    def test_uniform_costs_negative_rejected(self):
        with pytest.raises(SchemaError):
            uniform_attribute_costs(["a"], -1.0)

    def test_random_costs_within_range_and_deterministic(self):
        rng = random.Random(7)
        costs = random_attribute_costs(["a", "b", "c"], 1.0, 2.0, rng=rng)
        assert all(1.0 <= value <= 2.0 for value in costs.values())
        again = random_attribute_costs(["a", "b", "c"], 1.0, 2.0, rng=random.Random(7))
        assert costs == again

    def test_random_costs_bad_range(self):
        with pytest.raises(SchemaError):
            random_attribute_costs(["a"], 5.0, 1.0)

    def test_attribute_cost_map_reflects_schema(self, figure1):
        costs = attribute_cost_map(figure1)
        assert set(costs) == set(figure1.attribute_names)
        assert all(value == 1.0 for value in costs.values())

    def test_privatization_cost_map_public_modules_only(self):
        workflow = example7_chain(1)
        costs = privatization_cost_map(workflow)
        assert set(costs) == {"m_head", "m_tail"}


class TestSolutionCost:
    def test_attribute_only(self, figure1):
        assert solution_cost(figure1, ["a4", "a5"]) == pytest.approx(2.0)

    def test_with_privatization(self):
        workflow = example7_chain(1)
        cost = solution_cost(workflow, ["x0"], ["m_head"])
        assert cost == pytest.approx(
            workflow.attribute_cost(["x0"]) + workflow.privatization_cost(["m_head"])
        )

    def test_privatizing_private_module_costs_nothing(self, figure1):
        assert solution_cost(figure1, [], ["m1"]) == pytest.approx(0.0)

    def test_cost_override(self, figure1):
        cost = solution_cost(
            figure1, ["a4"], attribute_costs={"a4": 10.0}
        )
        assert cost == pytest.approx(10.0)

    def test_unknown_attribute_rejected(self, figure1):
        with pytest.raises(SchemaError):
            solution_cost(figure1, ["zzz"])
