"""Tests for vertex cover and the Figure-5 reduction (Theorem 7)."""

from __future__ import annotations

import pytest

from repro.exceptions import InfeasibleError
from repro.optim import solve_exact_ip, solve_greedy
from repro.reductions import (
    VertexCoverInstance,
    exact_vertex_cover,
    greedy_vertex_cover,
    random_cubic_graph,
    vertex_cover_to_secure_view,
)


@pytest.fixture
def triangle_plus_pendant() -> VertexCoverInstance:
    return VertexCoverInstance((0, 1, 2, 3), ((0, 1), (1, 2), (0, 2), (2, 3)))


class TestVertexCover:
    def test_self_loop_rejected(self):
        with pytest.raises(InfeasibleError):
            VertexCoverInstance((0,), ((0, 0),))

    def test_unknown_vertex_rejected(self):
        with pytest.raises(InfeasibleError):
            VertexCoverInstance((0, 1), ((0, 5),))

    def test_degree_and_is_cover(self, triangle_plus_pendant):
        assert triangle_plus_pendant.degree(2) == 3
        assert triangle_plus_pendant.is_cover([0, 2])
        assert not triangle_plus_pendant.is_cover([3])

    def test_exact_cover(self, triangle_plus_pendant):
        cover = exact_vertex_cover(triangle_plus_pendant)
        assert triangle_plus_pendant.is_cover(cover)
        assert len(cover) == 2

    def test_greedy_cover_within_factor_two(self, triangle_plus_pendant):
        greedy = greedy_vertex_cover(triangle_plus_pendant)
        assert triangle_plus_pendant.is_cover(greedy)
        assert len(greedy) <= 2 * len(exact_vertex_cover(triangle_plus_pendant))

    def test_random_cubic_graph_is_regular(self):
        instance = random_cubic_graph(10, seed=3)
        assert instance.n_vertices == 10
        assert all(instance.degree(v) == 3 for v in instance.vertices)

    def test_random_cubic_graph_minimum_size(self):
        with pytest.raises(InfeasibleError):
            random_cubic_graph(3)


class TestFigure5Reduction:
    def test_structure_no_data_sharing(self, triangle_plus_pendant):
        problem = vertex_cover_to_secure_view(triangle_plus_pendant)
        workflow = problem.workflow
        assert workflow.data_sharing_degree() == 1
        assert len(workflow) == (
            triangle_plus_pendant.n_edges + triangle_plus_pendant.n_vertices + 1
        )

    def test_optimum_is_edges_plus_cover(self, triangle_plus_pendant):
        problem = vertex_cover_to_secure_view(triangle_plus_pendant)
        optimum = solve_exact_ip(problem).cost()
        expected = triangle_plus_pendant.n_edges + len(
            exact_vertex_cover(triangle_plus_pendant)
        )
        assert optimum == pytest.approx(expected)

    def test_random_cubic_instances_preserve_optimum(self):
        for seed in range(2):
            instance = random_cubic_graph(8, seed=seed)
            problem = vertex_cover_to_secure_view(instance)
            optimum = solve_exact_ip(problem).cost()
            expected = instance.n_edges + len(exact_vertex_cover(instance))
            assert optimum == pytest.approx(expected)

    def test_greedy_respects_gamma_plus_one_guarantee(self, triangle_plus_pendant):
        problem = vertex_cover_to_secure_view(triangle_plus_pendant)
        greedy_cost = solve_greedy(problem).cost()
        optimum = solve_exact_ip(problem).cost()
        gamma = problem.workflow.data_sharing_degree()
        assert greedy_cost <= (gamma + 1) * optimum + 1e-6
