"""Tests for label cover and the Figure-4 / Figure-6 reductions."""

from __future__ import annotations

import pytest

from repro.exceptions import InfeasibleError
from repro.optim import solve_exact_ip
from repro.reductions import (
    LabelCoverInstance,
    exact_label_cover,
    greedy_label_cover,
    label_cover_to_general_secure_view,
    label_cover_to_set_secure_view,
    random_label_cover,
)


@pytest.fixture
def instance() -> LabelCoverInstance:
    return LabelCoverInstance(
        left=("u0", "u1"),
        right=("w0",),
        labels=(0, 1),
        relations={
            ("u0", "w0"): frozenset({(0, 1)}),
            ("u1", "w0"): frozenset({(1, 1), (0, 0)}),
        },
    )


class TestLabelCover:
    def test_empty_relation_rejected(self):
        with pytest.raises(InfeasibleError):
            LabelCoverInstance(("u0",), ("w0",), (0,), {("u0", "w0"): frozenset()})

    def test_unknown_vertex_rejected(self):
        with pytest.raises(InfeasibleError):
            LabelCoverInstance(
                ("u0",), ("w0",), (0,), {("u0", "zz"): frozenset({(0, 0)})}
            )

    def test_feasibility_check(self, instance):
        good = {
            "u0": frozenset({0}),
            "u1": frozenset({1}),
            "w0": frozenset({1}),
        }
        assert instance.is_feasible(good)
        assert instance.cost(good) == 3
        bad = {"u0": frozenset({1}), "u1": frozenset({1}), "w0": frozenset({1})}
        assert not instance.is_feasible(bad)

    def test_exact_solution_minimal_and_feasible(self, instance):
        assignment = exact_label_cover(instance)
        assert instance.is_feasible(assignment)
        assert instance.cost(assignment) == 3

    def test_greedy_solution_feasible(self, instance):
        assignment = greedy_label_cover(instance)
        assert instance.is_feasible(assignment)
        assert instance.cost(assignment) >= instance.cost(exact_label_cover(instance))

    def test_random_instance_structure(self):
        instance = random_label_cover(3, 2, 2, seed=1)
        assert len(instance.left) == 3
        assert instance.edges
        assert instance.is_feasible(greedy_label_cover(instance))


class TestFigure4Reduction:
    def test_structure(self, instance):
        problem = label_cover_to_set_secure_view(instance)
        workflow = problem.workflow
        assert workflow.is_all_private
        # One hub plus one module per edge.
        assert len(workflow) == 1 + len(instance.edges)
        # Only the (vertex, label) items are hidable.
        assert len(problem.hidable_attributes) == len(instance.vertices) * len(
            instance.labels
        )

    def test_optimum_matches_label_cover(self, instance):
        problem = label_cover_to_set_secure_view(instance)
        optimum = solve_exact_ip(problem).cost()
        assert optimum == pytest.approx(instance.cost(exact_label_cover(instance)))

    def test_hidden_attributes_encode_assignment(self, instance):
        problem = label_cover_to_set_secure_view(instance)
        solution = solve_exact_ip(problem)
        assignment: dict[str, set[int]] = {v: set() for v in instance.vertices}
        for name in solution.hidden_attributes:
            _, vertex, label = name.split("_")
            assignment[vertex].add(int(label))
        frozen = {v: frozenset(s) for v, s in assignment.items()}
        assert instance.is_feasible(frozen)

    def test_random_instances_preserve_optimum(self):
        instance = random_label_cover(2, 2, 2, seed=3)
        problem = label_cover_to_set_secure_view(instance)
        assert solve_exact_ip(problem).cost() == pytest.approx(
            instance.cost(exact_label_cover(instance))
        )


class TestFigure6Reduction:
    def test_structure(self, instance):
        problem = label_cover_to_general_secure_view(instance)
        workflow = problem.workflow
        assert problem.constraint_kind == "cardinality"
        assert workflow.public_modules
        # All attributes are free; the cost is carried by privatization.
        assert workflow.attribute_cost(workflow.attribute_names) == 0.0

    def test_optimum_matches_label_cover(self, instance):
        problem = label_cover_to_general_secure_view(instance)
        optimum = solve_exact_ip(problem).cost()
        assert optimum == pytest.approx(instance.cost(exact_label_cover(instance)))

    def test_solution_cost_is_privatization_count(self, instance):
        problem = label_cover_to_general_secure_view(instance)
        solution = solve_exact_ip(problem)
        assert solution.cost() == pytest.approx(len(solution.privatized_modules))
