"""Tests for set cover and its two Secure-View reductions (Theorems 5 and 9)."""

from __future__ import annotations

import pytest

from repro.exceptions import InfeasibleError
from repro.optim import solve_exact_ip
from repro.reductions import (
    SetCoverInstance,
    exact_set_cover,
    greedy_set_cover,
    random_set_cover,
    set_cover_to_general_secure_view,
    set_cover_to_secure_view,
)


@pytest.fixture
def instance() -> SetCoverInstance:
    return SetCoverInstance(
        frozenset(range(5)),
        (
            frozenset({0, 1, 2}),
            frozenset({2, 3}),
            frozenset({3, 4}),
            frozenset({0, 4}),
        ),
    )


class TestSetCover:
    def test_uncovered_universe_rejected(self):
        with pytest.raises(InfeasibleError):
            SetCoverInstance(frozenset({0, 1}), (frozenset({0}),))

    def test_is_cover(self, instance):
        assert instance.is_cover([0, 2])
        assert not instance.is_cover([1, 2])

    def test_exact_cover_is_minimal(self, instance):
        cover = exact_set_cover(instance)
        assert instance.is_cover(cover)
        assert len(cover) == 2

    def test_greedy_cover_is_feasible(self, instance):
        cover = greedy_set_cover(instance)
        assert instance.is_cover(cover)
        assert len(cover) >= len(exact_set_cover(instance))

    def test_random_instance_always_coverable(self):
        for seed in range(5):
            instance = random_set_cover(10, 6, seed=seed)
            assert instance.is_cover(range(instance.n_subsets))

    def test_exact_cover_size_guard(self):
        instance = random_set_cover(5, 30, seed=0)
        with pytest.raises(InfeasibleError):
            exact_set_cover(instance, max_subsets=10)


class TestTheorem5Reduction:
    def test_structure(self, instance):
        problem = set_cover_to_secure_view(instance)
        workflow = problem.workflow
        assert len(workflow) == instance.n_elements + 1
        assert workflow.is_all_private
        assert len(problem.hidable_attributes) == instance.n_subsets

    def test_optimum_equals_set_cover_optimum(self, instance):
        problem = set_cover_to_secure_view(instance)
        assert solve_exact_ip(problem).cost() == pytest.approx(
            len(exact_set_cover(instance))
        )

    def test_hidden_attributes_encode_a_cover(self, instance):
        problem = set_cover_to_secure_view(instance)
        solution = solve_exact_ip(problem)
        chosen = [
            int(name[1:]) for name in solution.hidden_attributes if name.startswith("a")
        ]
        assert instance.is_cover(chosen)

    def test_random_instances_preserve_optimum(self):
        for seed in range(3):
            instance = random_set_cover(6, 5, seed=seed)
            problem = set_cover_to_secure_view(instance)
            assert solve_exact_ip(problem).cost() == pytest.approx(
                len(exact_set_cover(instance))
            )


class TestTheorem9Reduction:
    def test_structure(self, instance):
        problem = set_cover_to_general_secure_view(instance)
        workflow = problem.workflow
        assert len(workflow.public_modules) == instance.n_subsets
        assert len(workflow.private_modules) == instance.n_elements
        # No data sharing: every attribute feeds at most one module.
        assert workflow.data_sharing_degree() == 1

    def test_optimum_equals_set_cover_optimum(self, instance):
        problem = set_cover_to_general_secure_view(instance)
        assert solve_exact_ip(problem).cost() == pytest.approx(
            len(exact_set_cover(instance))
        )

    def test_cost_comes_only_from_privatization(self, instance):
        problem = set_cover_to_general_secure_view(instance)
        solution = solve_exact_ip(problem)
        assert problem.workflow.attribute_cost(solution.hidden_attributes) == 0.0
        assert len(solution.privatized_modules) == pytest.approx(solution.cost())
