"""Tests for the Theorem 1–3 constructions (set disjointness, UNSAT, oracle game)."""

from __future__ import annotations

import itertools

import pytest

from repro.core import is_standalone_private, minimum_cost_safe_subset
from repro.exceptions import PrivacyError
from repro.reductions import (
    AdversarialSafeViewOracle,
    CNFFormula,
    CountingDataSupplier,
    DisjointnessInstance,
    brute_force_satisfiable,
    build_disjointness_relation,
    candidate_special_sets,
    input_names,
    make_m1,
    make_m2,
    random_cnf,
    random_disjointness_instance,
    safe_view_decision,
    safe_view_via_supplier,
    unsat_safe_view_decision,
    unsat_to_module,
)


class TestTheorem1SetDisjointness:
    def test_membership_encoding(self):
        instance = DisjointnessInstance(4, frozenset({1, 3}), frozenset({2, 3}))
        relation = build_disjointness_relation(instance)
        assert len(relation) == 5
        assert {"a": 1, "b": 1, "id": 3, "y": 1} in relation
        assert {"a": 1, "b": 0, "id": 5, "y": 0} in relation

    def test_out_of_universe_rejected(self):
        with pytest.raises(PrivacyError):
            DisjointnessInstance(3, frozenset({5}), frozenset())

    def test_safety_equals_intersection(self):
        for seed in range(4):
            for force in (True, False):
                instance = random_disjointness_instance(
                    16, force_disjoint=force, seed=seed
                )
                assert safe_view_decision(instance) == instance.intersects

    def test_supplier_scan_agrees_with_ground_truth(self):
        for seed in range(4):
            instance = random_disjointness_instance(12, seed=seed)
            supplier = CountingDataSupplier(instance)
            assert safe_view_via_supplier(supplier) == safe_view_decision(instance)

    def test_disjoint_instances_require_full_scan(self):
        instance = random_disjointness_instance(20, force_disjoint=True, seed=1)
        supplier = CountingDataSupplier(instance)
        assert not safe_view_via_supplier(supplier)
        assert supplier.calls == supplier.n_rows

    def test_supplier_counts_and_bounds(self):
        instance = random_disjointness_instance(8, seed=0)
        supplier = CountingDataSupplier(instance)
        with pytest.raises(PrivacyError):
            supplier.fetch(0)
        list(supplier.fetch_all())
        assert supplier.calls == supplier.n_rows

    def test_gamma_other_than_two_rejected(self):
        instance = random_disjointness_instance(4, seed=0)
        with pytest.raises(PrivacyError):
            safe_view_via_supplier(CountingDataSupplier(instance), gamma=3)


class TestTheorem2Unsat:
    def test_unsatisfiable_formula_gives_safe_view(self):
        formula = CNFFormula(2, ((1,), (-1,), (2,)))
        assert not brute_force_satisfiable(formula)
        assert unsat_safe_view_decision(formula)

    def test_satisfiable_formula_gives_unsafe_view(self):
        formula = CNFFormula(2, ((1, 2),))
        assert brute_force_satisfiable(formula)
        assert not unsat_safe_view_decision(formula)

    def test_equivalence_on_random_formulas(self):
        for seed in range(6):
            formula = random_cnf(4, 6, seed=seed)
            assert unsat_safe_view_decision(formula) == (
                not brute_force_satisfiable(formula)
            )

    def test_module_semantics(self):
        formula = CNFFormula(1, ((1,),))
        module = unsat_to_module(formula)
        # g is satisfied by x1=1, so z = 0 regardless of y there.
        assert module.apply({"x1": 1, "y": 0}) == {"z": 0}
        assert module.apply({"x1": 1, "y": 1}) == {"z": 0}
        # g is falsified by x1=0, so z = ¬y.
        assert module.apply({"x1": 0, "y": 0}) == {"z": 1}
        assert module.apply({"x1": 0, "y": 1}) == {"z": 0}

    def test_malformed_formulas_rejected(self):
        with pytest.raises(PrivacyError):
            CNFFormula(1, ((),))
        with pytest.raises(PrivacyError):
            CNFFormula(1, ((2,),))


class TestTheorem3OracleGame:
    def test_ell_must_be_multiple_of_four(self):
        with pytest.raises(PrivacyError):
            make_m1(6)

    def test_claimed_safety_pattern_matches_real_privacy_for_m1(self):
        ell = 4
        module = make_m1(ell)
        names = input_names(ell)
        for size in range(ell + 1):
            for visible in itertools.combinations(names, size):
                expected = size < ell // 4
                actual = is_standalone_private(
                    module, set(visible) | {"y"}, 2
                )
                assert actual == expected

    def test_claimed_safety_pattern_matches_real_privacy_for_m2(self):
        ell = 4
        special = {"x1", "x2"}
        module = make_m2(ell, special)
        names = input_names(ell)
        for size in range(ell + 1):
            for visible in itertools.combinations(names, size):
                visible_set = set(visible)
                expected = size < ell // 4 or visible_set <= special
                actual = is_standalone_private(module, visible_set | {"y"}, 2)
                assert actual == expected

    def test_optimal_costs_match_the_proof(self):
        ell = 8
        oracle = AdversarialSafeViewOracle(ell)
        m1_cost = minimum_cost_safe_subset(
            make_m1(ell), 2, hidable=input_names(ell)
        ).cost
        m2_cost = minimum_cost_safe_subset(
            make_m2(ell, input_names(ell)[: ell // 2]), 2, hidable=input_names(ell)
        ).cost
        assert m1_cost == pytest.approx(oracle.m1_optimal_cost())
        assert m2_cost == pytest.approx(oracle.m2_optimal_cost())

    def test_oracle_answers_and_candidate_tracking(self):
        oracle = AdversarialSafeViewOracle(8)
        assert oracle.is_safe(["x1"])  # size 1 < 2
        assert not oracle.is_safe(["x1", "x2"])
        assert oracle.calls == 2
        assert oracle.remaining_candidates < oracle.total_candidates
        assert oracle.eliminated <= oracle.max_eliminated_per_query()

    def test_candidates_survive_few_queries(self):
        ell = 8
        oracle = AdversarialSafeViewOracle(ell)
        names = input_names(ell)
        for visible in itertools.combinations(names, 2):
            oracle.is_safe(visible)
            if oracle.remaining_candidates == 0:
                break
        # Far more queries than the lower bound are needed to empty the space;
        # after C(8,2)=28 queries of size 2 some candidates may remain or not,
        # but the per-query elimination bound always holds.
        assert oracle.calls <= 28
        assert oracle.query_lower_bound() > 1

    def test_resolution_contradicts_the_algorithm(self):
        oracle = AdversarialSafeViewOracle(8)
        oracle.is_safe(["x1", "x2"])
        cheap_claimed = oracle.resolve(True)
        assert cheap_claimed.name == "m1"
        expensive_claimed = oracle.resolve(False)
        assert expensive_claimed.name == "m2"

    def test_hidden_side_interface(self):
        oracle = AdversarialSafeViewOracle(8)
        names = input_names(8)
        assert oracle.is_safe_hidden(names[1:])  # only one input visible
        assert not oracle.is_safe_hidden(names[4:])

    def test_unknown_attribute_rejected(self):
        oracle = AdversarialSafeViewOracle(8)
        with pytest.raises(PrivacyError):
            oracle.is_safe(["zzz"])

    def test_candidate_special_sets_count(self):
        assert len(candidate_special_sets(4)) == 6
