"""Property-based tests for the privacy machinery.

The key invariants checked here are stated in the paper:

* Proposition 1 — hiding more attributes never decreases the privacy level,
* the standalone counting check agrees with the explicit OUT-set size,
* Theorem 4 — standalone safe subsets compose inside all-private workflows
  (checked by brute force on tiny random workflows),
* derived requirement lists are sound: satisfying them yields the promised
  standalone level.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Module,
    Workflow,
    boolean_attributes,
    is_gamma_private_workflow,
    minimum_cost_safe_subset,
    standalone_out_counts,
    standalone_out_set,
    standalone_privacy_level,
)
from repro.exceptions import InfeasibleError


def random_boolean_module(
    seed: int, n_inputs: int, n_outputs: int, name: str = "m", prefix: str = ""
) -> Module:
    """A random total boolean function as a Module."""
    rng = random.Random(seed)
    input_names = [f"{prefix}i{k}" for k in range(n_inputs)]
    output_names = [f"{prefix}o{k}" for k in range(n_outputs)]
    table = {}
    for code in range(2**n_inputs):
        table[code] = tuple(rng.randint(0, 1) for _ in range(n_outputs))

    def function(values):
        code = 0
        for index, attr in enumerate(input_names):
            code |= (values[attr] & 1) << index
        image = table[code]
        return dict(zip(output_names, image))

    return Module(
        name,
        boolean_attributes(input_names),
        boolean_attributes(output_names),
        function,
    )


module_shapes = st.tuples(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
)


@settings(max_examples=40, deadline=None)
@given(module_shapes, st.data())
def test_proposition1_hiding_more_never_hurts(shape, data):
    seed, n_in, n_out = shape
    module = random_boolean_module(seed, n_in, n_out)
    names = list(module.attribute_names)
    hidden_small = set(
        data.draw(st.lists(st.sampled_from(names), max_size=len(names), unique=True))
    )
    extra = data.draw(
        st.lists(st.sampled_from(names), max_size=len(names), unique=True)
    )
    hidden_large = hidden_small | set(extra)
    level_small = standalone_privacy_level(module, set(names) - hidden_small)
    level_large = standalone_privacy_level(module, set(names) - hidden_large)
    assert level_large >= level_small


@settings(max_examples=40, deadline=None)
@given(module_shapes, st.data())
def test_out_counts_match_explicit_out_sets(shape, data):
    seed, n_in, n_out = shape
    module = random_boolean_module(seed, n_in, n_out)
    names = list(module.attribute_names)
    visible = set(
        data.draw(st.lists(st.sampled_from(names), max_size=len(names), unique=True))
    )
    counts = standalone_out_counts(module, visible)
    vin = [name for name in module.input_names if name in visible]
    for row in module.relation():
        key = tuple(row[name] for name in vin)
        explicit = standalone_out_set(module, row, visible)
        assert counts[key] == len(explicit)


@settings(max_examples=40, deadline=None)
@given(module_shapes)
def test_privacy_level_bounds(shape):
    seed, n_in, n_out = shape
    module = random_boolean_module(seed, n_in, n_out)
    level_all_hidden = standalone_privacy_level(module, set())
    level_all_visible = standalone_privacy_level(module, set(module.attribute_names))
    assert level_all_visible == 1
    assert 1 <= level_all_hidden <= module.range_size()


@settings(max_examples=40, deadline=None)
@given(module_shapes, st.integers(min_value=2, max_value=4))
def test_minimum_cost_solution_is_safe_when_it_exists(shape, gamma):
    seed, n_in, n_out = shape
    module = random_boolean_module(seed, n_in, n_out)
    try:
        solution = minimum_cost_safe_subset(module, gamma)
    except InfeasibleError:
        # The module simply cannot reach this Γ; that is a legal outcome.
        assert standalone_privacy_level(module, set()) < gamma
        return
    assert standalone_privacy_level(module, solution.visible_attributes) >= gamma


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=2, max_value=3),
)
def test_theorem4_composition_on_random_chains(seed, n_modules):
    """Theorem 4 checked by brute force on tiny random all-private chains."""
    rng = random.Random(seed)
    gamma = 2
    modules = []
    width = 2
    previous_outputs = None
    for index in range(n_modules):
        module = random_boolean_module(
            rng.randrange(2**31), width, width, name=f"m{index}", prefix=f"s{index}_"
        )
        if previous_outputs is not None:
            # Rewire: inputs of this module are the previous module's outputs.
            inputs = previous_outputs
            outputs = boolean_attributes([f"s{index}_o{k}" for k in range(width)])
            table_source = module

            def function(values, _src=table_source, _ins=[a.name for a in inputs]):
                mapped = {
                    src_name: values[actual]
                    for src_name, actual in zip(_src.input_names, _ins)
                }
                return _src.apply(mapped)

            module = Module(f"m{index}", inputs, outputs, function)
        previous_outputs = list(module.output_schema.attributes)
        modules.append(module)
    workflow = Workflow(modules)

    hidden_union: set[str] = set()
    feasible = True
    for module in workflow.modules:
        try:
            solution = minimum_cost_safe_subset(module, gamma)
        except InfeasibleError:
            feasible = False
            break
        hidden_union |= set(solution.hidden_attributes)
    if not feasible:
        return
    visible = set(workflow.attribute_names) - hidden_union
    assert is_gamma_private_workflow(workflow, visible, gamma)
