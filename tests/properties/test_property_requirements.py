"""Property-based tests for requirement lists and their normalization."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CardinalityRequirement,
    CardinalityRequirementList,
    SetRequirement,
    SetRequirementList,
)

ATTRS = ("a", "b", "c", "d", "e")


def set_options():
    return st.lists(
        st.frozensets(st.sampled_from(ATTRS), min_size=1, max_size=3),
        min_size=1,
        max_size=5,
    ).map(
        lambda sets: SetRequirementList(
            "m", [SetRequirement(frozenset(), attrs) for attrs in sets]
        )
    )


def cardinality_options():
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3)
        ).filter(lambda pair: sum(pair) > 0),
        min_size=1,
        max_size=5,
    ).map(
        lambda pairs: CardinalityRequirementList(
            "m", [CardinalityRequirement(a, b) for a, b in pairs]
        )
    )


def hidden_sets():
    return st.frozensets(st.sampled_from(ATTRS), max_size=5)


@settings(max_examples=80, deadline=None)
@given(set_options(), hidden_sets())
def test_set_normalization_preserves_satisfaction(requirement, hidden):
    normalized = requirement.normalized()
    assert requirement.satisfied_by(hidden) == normalized.satisfied_by(hidden)


@settings(max_examples=80, deadline=None)
@given(set_options())
def test_set_normalization_is_an_antichain(requirement):
    normalized = requirement.normalized()
    options = list(normalized)
    for first in options:
        for second in options:
            if first is not second:
                assert not first.attributes <= second.attributes


@settings(max_examples=80, deadline=None)
@given(set_options(), hidden_sets(), st.sampled_from(ATTRS))
def test_set_satisfaction_is_monotone(requirement, hidden, extra):
    if requirement.satisfied_by(hidden):
        assert requirement.satisfied_by(set(hidden) | {extra})


@settings(max_examples=80, deadline=None)
@given(cardinality_options())
def test_cardinality_normalization_is_pareto(requirement):
    normalized = requirement.normalized()
    pairs = [(option.alpha, option.beta) for option in normalized]
    for first in pairs:
        for second in pairs:
            if first != second:
                assert not (first[0] <= second[0] and first[1] <= second[1])


@settings(max_examples=80, deadline=None)
@given(cardinality_options(), hidden_sets(), st.sampled_from(ATTRS))
def test_cardinality_satisfaction_is_monotone(requirement, hidden, extra):
    from repro.workloads import figure1_m1_module

    module = figure1_m1_module()
    # m1 has inputs a1, a2 and outputs a3, a4, a5; remap attribute names.
    mapping = dict(zip(ATTRS, module.attribute_names))
    mapped_hidden = {mapping[name] for name in hidden}
    mapped_extra = mapping[extra]
    if requirement.satisfied_by(mapped_hidden, module):
        assert requirement.satisfied_by(mapped_hidden | {mapped_extra}, module)


@settings(max_examples=80, deadline=None)
@given(cardinality_options(), hidden_sets())
def test_cardinality_normalization_preserves_satisfaction(requirement, hidden):
    from repro.workloads import figure1_m1_module

    module = figure1_m1_module()
    mapping = dict(zip(ATTRS, module.attribute_names))
    mapped_hidden = {mapping[name] for name in hidden}
    normalized = requirement.normalized()
    assert requirement.satisfied_by(mapped_hidden, module) == normalized.satisfied_by(
        mapped_hidden, module
    )
