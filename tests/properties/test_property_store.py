"""Property tests: fingerprints and store round-trips preserve semantics.

Two contracts back the persistent derivation store:

* ``workflow_fingerprint`` is a pure function of workflow *content* — it
  must not depend on module registration order or on the key order of any
  dict in the serialized payload, and it must survive a serialize →
  deserialize round trip (otherwise two processes would file the same
  instance under different keys and never share derivations);
* artifacts that pass through the store (requirement lists, packed kernel
  tables) must produce verdicts *identical* to freshly computed ones, on
  both backends — a store hit may never change an answer.
"""

from __future__ import annotations

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import Module, Workflow, boolean_attributes, workflow_out_sets
from repro.engine import DerivationCache, DerivationStore
from repro.kernel import CompiledWorkflow
from repro.workloads import (
    random_workflow,
    workflow_fingerprint,
    workflow_from_dict,
    workflow_to_dict,
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def small_chain(seed: int) -> Workflow:
    """A 2-module boolean chain small enough for reference possible-worlds."""
    rng = random.Random(seed)
    a0, a1, b0, b1, c0 = boolean_attributes(["a0", "a1", "b0", "b1", "c0"])
    table = {
        (x, y): (rng.randint(0, 1), rng.randint(0, 1)) for x in (0, 1) for y in (0, 1)
    }

    def first_fn(values, _table=table):
        b = _table[(values["a0"], values["a1"])]
        return {"b0": b[0], "b1": b[1]}

    flip = rng.randint(0, 1)

    def second_fn(values, _flip=flip):
        return {"c0": (values["b0"] ^ values["b1"]) ^ _flip}

    first = Module("first", [a0, a1], [b0, b1], first_fn)
    second = Module("second", [b0, b1], [c0], second_fn, private=rng.random() < 0.7)
    return Workflow([first, second], name=f"chain{seed % 97}")


def _shuffle_payload(payload, rng: random.Random):
    """Rebuild a JSON payload with every dict's key order randomized."""
    if isinstance(payload, dict):
        keys = list(payload)
        rng.shuffle(keys)
        return {key: _shuffle_payload(payload[key], rng) for key in keys}
    if isinstance(payload, list):
        return [_shuffle_payload(item, rng) for item in payload]
    return payload


@settings(max_examples=20, deadline=None)
@given(seeds, seeds)
def test_fingerprint_invariant_under_dict_and_module_ordering(seed, shuffle_seed):
    """The same content fingerprints identically however it was assembled."""
    workflow = random_workflow(4, seed=seed % 1000)
    rng = random.Random(shuffle_seed)
    payload = _shuffle_payload(workflow_to_dict(workflow), rng)
    modules = list(payload["modules"])
    rng.shuffle(modules)
    payload["modules"] = modules
    rebuilt = workflow_from_dict(payload)
    assert workflow_fingerprint(rebuilt) == workflow_fingerprint(workflow)


@settings(max_examples=15, deadline=None)
@given(seeds, st.data())
def test_store_persisted_packs_match_fresh_compilation_and_reference(seed, data):
    """Out-set verdicts from a store round-tripped pack are identical to a
    freshly compiled pack's — and to the brute-force reference backend's."""
    workflow = small_chain(seed)
    relation = workflow.provenance_relation()
    fresh = CompiledWorkflow(workflow, relation)
    loaded = CompiledWorkflow.from_payload(workflow, relation, fresh.to_payload())

    names = list(workflow.attribute_names)
    visible = frozenset(
        data.draw(
            st.lists(
                st.sampled_from(names), min_size=2, max_size=len(names), unique=True
            )
        )
    )
    module_name = data.draw(st.sampled_from(list(workflow.module_names)))
    from_loaded = loaded.module_out_sets(module_name, visible)
    assert from_loaded == fresh.module_out_sets(module_name, visible)
    assert from_loaded == workflow_out_sets(
        workflow, module_name, visible, backend="reference"
    )


@settings(max_examples=10, deadline=None)
@given(seeds)
def test_migration_preserves_pack_payload_bytes(seed):
    """v1 → v2 migration re-serializes packs *byte-identically*.

    The migrated sidecar plus layout must decode to exactly the payload a
    v1 document held (``to_payload()`` JSON, sorted keys): migration is a
    re-encoding of the same codes, never a recompilation that could pick
    up incidental ordering differences.
    """
    import json
    import tempfile

    from repro.workloads import module_fingerprint

    workflow = random_workflow(3, seed=seed % 1000, max_inputs=2)
    fingerprint = workflow_fingerprint(workflow)
    relation = workflow.provenance_relation()
    with tempfile.TemporaryDirectory() as directory:
        old = DerivationStore(directory, format_version=1)
        cache = DerivationCache(store=old)
        compiled = cache.compiled_workflow(workflow)
        old.save_pack(fingerprint, compiled)
        old.save_relation(fingerprint, relation, workflow=workflow)
        modules = {}
        for module in workflow.private_modules:
            mfp = module_fingerprint(module)
            packed = cache.compiled_module(module)
            old.save_module_pack(mfp, packed, module=module)
            modules[mfp] = (module, json.dumps(packed.to_payload(), sort_keys=True))
        before = json.dumps(compiled.to_payload(), sort_keys=True)

        store = DerivationStore(directory)
        summary = store.migrate()
        assert summary["failed"] == 0

        loaded = store.load_pack(fingerprint, workflow, relation)
        assert json.dumps(loaded.to_payload(), sort_keys=True) == before
        assert store.load_relation(fingerprint, workflow) == relation
        for mfp, (module, payload) in modules.items():
            migrated = store.load_module_pack(mfp, module)
            assert json.dumps(migrated.to_payload(), sort_keys=True) == payload


@settings(max_examples=10, deadline=None)
@given(
    seeds,
    st.integers(min_value=2, max_value=3),
    st.sampled_from(["set", "cardinality"]),
)
def test_store_round_tripped_requirements_match_both_backends(seed, gamma, kind):
    """Requirement lists served from a warm store equal fresh derivations
    from either backend (which are property-tested equal to each other)."""
    workflow = random_workflow(3, seed=seed % 1000, max_inputs=2)

    def signature(lists):
        # Compare options structurally: frozenset reprs are iteration-order
        # dependent and differ between round-tripped and fresh objects.
        out = {}
        for name, lst in lists.items():
            options = []
            for option in lst:
                if hasattr(option, "alpha"):
                    options.append(("card", option.alpha, option.beta))
                else:
                    options.append(
                        (
                            "set",
                            tuple(sorted(option.hidden_inputs)),
                            tuple(sorted(option.hidden_outputs)),
                        )
                    )
            out[name] = sorted(options)
        return out

    import tempfile

    from repro.exceptions import RequirementError

    with tempfile.TemporaryDirectory() as directory:
        store = DerivationStore(directory)
        cold = DerivationCache(store=store)
        try:
            persisted = cold.requirements(workflow, gamma, kind, backend="kernel")
        except RequirementError:
            # Infeasible at this Γ — nothing to persist; property is vacuous.
            assume(False)

        warm = DerivationCache(store=store)
        served = warm.requirements(workflow, gamma, kind, backend="kernel")
        assert warm.derivation_misses == 0

        reference = DerivationCache().requirements(
            workflow, gamma, kind, backend="reference"
        )
        assert signature(served) == signature(persisted)
        assert signature(served) == signature(reference)
