"""Property-based tests for the extension modules (attack, local search, serialization)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import workflow_privacy_level
from repro.core.attack import reconstruction_attack
from repro.optim import improve_solution, solve_exact_ip, solve_greedy
from repro.workloads import (
    chain_workflow,
    problem_from_dict,
    problem_to_dict,
    random_problem,
    random_workflow,
    workflow_from_dict,
    workflow_to_dict,
)

seeds = st.integers(min_value=0, max_value=100)


@settings(max_examples=10, deadline=None)
@given(seeds)
def test_attack_achieved_gamma_matches_privacy_level(seed):
    """The adversary's achieved Γ equals the brute-force workflow privacy level."""
    # Small chains keep the possible-worlds brute force cheap (2 initial inputs).
    workflow = chain_workflow(2, width=2, seed=seed)
    module = workflow.private_modules[0]
    hidden = {module.attribute_names[0]}
    visible = set(workflow.attribute_names) - hidden
    report = reconstruction_attack(workflow, module.name, visible)
    level = workflow_privacy_level(workflow, module.name, visible)
    assert report.achieved_gamma == level


@settings(max_examples=10, deadline=None)
@given(seeds)
def test_serialization_round_trip_preserves_provenance(seed):
    """Workflow JSON round-trips preserve the provenance relation exactly."""
    workflow = random_workflow(4, seed=seed, max_inputs=2, max_outputs=2)
    clone = workflow_from_dict(workflow_to_dict(workflow))
    assert clone.provenance_relation() == workflow.provenance_relation()
    assert clone.data_sharing_degree() == workflow.data_sharing_degree()


@settings(max_examples=10, deadline=None)
@given(seeds, st.sampled_from(["set", "cardinality"]))
def test_problem_round_trip_preserves_feasibility_semantics(seed, kind):
    """Problem JSON round-trips preserve feasibility of arbitrary hidden sets."""
    problem = random_problem(n_modules=6, kind=kind, seed=seed)
    clone = problem_from_dict(problem_to_dict(problem))
    names = list(problem.workflow.attribute_names)
    # Probe a few deterministic hidden sets derived from the seed.
    probes = [set(names[: (seed % len(names)) + 1]), set(names[::2]), set(names)]
    for hidden in probes:
        assert problem.is_feasible(
            hidden, problem.required_privatizations(hidden)
        ) == clone.is_feasible(hidden, clone.required_privatizations(hidden))


@settings(max_examples=10, deadline=None)
@given(seeds)
def test_local_search_never_worsens_and_stays_feasible(seed):
    """Local search keeps feasibility and never increases cost."""
    problem = random_problem(n_modules=8, kind="set", seed=seed)
    base = solve_greedy(problem)
    improved = improve_solution(problem, base)
    problem.validate_solution(improved)
    assert improved.cost() <= base.cost() + 1e-9
    assert improved.cost() >= solve_exact_ip(problem).cost() - 1e-6
