"""Property-based tests for the relation algebra (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Relation, Schema, boolean_attributes

NAMES = ("p", "q", "r", "s")


def schemas(min_size: int = 1, max_size: int = 4):
    return st.integers(min_value=min_size, max_value=max_size).map(
        lambda k: Schema(boolean_attributes(NAMES[:k]))
    )


@st.composite
def relations(draw, min_rows: int = 0, max_rows: int = 12):
    schema = draw(schemas())
    n_rows = draw(st.integers(min_value=min_rows, max_value=max_rows))
    rows = [
        {name: draw(st.integers(min_value=0, max_value=1)) for name in schema.names}
        for _ in range(n_rows)
    ]
    return Relation(schema, rows)


@st.composite
def relations_with_subset(draw):
    relation = draw(relations())
    names = relation.attribute_names
    subset = draw(
        st.lists(st.sampled_from(names), min_size=1, max_size=len(names), unique=True)
    )
    return relation, subset


@settings(max_examples=60, deadline=None)
@given(relations_with_subset())
def test_projection_is_idempotent(data):
    relation, subset = data
    once = relation.project(subset)
    twice = once.project(subset)
    assert once == twice


@settings(max_examples=60, deadline=None)
@given(relations_with_subset())
def test_projection_never_grows(data):
    relation, subset = data
    assert len(relation.project(subset)) <= len(relation)


@settings(max_examples=60, deadline=None)
@given(relations_with_subset())
def test_projection_rows_come_from_original(data):
    relation, subset = data
    ordered = relation.schema.project_order(subset)
    original = {tuple(row[name] for name in ordered) for row in relation}
    for row in relation.project(subset):
        assert tuple(row[name] for name in ordered) in original


@settings(max_examples=60, deadline=None)
@given(relations())
def test_join_with_itself_is_identity(relation):
    assert relation.natural_join(relation) == relation


@settings(max_examples=60, deadline=None)
@given(relations())
def test_union_with_itself_is_identity(relation):
    assert relation.union(relation) == relation


@settings(max_examples=60, deadline=None)
@given(relations())
def test_difference_with_itself_is_empty(relation):
    assert len(relation.difference(relation)) == 0


@settings(max_examples=60, deadline=None)
@given(relations_with_subset())
def test_group_by_partitions_rows(data):
    relation, subset = data
    groups = relation.group_by(subset)
    assert sum(len(group) for group in groups.values()) == len(relation)


@settings(max_examples=60, deadline=None)
@given(relations())
def test_trivial_fd_always_holds(relation):
    names = relation.attribute_names
    assert relation.satisfies_fd(names, names)


@settings(max_examples=60, deadline=None)
@given(relations_with_subset())
def test_fd_to_projection_of_determinant(data):
    relation, subset = data
    # determinant = all attributes always determines any subset.
    assert relation.satisfies_fd(relation.attribute_names, subset)
