"""Cross-solver equivalence property: every registered solver is sound.

For small random workflows (requirement lists derived from standalone
analysis, so Theorems 4/8 guarantee workflow privacy), every registered
solver applicable to the instance must return a solution that

* the instance accepts as feasible,
* the brute-force possible-worlds check :func:`is_gamma_private_workflow`
  certifies as Γ-private, and
* never beats the exact optimum on cost.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import is_gamma_private_workflow
from repro.engine import Planner
from repro.exceptions import InfeasibleError, PrivacyError
from repro.workloads import random_workflow

seeds = st.integers(min_value=0, max_value=100)
GAMMA = 2


def _assert_gamma_private(workflow, solution, name):
    try:
        private = is_gamma_private_workflow(
            workflow,
            solution.visible_attributes,
            GAMMA,
            hidden_public_modules=solution.privatized_modules,
        )
    except PrivacyError:
        # World enumeration exceeded the work limit (e.g. the
        # hide-everything baseline); hiding more attributes never reduces
        # privacy (Proposition 1), so no soundness claim is lost by skipping.
        return
    assert private, f"solver {name!r} returned a non-private view"


def _solve_all(planner: Planner):
    """(name, result) for every applicable registered solver, exact first."""
    runs = [("exact", planner.solve(solver="exact"))]
    for spec in planner.solvers():
        if spec.name == "exact":
            continue
        try:
            runs.append((spec.name, planner.solve(solver=spec.name, seed=0)))
        except InfeasibleError:
            # hide_intermediate (and friends) are documented as not always
            # feasible; an explicit refusal is sound behaviour.
            assert spec.baseline
    return runs


@settings(max_examples=5, deadline=None)
@given(seeds)
def test_every_applicable_solver_is_gamma_private_and_bounded_by_exact(seed):
    workflow = random_workflow(3, seed=seed)
    planner = Planner(workflow, GAMMA, kind="set")
    problem = planner.problem()
    runs = _solve_all(planner)
    optimum = runs[0][1].cost
    for name, result in runs:
        problem.validate_solution(result.solution)
        _assert_gamma_private(workflow, result.solution, name)
        assert result.cost >= optimum - 1e-6, (
            f"solver {name!r} beat the exact optimum: {result.cost} < {optimum}"
        )
    # The whole cross-solver sweep derived requirement lists exactly once.
    assert planner.cache.stats().derivation_misses == 1


@settings(max_examples=4, deadline=None)
@given(seeds)
def test_cardinality_sweep_equivalence(seed):
    workflow = random_workflow(3, seed=seed)
    try:
        planner = Planner(workflow, GAMMA, kind="cardinality")
        problem = planner.problem()
    except InfeasibleError:
        pytest.skip("no cardinality-safe pair for this workflow")
    runs = _solve_all(planner)
    optimum = runs[0][1].cost
    for name, result in runs:
        problem.validate_solution(result.solution)
        assert result.cost >= optimum - 1e-6, (
            f"solver {name!r} beat the exact optimum: {result.cost} < {optimum}"
        )
