"""Property-based tests: every solver returns feasible, never-better-than-exact solutions."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim import (
    solve_cardinality_rounding,
    solve_exact_ip,
    solve_greedy,
    solve_set_lp,
)
from repro.workloads import random_problem

seeds = st.integers(min_value=0, max_value=200)


@settings(max_examples=15, deadline=None)
@given(seeds)
def test_cardinality_solvers_feasible_and_bounded(seed):
    problem = random_problem(n_modules=7, kind="cardinality", seed=seed)
    optimum = solve_exact_ip(problem)
    problem.validate_solution(optimum)
    rounded = solve_cardinality_rounding(problem, seed=seed)
    greedy = solve_greedy(problem)
    problem.validate_solution(rounded)
    problem.validate_solution(greedy)
    assert optimum.cost() <= rounded.cost() + 1e-6
    assert optimum.cost() <= greedy.cost() + 1e-6


@settings(max_examples=15, deadline=None)
@given(seeds)
def test_set_solvers_feasible_and_lmax_bounded(seed):
    problem = random_problem(n_modules=7, kind="set", seed=seed)
    optimum = solve_exact_ip(problem)
    lp_solution = solve_set_lp(problem)
    problem.validate_solution(lp_solution)
    assert optimum.cost() - 1e-6 <= lp_solution.cost()
    assert lp_solution.cost() <= problem.lmax * optimum.cost() + 1e-6


@settings(max_examples=10, deadline=None)
@given(seeds)
def test_greedy_respects_gamma_plus_one_on_bounded_sharing(seed):
    problem = random_problem(
        n_modules=7, kind="cardinality", seed=seed, max_sharing=2
    )
    gamma = problem.workflow.data_sharing_degree()
    greedy = solve_greedy(problem)
    optimum = solve_exact_ip(problem)
    assert greedy.cost() <= (gamma + 1) * optimum.cost() + 1e-6


@settings(max_examples=10, deadline=None)
@given(seeds)
def test_exact_ip_matches_enumeration(seed):
    from repro.optim import solve_exact_enumeration

    problem = random_problem(n_modules=6, kind="set", seed=seed)
    assert abs(
        solve_exact_ip(problem).cost() - solve_exact_enumeration(problem).cost()
    ) < 1e-6
