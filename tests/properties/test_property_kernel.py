"""Property tests: the bit-compiled kernel agrees with the reference oracle.

For random small workloads, every privacy verdict, OUT-set, privacy level
and derived requirement list produced by ``backend="kernel"`` must be
*identical* to the brute-force ``backend="reference"`` path.  These tests
are the contract that lets the kernel be the default backend while the
original enumerators remain the ground truth.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Module,
    Workflow,
    boolean_attributes,
    is_gamma_private_workflow,
    standalone_out_counts,
    standalone_privacy_level,
    workflow_out_sets,
)
from repro.core.requirements import (
    derive_cardinality_requirements,
    derive_set_requirements,
)
from repro.core.standalone import (
    enumerate_safe_hidden_subsets,
    minimal_safe_hidden_subsets,
    minimum_cost_safe_subset,
    safe_cardinality_pairs,
)
from repro.exceptions import InfeasibleError
from repro.kernel import HAVE_NUMPY, CompiledModule, sweep_batching
from repro.kernel.packing import NUMPY_MIN_ROWS


def random_boolean_module(
    seed: int, n_inputs: int, n_outputs: int, name: str = "m", prefix: str = ""
) -> Module:
    """A random total boolean function as a Module (same idiom as the
    privacy property tests)."""
    rng = random.Random(seed)
    input_names = [f"{prefix}i{k}" for k in range(n_inputs)]
    output_names = [f"{prefix}o{k}" for k in range(n_outputs)]
    table = {
        code: tuple(rng.randint(0, 1) for _ in range(n_outputs))
        for code in range(2**n_inputs)
    }

    def function(values):
        code = 0
        for index, attr in enumerate(input_names):
            code |= (values[attr] & 1) << index
        return dict(zip(output_names, table[code]))

    return Module(
        name,
        boolean_attributes(input_names),
        boolean_attributes(output_names),
        function,
    )


def random_two_module_chain(seed: int) -> Workflow:
    """A 2-module boolean chain, optionally with a public second module."""
    rng = random.Random(seed)
    first = random_boolean_module(
        rng.randrange(2**31), 2, 2, name="first", prefix="a"
    )
    chained_inputs = list(first.output_schema.attributes)
    source = random_boolean_module(rng.randrange(2**31), 2, 1, name="src", prefix="b")

    def second_fn(values, _src=source, _ins=[a.name for a in chained_inputs]):
        mapped = {
            src_name: values[actual]
            for src_name, actual in zip(_src.input_names, _ins)
        }
        return {"c0": _src.apply(mapped)[_src.output_names[0]]}

    second = Module(
        "second",
        chained_inputs,
        boolean_attributes(["c0"]),
        second_fn,
        private=rng.random() < 0.7,
    )
    return Workflow([first, second])


module_shapes = st.tuples(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
)


@settings(max_examples=40, deadline=None)
@given(module_shapes, st.data())
def test_standalone_counts_and_levels_agree(shape, data):
    seed, n_in, n_out = shape
    module = random_boolean_module(seed, n_in, n_out)
    names = list(module.attribute_names)
    visible = set(
        data.draw(st.lists(st.sampled_from(names), max_size=len(names), unique=True))
    )
    assert standalone_out_counts(module, visible, backend="kernel") == (
        standalone_out_counts(module, visible, backend="reference")
    )
    assert standalone_privacy_level(module, visible, backend="kernel") == (
        standalone_privacy_level(module, visible, backend="reference")
    )


@settings(max_examples=25, deadline=None)
@given(module_shapes, st.integers(min_value=2, max_value=4))
def test_safe_subset_sweeps_agree(shape, gamma):
    seed, n_in, n_out = shape
    module = random_boolean_module(seed, n_in, n_out)
    assert enumerate_safe_hidden_subsets(module, gamma, backend="kernel") == (
        enumerate_safe_hidden_subsets(module, gamma, backend="reference")
    )
    assert minimal_safe_hidden_subsets(module, gamma, backend="kernel") == (
        minimal_safe_hidden_subsets(module, gamma, backend="reference")
    )
    assert safe_cardinality_pairs(module, gamma, backend="kernel") == (
        safe_cardinality_pairs(module, gamma, backend="reference")
    )


@settings(max_examples=25, deadline=None)
@given(module_shapes, st.integers(min_value=2, max_value=3))
def test_derived_requirement_lists_agree(shape, gamma):
    seed, n_in, n_out = shape
    module = random_boolean_module(seed, n_in, n_out)

    def outcome(derive, extract):
        """(options, None) on success, (None, exception type) on failure."""
        try:
            return extract(derive()), None
        except Exception as error:
            return None, type(error)

    def set_options(lst):
        return [(option.hidden_inputs, option.hidden_outputs) for option in lst]

    def cardinality_options(lst):
        return [(option.alpha, option.beta) for option in lst]

    # Infeasible modules must fail identically on both backends.
    assert outcome(
        lambda: derive_set_requirements(module, gamma, backend="kernel"),
        set_options,
    ) == outcome(
        lambda: derive_set_requirements(module, gamma, backend="reference"),
        set_options,
    )
    assert outcome(
        lambda: derive_cardinality_requirements(module, gamma, backend="kernel"),
        cardinality_options,
    ) == outcome(
        lambda: derive_cardinality_requirements(module, gamma, backend="reference"),
        cardinality_options,
    )


@settings(max_examples=25, deadline=None)
@given(module_shapes, st.integers(min_value=2, max_value=4))
def test_minimum_cost_safe_subset_agrees(shape, gamma):
    seed, n_in, n_out = shape
    module = random_boolean_module(seed, n_in, n_out)
    try:
        kernel_solution = minimum_cost_safe_subset(module, gamma, backend="kernel")
    except InfeasibleError:
        try:
            minimum_cost_safe_subset(module, gamma, backend="reference")
        except InfeasibleError:
            return
        raise AssertionError("kernel infeasible but reference feasible")
    reference_solution = minimum_cost_safe_subset(module, gamma, backend="reference")
    assert kernel_solution.hidden_attributes == reference_solution.hidden_attributes
    assert kernel_solution.cost == reference_solution.cost
    assert kernel_solution.meta["privacy_level"] == (
        reference_solution.meta["privacy_level"]
    )


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1), st.data())
def test_workflow_out_sets_agree(seed, data):
    workflow = random_two_module_chain(seed)
    names = list(workflow.attribute_names)
    visible = set(
        data.draw(
            st.lists(
                st.sampled_from(names), min_size=1, max_size=len(names), unique=True
            )
        )
    )
    hidden_public = (
        tuple(m.name for m in workflow.public_modules)
        if workflow.public_modules and data.draw(st.booleans())
        else ()
    )
    for module_name in workflow.module_names:
        kernel_sets = workflow_out_sets(
            workflow,
            module_name,
            visible,
            hidden_public_modules=hidden_public,
            backend="kernel",
        )
        reference_sets = workflow_out_sets(
            workflow,
            module_name,
            visible,
            hidden_public_modules=hidden_public,
            backend="reference",
        )
        assert kernel_sets == reference_sets


# ---------------------------------------------------------------------------
# PR 8: batched mask-sweep kernel — batched vs scalar vs reference
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(module_shapes, st.integers(min_value=2, max_value=4))
def test_batched_sweeps_three_way_parity(shape, gamma):
    """Batched kernel == scalar kernel == reference for every sweep output."""
    seed, n_in, n_out = shape
    module = random_boolean_module(seed, n_in, n_out)
    reference = (
        enumerate_safe_hidden_subsets(module, gamma, backend="reference"),
        minimal_safe_hidden_subsets(module, gamma, backend="reference"),
        safe_cardinality_pairs(module, gamma, backend="reference"),
    )
    for batched in (True, False):
        with sweep_batching(batched):
            compiled = CompiledModule(module)
            got = (
                compiled.enumerate_safe_hidden_subsets(gamma),
                compiled.minimal_safe_hidden_subsets(gamma),
                compiled.safe_cardinality_pairs(gamma),
            )
        assert got == reference, f"batched={batched} disagrees with reference"


@settings(max_examples=20, deadline=None)
@given(module_shapes, st.data())
def test_batched_levels_three_way_parity(shape, data):
    """privacy_levels_batch == per-mask scalar == reference levels."""
    seed, n_in, n_out = shape
    module = random_boolean_module(seed, n_in, n_out)
    names = list(module.attribute_names)
    n_bits = len(names)
    masks = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << n_bits) - 1),
            min_size=1,
            max_size=1 << n_bits,
        )
    )
    batched_compiled = CompiledModule(module)
    batched_levels = batched_compiled.privacy_levels_batch(masks)
    with sweep_batching(False):
        scalar_levels = CompiledModule(module).privacy_levels_batch(masks)
    assert batched_levels == scalar_levels
    layout = batched_compiled.layout
    for mask, level in zip(masks, batched_levels):
        visible = {
            name for name in names if mask & layout.field_masks[name]
        }
        assert level == standalone_privacy_level(
            module, visible, backend="reference"
        )


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=2, max_value=3),
)
def test_wide_layout_batch_falls_back_to_scalar(seed, gamma):
    """>63-bit layouts cannot use numpy; the batch API must still agree."""
    module = random_boolean_module(seed, 2, 62, name="wide", prefix="w")
    compiled = CompiledModule(module)
    assert compiled.layout.total_bits > 63
    assert compiled.packed.array is None
    hidable = list(module.attribute_names)[:4]
    with sweep_batching(True):
        kernel_safe = compiled.enumerate_safe_hidden_subsets(
            gamma, hidable=hidable
        )
    assert compiled.sweep_stats["batched_passes"] == 0, (
        "wide layout must take the pure-int scalar path"
    )
    assert kernel_safe == enumerate_safe_hidden_subsets(
        module, gamma, hidable=hidable, backend="reference"
    )


@settings(max_examples=15, deadline=None)
@given(module_shapes)
def test_small_relations_take_scalar_path(shape):
    """Relations below NUMPY_MIN_ROWS never pay a vectorized pass."""
    seed, n_in, n_out = shape
    module = random_boolean_module(seed, n_in, n_out)
    compiled = CompiledModule(module)
    assert len(compiled.packed.codes) < NUMPY_MIN_ROWS
    assert not compiled.packed.use_numpy
    n_bits = len(list(module.attribute_names))
    compiled.privacy_levels_batch(list(range(1 << n_bits)))
    assert compiled.sweep_stats["batched_passes"] == 0
    assert compiled.sweep_stats["batched_masks"] == 0
    assert compiled.sweep_stats["scalar_masks"] == 1 << n_bits


@settings(max_examples=15, deadline=None)
@given(module_shapes)
def test_interleaved_scalar_batched_share_memo(shape):
    """Scalar and batched calls fill one `_level_cache`; payloads agree."""
    seed, n_in, n_out = shape
    module = random_boolean_module(seed, n_in, n_out)
    n_bits = len(list(module.attribute_names))
    all_masks = list(range(1 << n_bits))

    interleaved = CompiledModule(module)
    for mask in all_masks[::2]:
        interleaved.privacy_level_bits(mask)
    seeded = dict(interleaved._level_cache)
    interleaved.privacy_levels_batch(all_masks)
    for mask, level in seeded.items():
        assert interleaved._level_cache[mask] == level

    scalar_only = CompiledModule(module)
    with sweep_batching(False):
        scalar_only.privacy_levels_batch(all_masks)
    assert interleaved.to_payload() == scalar_only.to_payload()


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=2, max_value=4),
)
def test_numpy_sized_module_three_way_parity(seed, gamma):
    """On a relation big enough for the vectorized path, all three agree."""
    module = random_boolean_module(seed, 8, 1, name="big", prefix="n")
    masks = list(range(1 << 9))
    batched_compiled = CompiledModule(module)
    batched_levels = batched_compiled.privacy_levels_batch(masks)
    if HAVE_NUMPY:
        assert batched_compiled.packed.use_numpy
        assert batched_compiled.sweep_stats["batched_passes"] >= 1
        assert batched_compiled.sweep_stats["batched_masks"] == len(masks)
    else:
        assert batched_compiled.sweep_stats["batched_passes"] == 0
    with sweep_batching(False):
        scalar_compiled = CompiledModule(module)
        scalar_levels = scalar_compiled.privacy_levels_batch(masks)
    assert batched_levels == scalar_levels
    assert scalar_compiled.sweep_stats["scalar_masks"] == len(masks)
    layout = batched_compiled.layout
    names = list(module.attribute_names)
    for mask in (0, 1, (1 << 9) - 1, 0b101010101):
        visible = {
            name for name in names if mask & layout.field_masks[name]
        }
        assert batched_levels[masks.index(mask)] == standalone_privacy_level(
            module, visible, backend="reference"
        )


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=2, max_value=4),
)
def test_cardinality_frontier_matches_brute_force(seed, gamma):
    """The monotone-frontier (alpha, beta) scan equals the full double loop.

    ``safe_cardinality_pairs`` exploits that safety is upward-closed in
    beta with a non-increasing frontier in alpha; this checks the pruned
    scan against an exhaustive per-pair evaluation on the same kernel.
    """
    module = random_boolean_module(seed, 2, 3)
    compiled = CompiledModule(module)
    pairs = compiled.safe_cardinality_pairs(gamma)
    in_masks = [compiled.layout.field_masks[n] for n in module.input_names]
    out_masks = [compiled.layout.field_masks[n] for n in module.output_names]
    n_out = len(out_masks)
    brute = [
        (alpha, beta)
        for alpha in range(len(in_masks) + 1)
        for beta in range(n_out + 1)
        if compiled._all_hidden_choices_safe(in_masks, out_masks, alpha, beta, gamma)
    ]
    assert pairs == brute
    # Upward closure in beta: each alpha's safe betas form a suffix.
    by_alpha: dict[int, list[int]] = {}
    for alpha, beta in pairs:
        by_alpha.setdefault(alpha, []).append(beta)
    for alpha, betas in by_alpha.items():
        assert betas == list(range(betas[0], n_out + 1))


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=2, max_value=3),
    st.data(),
)
def test_workflow_privacy_verdicts_agree(seed, gamma, data):
    workflow = random_two_module_chain(seed)
    names = list(workflow.attribute_names)
    visible = set(
        data.draw(
            st.lists(st.sampled_from(names), max_size=len(names), unique=True)
        )
    )
    assert is_gamma_private_workflow(
        workflow, visible, gamma, backend="kernel"
    ) == is_gamma_private_workflow(workflow, visible, gamma, backend="reference")
