"""Property tests: the bit-compiled kernel agrees with the reference oracle.

For random small workloads, every privacy verdict, OUT-set, privacy level
and derived requirement list produced by ``backend="kernel"`` must be
*identical* to the brute-force ``backend="reference"`` path.  These tests
are the contract that lets the kernel be the default backend while the
original enumerators remain the ground truth.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Module,
    Workflow,
    boolean_attributes,
    is_gamma_private_workflow,
    standalone_out_counts,
    standalone_privacy_level,
    workflow_out_sets,
)
from repro.core.requirements import (
    derive_cardinality_requirements,
    derive_set_requirements,
)
from repro.core.standalone import (
    enumerate_safe_hidden_subsets,
    minimal_safe_hidden_subsets,
    minimum_cost_safe_subset,
    safe_cardinality_pairs,
)
from repro.exceptions import InfeasibleError


def random_boolean_module(
    seed: int, n_inputs: int, n_outputs: int, name: str = "m", prefix: str = ""
) -> Module:
    """A random total boolean function as a Module (same idiom as the
    privacy property tests)."""
    rng = random.Random(seed)
    input_names = [f"{prefix}i{k}" for k in range(n_inputs)]
    output_names = [f"{prefix}o{k}" for k in range(n_outputs)]
    table = {
        code: tuple(rng.randint(0, 1) for _ in range(n_outputs))
        for code in range(2**n_inputs)
    }

    def function(values):
        code = 0
        for index, attr in enumerate(input_names):
            code |= (values[attr] & 1) << index
        return dict(zip(output_names, table[code]))

    return Module(
        name,
        boolean_attributes(input_names),
        boolean_attributes(output_names),
        function,
    )


def random_two_module_chain(seed: int) -> Workflow:
    """A 2-module boolean chain, optionally with a public second module."""
    rng = random.Random(seed)
    first = random_boolean_module(
        rng.randrange(2**31), 2, 2, name="first", prefix="a"
    )
    chained_inputs = list(first.output_schema.attributes)
    source = random_boolean_module(rng.randrange(2**31), 2, 1, name="src", prefix="b")

    def second_fn(values, _src=source, _ins=[a.name for a in chained_inputs]):
        mapped = {
            src_name: values[actual]
            for src_name, actual in zip(_src.input_names, _ins)
        }
        return {"c0": _src.apply(mapped)[_src.output_names[0]]}

    second = Module(
        "second",
        chained_inputs,
        boolean_attributes(["c0"]),
        second_fn,
        private=rng.random() < 0.7,
    )
    return Workflow([first, second])


module_shapes = st.tuples(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
)


@settings(max_examples=40, deadline=None)
@given(module_shapes, st.data())
def test_standalone_counts_and_levels_agree(shape, data):
    seed, n_in, n_out = shape
    module = random_boolean_module(seed, n_in, n_out)
    names = list(module.attribute_names)
    visible = set(
        data.draw(st.lists(st.sampled_from(names), max_size=len(names), unique=True))
    )
    assert standalone_out_counts(module, visible, backend="kernel") == (
        standalone_out_counts(module, visible, backend="reference")
    )
    assert standalone_privacy_level(module, visible, backend="kernel") == (
        standalone_privacy_level(module, visible, backend="reference")
    )


@settings(max_examples=25, deadline=None)
@given(module_shapes, st.integers(min_value=2, max_value=4))
def test_safe_subset_sweeps_agree(shape, gamma):
    seed, n_in, n_out = shape
    module = random_boolean_module(seed, n_in, n_out)
    assert enumerate_safe_hidden_subsets(module, gamma, backend="kernel") == (
        enumerate_safe_hidden_subsets(module, gamma, backend="reference")
    )
    assert minimal_safe_hidden_subsets(module, gamma, backend="kernel") == (
        minimal_safe_hidden_subsets(module, gamma, backend="reference")
    )
    assert safe_cardinality_pairs(module, gamma, backend="kernel") == (
        safe_cardinality_pairs(module, gamma, backend="reference")
    )


@settings(max_examples=25, deadline=None)
@given(module_shapes, st.integers(min_value=2, max_value=3))
def test_derived_requirement_lists_agree(shape, gamma):
    seed, n_in, n_out = shape
    module = random_boolean_module(seed, n_in, n_out)

    def outcome(derive, extract):
        """(options, None) on success, (None, exception type) on failure."""
        try:
            return extract(derive()), None
        except Exception as error:
            return None, type(error)

    def set_options(lst):
        return [(option.hidden_inputs, option.hidden_outputs) for option in lst]

    def cardinality_options(lst):
        return [(option.alpha, option.beta) for option in lst]

    # Infeasible modules must fail identically on both backends.
    assert outcome(
        lambda: derive_set_requirements(module, gamma, backend="kernel"),
        set_options,
    ) == outcome(
        lambda: derive_set_requirements(module, gamma, backend="reference"),
        set_options,
    )
    assert outcome(
        lambda: derive_cardinality_requirements(module, gamma, backend="kernel"),
        cardinality_options,
    ) == outcome(
        lambda: derive_cardinality_requirements(module, gamma, backend="reference"),
        cardinality_options,
    )


@settings(max_examples=25, deadline=None)
@given(module_shapes, st.integers(min_value=2, max_value=4))
def test_minimum_cost_safe_subset_agrees(shape, gamma):
    seed, n_in, n_out = shape
    module = random_boolean_module(seed, n_in, n_out)
    try:
        kernel_solution = minimum_cost_safe_subset(module, gamma, backend="kernel")
    except InfeasibleError:
        try:
            minimum_cost_safe_subset(module, gamma, backend="reference")
        except InfeasibleError:
            return
        raise AssertionError("kernel infeasible but reference feasible")
    reference_solution = minimum_cost_safe_subset(module, gamma, backend="reference")
    assert kernel_solution.hidden_attributes == reference_solution.hidden_attributes
    assert kernel_solution.cost == reference_solution.cost
    assert kernel_solution.meta["privacy_level"] == (
        reference_solution.meta["privacy_level"]
    )


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1), st.data())
def test_workflow_out_sets_agree(seed, data):
    workflow = random_two_module_chain(seed)
    names = list(workflow.attribute_names)
    visible = set(
        data.draw(
            st.lists(
                st.sampled_from(names), min_size=1, max_size=len(names), unique=True
            )
        )
    )
    hidden_public = (
        tuple(m.name for m in workflow.public_modules)
        if workflow.public_modules and data.draw(st.booleans())
        else ()
    )
    for module_name in workflow.module_names:
        kernel_sets = workflow_out_sets(
            workflow,
            module_name,
            visible,
            hidden_public_modules=hidden_public,
            backend="kernel",
        )
        reference_sets = workflow_out_sets(
            workflow,
            module_name,
            visible,
            hidden_public_modules=hidden_public,
            backend="reference",
        )
        assert kernel_sets == reference_sets


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=2, max_value=3),
    st.data(),
)
def test_workflow_privacy_verdicts_agree(seed, gamma, data):
    workflow = random_two_module_chain(seed)
    names = list(workflow.attribute_names)
    visible = set(
        data.draw(
            st.lists(st.sampled_from(names), max_size=len(names), unique=True)
        )
    )
    assert is_gamma_private_workflow(
        workflow, visible, gamma, backend="kernel"
    ) == is_gamma_private_workflow(workflow, visible, gamma, backend="reference")
