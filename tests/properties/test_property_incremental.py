"""Property tests: module-granular assembly never changes an answer.

PR 4 rebuilds workflow requirement derivation as an assembly of per-module
lookups keyed by module content fingerprint.  Three contracts must hold on
randomized instances:

* assembling a workflow's requirement mapping from per-module derivations
  yields *exactly* what the whole-workflow path yields — same modules, same
  mapping order, same options — on both backends;
* per-module artifacts served from the store's shared ``modules/`` tier
  (with the workflow-level fast path disabled) equal fresh derivations;
* a compiled module round-tripped through its store payload (privacy-level
  memos included) answers every sweep identically to a fresh compilation.
"""

from __future__ import annotations

import shutil
import tempfile

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import derive_workflow_requirements
from repro.engine import DerivationCache, DerivationStore
from repro.exceptions import RequirementError
from repro.kernel import CompiledModule, compile_module
from repro.workloads import module_fingerprint, random_workflow, workflow_family

seeds = st.integers(min_value=0, max_value=2**31 - 1)
gammas = st.integers(min_value=2, max_value=3)
kinds = st.sampled_from(["set", "cardinality"])
backends = st.sampled_from(["kernel", "reference"])


def signature(lists):
    """Structural form of a requirement mapping (object-identity free)."""
    out = {}
    for name, lst in lists.items():
        options = []
        for option in lst:
            if hasattr(option, "alpha"):
                options.append(("card", option.alpha, option.beta))
            else:
                options.append(
                    (
                        "set",
                        tuple(sorted(option.hidden_inputs)),
                        tuple(sorted(option.hidden_outputs)),
                    )
                )
        out[name] = sorted(options)
    return out


@settings(max_examples=20, deadline=None)
@given(seeds, gammas, kinds, backends)
def test_module_assembly_equals_whole_workflow_path(seed, gamma, kind, backend):
    """Cache assembly == derive_workflow_requirements, on both backends."""
    workflow = random_workflow(3, seed=seed % 1000, max_inputs=2)
    try:
        direct = derive_workflow_requirements(
            workflow, gamma, kind=kind, backend=backend
        )
    except RequirementError:
        assume(False)
    assembled = DerivationCache().requirements(workflow, gamma, kind, backend=backend)
    assert list(assembled) == list(direct)  # mapping (constraint) order
    assert signature(assembled) == signature(direct)


@settings(max_examples=10, deadline=None)
@given(seeds, gammas, kinds)
def test_module_tier_store_round_trip_matches_fresh(seed, gamma, kind):
    """Per-module entries served from disk equal fresh derivations, even
    when the workflow-level requirement file is gone."""
    family = workflow_family(
        n_variants=1, seed=seed % 1000, n_modules=3, topology="chain"
    )
    base, variant = family
    directory = tempfile.mkdtemp(prefix="repro-prop-store-")
    try:
        store = DerivationStore(directory)
        cold = DerivationCache(store=store)
        try:
            cold.requirements(base, gamma, kind)
        except RequirementError:
            assume(False)
        # Drop every workflow-tier entry; only the shared modules/ tier
        # remains, so the warm path must assemble from per-module lookups.
        for child in store.root.iterdir():
            if child.name != "modules":
                shutil.rmtree(child)
        warm = DerivationCache(store=store)
        served = warm.requirements(variant, gamma, kind)
        fresh = DerivationCache().requirements(variant, gamma, kind)
        assert list(served) == list(fresh)
        assert signature(served) == signature(fresh)
        # Exactly the edited module was derived; shared ones came from disk.
        changed = sum(
            1
            for m in variant.modules
            if module_fingerprint(m) != module_fingerprint(base.module(m.name))
        )
        assert warm.rederived_modules == changed
        assert warm.reused_modules == len(base) - changed
    finally:
        shutil.rmtree(directory, ignore_errors=True)


@settings(max_examples=20, deadline=None)
@given(seeds, gammas)
def test_compiled_module_payload_round_trip_is_lossless(seed, gamma):
    """A store round-tripped module pack (memos included) answers every
    privacy question identically to a fresh compilation."""
    workflow = random_workflow(2, seed=seed % 1000, max_inputs=2)
    module = workflow.modules[seed % len(workflow.modules)]
    fresh = compile_module(module)
    fresh.minimal_safe_hidden_subsets(gamma)  # populate level memos
    loaded = CompiledModule.from_payload(module, fresh.to_payload())
    assert loaded._level_cache == fresh._level_cache
    assert loaded.minimal_safe_hidden_subsets(gamma) == (
        fresh.minimal_safe_hidden_subsets(gamma)
    )
    assert loaded.enumerate_safe_hidden_subsets(gamma) == (
        fresh.enumerate_safe_hidden_subsets(gamma)
    )
    assert loaded.safe_cardinality_pairs(gamma) == fresh.safe_cardinality_pairs(gamma)
    visible = list(module.attribute_names)[:: 2]
    assert loaded.privacy_level(visible) == fresh.privacy_level(visible)
    assert loaded.out_counts(visible) == fresh.out_counts(visible)
