"""Tests for the command-line interface (python -m repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import SecureViewProblem
from repro.workloads import dump_problem, figure1_workflow


@pytest.fixture
def problem_file(tmp_path) -> str:
    workflow = figure1_workflow()
    problem = SecureViewProblem.from_standalone_analysis(workflow, 2, kind="set")
    path = tmp_path / "figure1.json"
    dump_problem(problem, str(path))
    return str(path)


class TestTopLevel:
    def test_version_flag_prints_version_and_exits_zero(self, capsys):
        assert main(["--version"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert any(ch.isdigit() for ch in out)

    def test_unknown_subcommand_exits_nonzero_with_usage(self, capsys):
        assert main(["frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "invalid choice" in err

    def test_no_subcommand_exits_nonzero_with_usage(self, capsys):
        assert main([]) == 2
        assert "usage:" in capsys.readouterr().err


class TestInfoAndSolve:
    def test_info_prints_summary(self, problem_file, capsys):
        assert main(["info", problem_file]) == 0
        out = capsys.readouterr().out
        assert "modules" in out and "Γ" in out
        assert "m1" in out

    def test_solve_writes_solution(self, problem_file, tmp_path, capsys):
        out_path = tmp_path / "solution.json"
        code = main(
            ["solve", problem_file, "--method", "exact", "--output", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["cost"] > 0
        assert payload["hidden_attributes"]

    def test_solve_with_local_search(self, problem_file, capsys):
        assert (
            main(["solve", problem_file, "--method", "greedy", "--local-search"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["hidden_attributes"]

    def test_solve_payload_surfaces_cache_stats(self, problem_file, capsys):
        assert main(["solve", problem_file, "--solver", "exact"]) == 0
        payload = json.loads(capsys.readouterr().out)
        stats = payload["cache_stats"]
        for key in (
            "derivation_hits",
            "derivation_misses",
            "compile_hits",
            "compile_misses",
            "store_hits",
            "store_misses",
        ):
            assert isinstance(stats[key], int) and stats[key] >= 0


class TestVerifyAndAttack:
    def _solve(self, problem_file, tmp_path) -> str:
        out_path = tmp_path / "solution.json"
        main(["solve", problem_file, "--method", "exact", "--output", str(out_path)])
        return str(out_path)

    def test_verify_accepts_good_solution(self, problem_file, tmp_path):
        solution_file = self._solve(problem_file, tmp_path)
        assert main(["verify", problem_file, solution_file, "--brute-force"]) == 0

    def test_verify_rejects_bad_solution(self, problem_file, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"hidden_attributes": [], "privatized_modules": []}))
        assert main(["verify", problem_file, str(bad)]) == 1

    def test_attack_respects_gamma(self, problem_file, tmp_path, capsys):
        solution_file = self._solve(problem_file, tmp_path)
        assert main(["attack", problem_file, solution_file, "m1"]) == 0
        out = capsys.readouterr().out
        assert "achieved Γ" in out

    def test_attack_flags_breach(self, problem_file, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text(
            json.dumps({"hidden_attributes": [], "privatized_modules": []})
        )
        assert main(["attack", problem_file, str(empty), "m1"]) == 1


class TestGenerateAndCompare:
    def test_generate_random_problem(self, tmp_path, capsys):
        out_path = tmp_path / "generated.json"
        argv = ["generate", str(out_path), "--modules", "6"]
        argv += ["--kind", "cardinality", "--seed", "3"]
        assert main(argv) == 0
        payload = json.loads(out_path.read_text())
        assert len(payload["workflow"]["modules"]) == 6

    def test_generate_scientific_problem(self, tmp_path):
        out_path = tmp_path / "sci.json"
        assert main(
            ["generate", str(out_path), "--modules", "10", "--shape", "scientific"]
        ) == 0
        assert out_path.exists()

    def test_compare_prints_table(self, problem_file, capsys):
        assert main(["compare", problem_file, "--methods", "greedy", "set_lp"]) == 0
        out = capsys.readouterr().out
        assert "greedy" in out and "cost" in out


class TestEngine:
    def test_list_solvers_prints_registry(self, capsys):
        assert main(["engine", "list-solvers"]) == 0
        out = capsys.readouterr().out
        for name in ("exact", "set_lp", "lp_rounding", "greedy", "general_lp"):
            assert name in out
        assert "constraints" in out and "scope" in out

    def test_list_solvers_for_problem_names_auto_choice(self, problem_file, capsys):
        assert main(["engine", "list-solvers", "--problem", problem_file]) == 0
        out = capsys.readouterr().out
        assert "auto would pick 'set_lp'" in out
        assert "lp_rounding" not in out  # wrong constraint kind

    def test_solve_with_solver_flag_and_verify(self, problem_file, capsys):
        assert main(["solve", problem_file, "--solver", "exact", "--verify"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["solver"] == "exact"
        assert payload["guarantee"] == "optimal"
        assert payload["certificate"]["ok"] is True

    def test_solve_with_seed_is_reproducible(self, tmp_path, capsys):
        problem_path = tmp_path / "card.json"
        main(["generate", str(problem_path), "--modules", "6", "--kind", "cardinality"])
        capsys.readouterr()
        outputs = []
        for _ in range(2):
            assert main(
                ["solve", str(problem_path), "--solver", "lp_rounding", "--seed", "7"]
            ) == 0
            outputs.append(json.loads(capsys.readouterr().out)["hidden_attributes"])
        assert outputs[0] == outputs[1]


class TestSweep:
    @pytest.fixture
    def grid_file(self, tmp_path, capsys) -> str:
        for seed in (1, 2):
            main(
                [
                    "generate", str(tmp_path / f"w{seed}.json"),
                    "--modules", "5", "--kind", "set", "--seed", str(seed),
                ]
            )
        capsys.readouterr()
        grid = tmp_path / "grid.json"
        grid.write_text(
            json.dumps(
                {
                    "workflows": ["w1.json", "w2.json"],
                    "gammas": [2],
                    "kinds": ["set"],
                    "solvers": ["set_lp", "greedy"],
                    "seeds": [0],
                }
            )
        )
        return str(grid)

    def test_sweep_emits_json_report(self, grid_file, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        assert main(["sweep", grid_file, "--jobs", "2", "--output", str(out_path)]) == 0
        printed = json.loads(capsys.readouterr().out)
        written = json.loads(out_path.read_text())
        assert printed == written
        assert printed["cells"] == 4 and printed["errors"] == 0
        assert len(printed["records"]) == 4
        assert all("cache" in record for record in printed["records"])

    def test_repeated_sweep_against_warm_store_derives_nothing(
        self, grid_file, tmp_path, capsys
    ):
        store = str(tmp_path / "store")
        assert main(["sweep", grid_file, "--jobs", "2", "--store", store]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["stats"]["derivation_misses"] > 0

        assert main(["sweep", grid_file, "--jobs", "2", "--store", store]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["stats"]["derivation_misses"] == 0
        assert warm["stats"]["result_store_hits"] == warm["cells"]
        scrub = ("seconds", "cache", "from_store")
        assert [
            {k: v for k, v in record.items() if k not in scrub}
            for record in warm["records"]
        ] == [
            {k: v for k, v in record.items() if k not in scrub}
            for record in cold["records"]
        ]

    def test_solve_with_store_reports_store_hits(self, problem_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["solve", problem_file, "--solver", "exact", "--verify",
                     "--store", store]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["store"] == store and cold["store_hits"] == 0

        assert main(["solve", problem_file, "--solver", "exact", "--verify",
                     "--store", store]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["store_hits"] > 0
        assert warm["hidden_attributes"] == cold["hidden_attributes"]
        assert warm["cost"] == cold["cost"]

    def test_compare_accepts_store(self, problem_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = ["compare", problem_file, "--methods", "greedy", "--no-exact",
                "--store", store]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out.splitlines()[0] == first.splitlines()[0]

    def test_sweep_with_error_cells_exits_nonzero_listing_indices(
        self, grid_file, tmp_path, capsys
    ):
        import json as json_module

        grid = json_module.loads(open(grid_file).read())
        grid["solvers"] = ["set_lp", "no-such-solver"]
        bad_grid = tmp_path / "bad-grid.json"
        bad_grid.write_text(json_module.dumps(grid))
        assert main(["sweep", str(bad_grid)]) == 1
        captured = capsys.readouterr()
        report = json.loads(captured.out)
        assert report["errors"] == 2
        failing = [r["index"] for r in report["records"] if "error" in r]
        assert "sweep cell(s) failed" in captured.err
        for index in failing:
            assert str(index) in captured.err

    def test_sweep_allow_errors_tolerates_partial_failures(
        self, grid_file, tmp_path, capsys
    ):
        import json as json_module

        grid = json_module.loads(open(grid_file).read())
        grid["solvers"] = ["set_lp", "no-such-solver"]
        bad_grid = tmp_path / "bad-grid.json"
        bad_grid.write_text(json_module.dumps(grid))
        assert main(["sweep", str(bad_grid), "--allow-errors"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["errors"] == 2
        assert report["cells"] == 4

    def test_sweep_allow_errors_still_fails_when_every_cell_failed(
        self, grid_file, tmp_path, capsys
    ):
        import json as json_module

        grid = json_module.loads(open(grid_file).read())
        grid["solvers"] = ["no-such-solver"]
        dead_grid = tmp_path / "dead-grid.json"
        dead_grid.write_text(json_module.dumps(grid))
        assert main(["sweep", str(dead_grid), "--allow-errors"]) == 1
        assert "all 2 sweep cell(s) failed" in capsys.readouterr().err

    def test_sweep_missing_grid_errors_cleanly(self, tmp_path, capsys):
        assert main(["sweep", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_sweep_malformed_grid_errors_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["sweep", str(bad)]) == 1
        assert "error: invalid grid file" in capsys.readouterr().err

    def test_sweep_empty_grid_errors_cleanly(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text("{}")
        assert main(["sweep", str(empty)]) == 1
        assert "error: invalid grid file" in capsys.readouterr().err


class TestServeAndSubmit:
    @pytest.fixture
    def server(self):
        from repro.service import ServiceServer, SolveService

        service = SolveService(workers=2, default_timeout=30)
        instance = ServiceServer(service, port=0).start()
        try:
            yield instance
        finally:
            instance.stop(drain_timeout=30)

    def test_submit_problem_file(self, problem_file, server, capsys):
        assert main(["submit", problem_file, "--url", server.url,
                     "--solver", "exact"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["cost"] == 3.0
        assert record["resolved_solver"] == "exact"

    def test_submit_with_gamma_derives_server_side(self, problem_file, server, capsys):
        assert main(["submit", problem_file, "--url", server.url,
                     "--gamma", "2", "--kind", "set", "--verify"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["gamma"] == 2
        assert record["verified"] is True

    def test_submit_twice_hits_the_result_cache(self, problem_file, server, capsys):
        args = ["submit", problem_file, "--url", server.url, "--gamma", "2"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cost"] == first["cost"]
        assert server.service.metrics()["result_hits"]["memory"] >= 1

    def test_submit_unreachable_service_errors_cleanly(self, problem_file, capsys):
        assert main(["submit", problem_file, "--url", "http://127.0.0.1:9"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_submit_invalid_request_errors_cleanly(self, tmp_path, server, capsys):
        workflow_only = tmp_path / "broken.json"
        workflow_only.write_text(json.dumps({"modules": [{"name": "broken"}]}))
        assert main(["submit", str(workflow_only), "--url", server.url]) == 1
        assert "error:" in capsys.readouterr().err

    def test_submit_async_prints_the_job_handle(self, problem_file, server, capsys):
        assert main(["submit", problem_file, "--url", server.url,
                     "--solver", "exact", "--async"]) == 0
        handle = json.loads(capsys.readouterr().out)
        assert handle["cells"] == 1
        # The job is real and queryable on the server afterwards.
        from repro.service import ServiceClient

        final = ServiceClient(server.url, timeout=30).wait_job(
            handle["job"], timeout=30, poll=0.02
        )
        assert final["state"] == "done" and final["completed"] == 1

    def test_submit_watch_polls_to_completion(self, problem_file, server, capsys):
        assert main(["submit", problem_file, "--url", server.url,
                     "--solver", "exact", "--watch"]) == 0
        output = capsys.readouterr()
        final = json.loads(output.out)
        assert final["state"] == "done"
        assert final["records"][0]["cost"] == 3.0
        assert "repro submit: job" in output.err  # the progress stream

    def test_submit_watch_failed_cell_exits_nonzero(
        self, problem_file, server, capsys
    ):
        assert main(["submit", problem_file, "--url", server.url,
                     "--solver", "no-such-solver", "--watch"]) == 1
        final = json.loads(capsys.readouterr().out)
        assert final["failed"] == 1


class TestServeFlagValidation:
    @pytest.mark.parametrize(
        "flags",
        [
            ["--workers", "0"],
            ["--result-cache-size", "-1"],
            ["--result-cache-size", "many"],
            ["--result-ttl", "0"],
            ["--result-ttl", "-3"],
            ["--job-ttl", "0"],
            ["--max-jobs", "0"],
            ["--store-max-bytes", "-1"],
            ["--warmup", "-2"],
            ["--maintenance-interval", "-1"],
            ["--exec", "fibers"],
            ["--exec-workers", "0"],
        ],
    )
    def test_nonsensical_values_are_usage_errors(self, flags, capsys):
        assert main(["serve", *flags]) == 2
        assert "error" in capsys.readouterr().err

    def test_exec_workers_requires_process_mode(self, capsys):
        assert main(["serve", "--exec-workers", "2"]) == 2
        assert "requires --exec processes" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "flags",
        [["--store-max-bytes", "1000"], ["--warmup", "3"]],
    )
    def test_store_maintenance_flags_require_a_store(self, flags, capsys):
        assert main(["serve", *flags]) == 2
        assert "requires --store" in capsys.readouterr().err


class TestStoreMaintenance:
    @pytest.fixture
    def warm_store(self, problem_file, tmp_path, capsys) -> str:
        store = str(tmp_path / "store")
        assert main(["solve", problem_file, "--solver", "exact", "--verify",
                     "--store", store]) == 0
        capsys.readouterr()
        return store

    def test_store_stats_reports_contents(self, warm_store, capsys):
        assert main(["store", "stats", warm_store]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["files"] > 0 and stats["bytes"] > 0
        assert stats["workflow_entries"] >= 1
        assert stats["by_kind"]["out_sets"] >= 1

    def test_store_gc_prunes_to_budget_lru(self, warm_store, tmp_path, capsys):
        import os
        import time

        # Touch one artifact so LRU keeps it over the others.
        newest = None
        for root, _dirs, files in os.walk(warm_store):
            for name in files:
                path = os.path.join(root, name)
                os.utime(path, (time.time() + 60, time.time() + 60))
                newest = path
                break
            if newest:
                break
        budget = os.path.getsize(newest)
        assert main(["store", "gc", warm_store, "--max-bytes", str(budget)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["deleted_files"] > 0
        assert summary["kept_bytes"] <= budget
        assert os.path.exists(newest)

    def test_store_gc_never_deletes_temp_files(self, warm_store, capsys):
        import os

        temp = os.path.join(warm_store, "ab", "entry", "pack.json.tmp-123")
        os.makedirs(os.path.dirname(temp), exist_ok=True)
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write("{}")
        assert main(["store", "gc", warm_store, "--max-bytes", "0"]) == 0
        capsys.readouterr()
        assert os.path.exists(temp)
        assert main(["store", "stats", warm_store]) == 0
        assert json.loads(capsys.readouterr().out)["files"] == 0

    def test_store_gc_rejects_negative_budget_cleanly(self, warm_store, capsys):
        assert main(["store", "gc", warm_store, "--max-bytes", "-1"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_store_commands_reject_missing_directory(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        assert main(["store", "stats", missing]) == 1
        assert "not a store directory" in capsys.readouterr().err
        assert main(["store", "gc", missing, "--max-bytes", "0"]) == 1
        assert "not a store directory" in capsys.readouterr().err
