"""Tests for the boolean module function library."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError
from repro.workloads import (
    and_module,
    bit_reversal_module,
    constant_module,
    figure1_m1_module,
    full_adder_module,
    identity_module,
    majority_module,
    make_attributes,
    mux_module,
    or_module,
    parity_module,
    projection_module,
    random_permutation_module,
    threshold_module,
    xor_mask_module,
)


class TestOneOneModules:
    def test_identity(self):
        module = identity_module("id", ["a", "b"], ["c", "d"])
        assert module.apply({"a": 1, "b": 0}) == {"c": 1, "d": 0}
        assert module.is_invertible()

    def test_identity_arity_mismatch(self):
        with pytest.raises(SchemaError):
            identity_module("id", ["a"], ["c", "d"])

    def test_bit_reversal(self):
        module = bit_reversal_module("rev", ["a", "b"], ["c", "d"])
        assert module.apply({"a": 1, "b": 0}) == {"c": 0, "d": 1}
        assert module.is_invertible()

    def test_xor_mask(self):
        module = xor_mask_module("x", ["a", "b"], ["c", "d"], mask=[1, 0])
        assert module.apply({"a": 0, "b": 1}) == {"c": 1, "d": 1}

    def test_xor_mask_length_mismatch(self):
        with pytest.raises(SchemaError):
            xor_mask_module("x", ["a"], ["c"], mask=[1, 0])

    def test_random_permutation_deterministic_per_seed(self):
        first = random_permutation_module("p", ["a", "b"], ["c", "d"], seed=3)
        second = random_permutation_module("p", ["a", "b"], ["c", "d"], seed=3)
        for a in (0, 1):
            for b in (0, 1):
                assert first.apply({"a": a, "b": b}) == second.apply({"a": a, "b": b})

    def test_random_permutation_is_bijective(self):
        module = random_permutation_module(
            "p", ["a", "b", "c"], ["d", "e", "f"], seed=5
        )
        assert module.is_invertible()


class TestLossyModules:
    def test_constant(self):
        module = constant_module("c", ["a"], ["z"], value=1)
        assert module.apply({"a": 0}) == {"z": 1}
        assert module.apply({"a": 1}) == {"z": 1}
        assert module.public

    def test_and_or_parity(self):
        land = and_module("and", ["a", "b"], "z")
        lor = or_module("or", ["a", "b"], "z")
        xor = parity_module("xor", ["a", "b"], "z")
        assert land.apply({"a": 1, "b": 0})["z"] == 0
        assert lor.apply({"a": 1, "b": 0})["z"] == 1
        assert xor.apply({"a": 1, "b": 1})["z"] == 0

    def test_threshold(self):
        module = threshold_module("t", ["a", "b", "c"], "z", threshold=2)
        assert module.apply({"a": 1, "b": 1, "c": 0})["z"] == 1
        assert module.apply({"a": 1, "b": 0, "c": 0})["z"] == 0

    def test_majority(self):
        module = majority_module("m", ["a", "b", "c", "d"], "z")
        assert module.apply({"a": 1, "b": 1, "c": 0, "d": 0})["z"] == 1
        assert module.apply({"a": 1, "b": 0, "c": 0, "d": 0})["z"] == 0

    def test_figure1_m1_truth_table(self):
        module = figure1_m1_module()
        assert module.apply({"a1": 0, "a2": 1}) == {"a3": 1, "a4": 1, "a5": 0}

    def test_figure1_m1_arity_checked(self):
        with pytest.raises(SchemaError):
            figure1_m1_module(input_names=("a",), output_names=("b", "c", "d"))

    def test_full_adder(self):
        module = full_adder_module("fa", ["a", "b", "cin"], ["s", "cout"])
        assert module.apply({"a": 1, "b": 1, "cin": 1}) == {"s": 1, "cout": 1}
        assert module.apply({"a": 1, "b": 0, "cin": 0}) == {"s": 1, "cout": 0}

    def test_full_adder_arity(self):
        with pytest.raises(SchemaError):
            full_adder_module("fa", ["a", "b"], ["s", "cout"])

    def test_projection(self):
        module = projection_module("proj", ["a", "b", "c"], ["x", "y"], kept=[2, 0])
        assert module.apply({"a": 1, "b": 0, "c": 0}) == {"x": 0, "y": 1}

    def test_projection_arity(self):
        with pytest.raises(SchemaError):
            projection_module("proj", ["a"], ["x", "y"], kept=[0])

    def test_mux(self):
        module = mux_module("mux", "sel", ["a", "b"], "z")
        assert module.apply({"sel": 0, "a": 1, "b": 0})["z"] == 1
        assert module.apply({"sel": 1, "a": 1, "b": 0})["z"] == 0

    def test_mux_requires_two_inputs(self):
        with pytest.raises(SchemaError):
            mux_module("mux", "sel", ["a"], "z")

    def test_make_attributes_costs(self):
        attrs = make_attributes(["a", "b"], {"a": 4.0})
        assert attrs[0].cost == 4.0 and attrs[1].cost == 1.0
