"""Tests for the random workflow / requirement / problem generators."""

from __future__ import annotations

import pytest

from repro.core import CardinalityRequirementList, SetRequirementList
from repro.exceptions import WorkflowError
from repro.workloads import (
    chain_workflow,
    layered_workflow,
    random_cardinality_requirements,
    random_problem,
    random_requirements,
    random_set_requirements,
    random_workflow,
)


class TestTopologies:
    def test_chain_workflow_shape_and_sharing(self):
        workflow = chain_workflow(6, width=2, seed=1)
        assert len(workflow) == 6
        assert workflow.data_sharing_degree() == 1

    def test_chain_workflow_validation(self):
        with pytest.raises(WorkflowError):
            chain_workflow(0)

    def test_chain_workflow_deterministic(self):
        a = chain_workflow(4, seed=9)
        b = chain_workflow(4, seed=9)
        assert a.attribute_names == b.attribute_names

    def test_layered_workflow_shape(self):
        workflow = layered_workflow(3, 3, seed=2)
        assert len(workflow) == 9

    def test_layered_workflow_respects_max_sharing(self):
        workflow = layered_workflow(3, 3, seed=2, max_sharing=2)
        assert workflow.data_sharing_degree() <= 3  # soft cap; fallback may exceed by 1

    def test_layered_workflow_validation(self):
        with pytest.raises(WorkflowError):
            layered_workflow(0, 3)

    def test_random_workflow_is_dag_with_requested_size(self):
        workflow = random_workflow(15, seed=3)
        assert len(workflow) == 15
        assert len(workflow.attribute_names) > 15

    def test_random_workflow_private_fraction(self):
        workflow = random_workflow(20, seed=4, private_fraction=0.0)
        assert not workflow.private_modules

    def test_random_workflow_executes(self):
        workflow = random_workflow(6, seed=5)
        inputs = {name: 0 for name in workflow.initial_inputs}
        result = workflow.run(inputs)
        assert set(result) == set(workflow.attribute_names)

    def test_random_workflow_validation(self):
        with pytest.raises(WorkflowError):
            random_workflow(0)


class TestRequirementGenerators:
    def test_cardinality_lists_cover_private_modules(self):
        workflow = random_workflow(10, seed=6)
        lists = random_cardinality_requirements(workflow, seed=6)
        assert set(lists) == {m.name for m in workflow.private_modules}
        for name, requirement in lists.items():
            assert isinstance(requirement, CardinalityRequirementList)
            requirement.validate_against(workflow.module(name))

    def test_cardinality_lists_non_trivial(self):
        workflow = random_workflow(10, seed=7)
        lists = random_cardinality_requirements(workflow, seed=7)
        for requirement in lists.values():
            for option in requirement:
                assert option.alpha + option.beta >= 1

    def test_set_lists_valid(self):
        workflow = random_workflow(10, seed=8)
        lists = random_set_requirements(workflow, seed=8)
        for name, requirement in lists.items():
            assert isinstance(requirement, SetRequirementList)
            requirement.validate_against(workflow.module(name))

    def test_requirements_dispatch(self):
        workflow = random_workflow(6, seed=9)
        assert random_requirements(workflow, kind="set", seed=1)
        assert random_requirements(workflow, kind="cardinality", seed=1)
        with pytest.raises(WorkflowError):
            random_requirements(workflow, kind="nope")

    def test_generators_deterministic(self):
        workflow = random_workflow(8, seed=10)
        first = random_cardinality_requirements(workflow, seed=2)
        second = random_cardinality_requirements(workflow, seed=2)
        assert {
            name: [(o.alpha, o.beta) for o in req] for name, req in first.items()
        } == {
            name: [(o.alpha, o.beta) for o in req] for name, req in second.items()
        }


class TestProblemGenerator:
    @pytest.mark.parametrize("topology", ["chain", "layered", "random"])
    def test_problem_topologies(self, topology):
        problem = random_problem(n_modules=8, kind="set", seed=1, topology=topology)
        assert problem.requirements
        assert problem.constraint_kind == "set"

    def test_problem_is_solvable(self):
        problem = random_problem(n_modules=8, kind="cardinality", seed=2)
        solution = problem.solve(method="greedy")
        problem.validate_solution(solution)

    def test_problem_respects_max_sharing(self):
        problem = random_problem(
            n_modules=12, kind="cardinality", seed=3, max_sharing=1
        )
        assert problem.workflow.data_sharing_degree() <= 2


class TestRngThreading:
    """Every generator accepts an explicit rng (like the solvers do)."""

    def test_workflow_generators_reproducible_with_rng(self):
        import random

        for factory in (
            lambda rng: chain_workflow(4, rng=rng),
            lambda rng: layered_workflow(2, 2, rng=rng),
            lambda rng: random_workflow(5, rng=rng),
        ):
            a = factory(random.Random(42))
            b = factory(random.Random(42))
            assert a.attribute_names == b.attribute_names
            assert a.module_names == b.module_names
            assert [attr.cost for attr in a.schema] == [
                attr.cost for attr in b.schema
            ]

    def test_requirement_generators_reproducible_with_rng(self):
        import random

        workflow = random_workflow(5, seed=3)
        for kind in ("set", "cardinality"):
            a = random_requirements(workflow, kind=kind, rng=random.Random(7))
            b = random_requirements(workflow, kind=kind, rng=random.Random(7))
            assert {
                name: [repr(option) for option in lst] for name, lst in a.items()
            } == {
                name: [repr(option) for option in lst] for name, lst in b.items()
            }

    def test_random_problem_reproducible_end_to_end_with_one_rng(self):
        import random

        a = random_problem(n_modules=6, kind="set", rng=random.Random(11))
        b = random_problem(n_modules=6, kind="set", rng=random.Random(11))
        assert a.workflow.attribute_names == b.workflow.attribute_names
        assert {
            name: [repr(option) for option in lst]
            for name, lst in a.requirements.items()
        } == {
            name: [repr(option) for option in lst]
            for name, lst in b.requirements.items()
        }

    def test_seed_only_behaviour_unchanged(self):
        """Without rng, seed keeps its historical per-stage semantics."""
        a = random_problem(n_modules=5, kind="cardinality", seed=19)
        b = random_problem(n_modules=5, kind="cardinality", seed=19)
        assert a.workflow.attribute_names == b.workflow.attribute_names
        assert {
            name: [(o.alpha, o.beta) for o in lst]
            for name, lst in a.requirements.items()
        } == {
            name: [(o.alpha, o.beta) for o in lst]
            for name, lst in b.requirements.items()
        }
