"""Tests for JSON serialization of workflows, problems and solutions."""

from __future__ import annotations

import json

import pytest

from repro.core import SecureViewProblem
from repro.exceptions import SchemaError
from repro.optim import solve_exact_ip
from repro.workloads import (
    dump_problem,
    dump_workflow,
    example7_chain,
    figure1_workflow,
    load_problem,
    load_workflow,
    problem_from_dict,
    problem_to_dict,
    random_problem,
    solution_from_dict,
    solution_to_dict,
    workflow_from_dict,
    workflow_to_dict,
)


class TestWorkflowRoundTrip:
    def test_figure1_round_trip_preserves_relation(self):
        workflow = figure1_workflow()
        clone = workflow_from_dict(workflow_to_dict(workflow))
        assert clone.provenance_relation() == workflow.provenance_relation()
        assert clone.attribute_names == workflow.attribute_names

    def test_round_trip_preserves_privacy_flags_and_costs(self):
        workflow = example7_chain(2)
        clone = workflow_from_dict(workflow_to_dict(workflow))
        assert [m.private for m in clone.modules] == [
            m.private for m in workflow.modules
        ]
        assert clone.module("m_head").privatization_cost == pytest.approx(
            workflow.module("m_head").privatization_cost
        )
        assert clone.schema["x0"].cost == workflow.schema["x0"].cost

    def test_payload_is_json_serializable(self):
        payload = workflow_to_dict(figure1_workflow())
        text = json.dumps(payload)
        assert "m1" in text

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "workflow.json"
        dump_workflow(figure1_workflow(), str(path))
        clone = load_workflow(str(path))
        assert len(clone) == 3

    def test_tabulated_function_rejects_unknown_inputs(self):
        workflow = figure1_workflow()
        clone = workflow_from_dict(workflow_to_dict(workflow))
        module = clone.module("m1")
        with pytest.raises(Exception):
            module.apply({"a1": 2, "a2": 0})


class TestProblemRoundTrip:
    @pytest.mark.parametrize("kind", ["set", "cardinality"])
    def test_round_trip_preserves_optimum(self, kind):
        problem = random_problem(n_modules=8, kind=kind, seed=5)
        clone = problem_from_dict(problem_to_dict(problem))
        assert clone.constraint_kind == problem.constraint_kind
        assert clone.lmax == problem.lmax
        assert solve_exact_ip(clone).cost() == pytest.approx(
            solve_exact_ip(problem).cost()
        )

    def test_round_trip_preserves_hidable_and_privatization_flags(self):
        problem = random_problem(
            n_modules=8, kind="set", seed=6, private_fraction=0.6
        )
        clone = problem_from_dict(problem_to_dict(problem))
        assert clone.hidable_attributes == problem.hidable_attributes
        assert clone.allow_privatization == problem.allow_privatization

    def test_file_round_trip(self, tmp_path):
        problem = random_problem(n_modules=6, kind="cardinality", seed=7)
        path = tmp_path / "problem.json"
        dump_problem(problem, str(path))
        clone = load_problem(str(path))
        assert set(clone.requirements) == set(problem.requirements)

    def test_derived_figure1_problem_round_trip(self):
        workflow = figure1_workflow()
        problem = SecureViewProblem.from_standalone_analysis(workflow, 2, kind="set")
        clone = problem_from_dict(problem_to_dict(problem))
        assert solve_exact_ip(clone).cost() == pytest.approx(
            solve_exact_ip(problem).cost()
        )


class TestSolutionRoundTrip:
    def test_solution_round_trip(self):
        problem = random_problem(n_modules=8, kind="set", seed=9)
        solution = solve_exact_ip(problem)
        payload = solution_to_dict(solution)
        clone = solution_from_dict(problem.workflow, payload)
        assert clone.hidden_attributes == solution.hidden_attributes
        assert clone.cost() == pytest.approx(solution.cost())

    def test_unknown_requirement_kind_rejected(self):
        with pytest.raises(SchemaError):
            from repro.workloads.serialization import requirement_from_dict

            requirement_from_dict({"kind": "bogus", "module": "m", "options": []})
