"""Tests for content-addressed workflow fingerprints."""

from __future__ import annotations


from repro.core import Module, Workflow, boolean_attributes
from repro.workloads import (
    canonical_workflow_payload,
    figure1_workflow,
    module_fingerprint,
    module_payload_fingerprint,
    payload_fingerprint,
    random_workflow,
    workflow_fingerprint,
    workflow_from_dict,
    workflow_to_dict,
)


def _reversed_keys(obj):
    """Rebuild a JSON payload with every dict's key order reversed."""
    if isinstance(obj, dict):
        return {key: _reversed_keys(obj[key]) for key in reversed(list(obj))}
    if isinstance(obj, list):
        return [_reversed_keys(item) for item in obj]
    return obj


class TestFingerprintStability:
    def test_deterministic_across_calls(self):
        workflow = figure1_workflow()
        assert workflow_fingerprint(workflow) == workflow_fingerprint(workflow)

    def test_equal_for_independent_builds(self):
        assert workflow_fingerprint(figure1_workflow()) == workflow_fingerprint(
            figure1_workflow()
        )

    def test_survives_serialization_round_trip(self):
        workflow = random_workflow(6, seed=3)
        rebuilt = workflow_from_dict(workflow_to_dict(workflow))
        assert workflow_fingerprint(rebuilt) == workflow_fingerprint(workflow)

    def test_invariant_under_module_order(self):
        a, b, c = boolean_attributes(["a", "b", "c"])
        first = Module("first", [a], [b], lambda v: {"b": v["a"]})
        second = Module("second", [b], [c], lambda v: {"c": 1 - v["b"]})
        one = Workflow([first, second], name="chain")
        other = Workflow([second, first], name="chain")
        assert workflow_fingerprint(one) == workflow_fingerprint(other)

    def test_invariant_under_payload_dict_ordering(self):
        workflow = random_workflow(5, seed=9)
        payload = workflow_to_dict(workflow)
        shuffled = _reversed_keys(payload)
        shuffled["modules"] = list(reversed(shuffled["modules"]))
        rebuilt = workflow_from_dict(shuffled)
        assert workflow_fingerprint(rebuilt) == workflow_fingerprint(workflow)


class TestFingerprintSensitivity:
    def test_differs_across_workflows(self):
        assert workflow_fingerprint(random_workflow(5, seed=1)) != workflow_fingerprint(
            random_workflow(5, seed=2)
        )

    def test_differs_when_functionality_changes(self):
        a, b = boolean_attributes(["a", "b"])
        identity = Workflow(
            [Module("m", [a], [b], lambda v: {"b": v["a"]})], name="w"
        )
        negation = Workflow(
            [Module("m", [a], [b], lambda v: {"b": 1 - v["a"]})], name="w"
        )
        assert workflow_fingerprint(identity) != workflow_fingerprint(negation)

    def test_differs_when_cost_changes(self):
        workflow = figure1_workflow()
        reweighted = workflow.with_attribute_costs({"a1": 42.0})
        assert workflow_fingerprint(workflow) != workflow_fingerprint(reweighted)


class TestPayloadFingerprint:
    def test_key_order_does_not_matter(self):
        assert payload_fingerprint({"x": 1, "y": [2, 3]}) == payload_fingerprint(
            {"y": [2, 3], "x": 1}
        )

    def test_canonical_payload_sorts_modules(self):
        payload = canonical_workflow_payload(figure1_workflow())
        names = [module["name"] for module in payload["modules"]]
        assert names == sorted(names)


class TestModuleFingerprint:
    """The shared module tier's key: content only, costs/flags excluded."""

    def test_equal_for_independent_builds(self):
        one = figure1_workflow().module("m1")
        two = figure1_workflow().module("m1")
        assert one is not two
        assert module_fingerprint(one) == module_fingerprint(two)

    def test_differs_when_functionality_changes(self):
        a, b = boolean_attributes(["a", "b"])
        identity = Module("m", [a], [b], lambda v: {"b": v["a"]})
        negation = Module("m", [a], [b], lambda v: {"b": 1 - v["a"]})
        assert module_fingerprint(identity) != module_fingerprint(negation)

    def test_differs_when_name_changes(self):
        a, b = boolean_attributes(["a", "b"])
        module = Module("m", [a], [b], lambda v: {"b": v["a"]})
        assert module_fingerprint(module) != module_fingerprint(module.renamed("n"))

    def test_invariant_under_costs_and_privacy_flags(self):
        # Derivation artifacts never consult costs or the private flag, so
        # a what-if re-costing or a privatization must hit the same entry.
        module = figure1_workflow().module("m1")
        fingerprint = module_fingerprint(module)
        recosted = module.with_attribute_costs({module.attribute_names[0]: 42.0})
        assert module_fingerprint(recosted) == fingerprint
        public = Module(
            module.name,
            list(module.input_schema.attributes),
            list(module.output_schema.attributes),
            module._function,
            private=False,
            privatization_cost=99.0,
        )
        assert module_fingerprint(public) == fingerprint

    def test_payload_path_matches_live_path(self):
        # The executor fingerprints serialized module dicts directly; both
        # routes must produce the same digest or families fall apart.
        workflow = random_workflow(4, seed=13)
        payload = workflow_to_dict(workflow)
        for module, entry in zip(workflow.modules, payload["modules"]):
            assert module_payload_fingerprint(entry) == module_fingerprint(module)

    def test_workflow_name_does_not_leak_into_module_fingerprints(self):
        # Edit-chain variants rename the *workflow*; their untouched modules
        # must keep their fingerprints to share derivations.
        workflow = random_workflow(3, seed=21)
        renamed = Workflow(list(workflow.modules), name="elsewhere")
        for module in workflow.modules:
            assert module_fingerprint(module) == module_fingerprint(
                renamed.module(module.name)
            )
