"""Tests for the paper's example workflows."""

from __future__ import annotations

import pytest

from repro.core import standalone_privacy_level
from repro.workloads import (
    example5_problem,
    example5_workflow,
    example6_majority_module,
    example6_one_one_module,
    example7_chain,
    figure1_view_attributes,
    figure1_workflow,
    proposition2_chain,
)


class TestFigure1:
    def test_executions_match_figure_1b(self):
        workflow = figure1_workflow()
        relation = workflow.provenance_relation()
        expected_rows = [
            (0, 0, 0, 1, 1, 1, 0),
            (0, 1, 1, 1, 0, 0, 1),
            (1, 0, 1, 1, 0, 0, 1),
            (1, 1, 1, 0, 1, 1, 1),
        ]
        names = ("a1", "a2", "a3", "a4", "a5", "a6", "a7")
        for row in expected_rows:
            assert dict(zip(names, row)) in relation
        assert len(relation) == 4

    def test_view_attributes_constant(self):
        assert figure1_view_attributes() == {"a1", "a3", "a5"}

    def test_costs_can_be_overridden(self):
        workflow = figure1_workflow(costs={"a4": 9.0})
        assert workflow.schema["a4"].cost == 9.0


class TestExample5:
    def test_workflow_shape(self):
        workflow = example5_workflow(4)
        assert len(workflow) == 6
        assert workflow.data_sharing_degree() == 4  # a2 feeds every middle module

    def test_costs_follow_the_example(self):
        workflow = example5_workflow(3, epsilon=0.5)
        assert workflow.schema["a1"].cost == 1.0
        assert workflow.schema["a2"].cost == 1.5
        assert workflow.schema["b1"].cost == 1.0

    def test_problem_requirements(self):
        problem = example5_problem(3)
        assert set(problem.requirements) == {"m", "m_prime", "m_1", "m_2", "m_3"}
        assert problem.lmax == 3  # the collector lists one option per b_i

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            example5_workflow(0)


class TestProposition2Chain:
    def test_both_modules_one_one(self):
        workflow = proposition2_chain(2)
        assert workflow.module("m1").is_invertible()
        assert workflow.module("m2").is_invertible()

    def test_hiding_log_gamma_outputs_is_standalone_private(self):
        workflow = proposition2_chain(2)
        m1 = workflow.module("m1")
        # Hide one of m1's outputs: Γ = 2 standalone privacy.
        level = standalone_privacy_level(m1, set(m1.attribute_names) - {"y0"})
        assert level >= 2

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            proposition2_chain(0)


class TestExample7Chain:
    def test_module_roles(self):
        workflow = example7_chain(2)
        assert workflow.module("m_head").public
        assert workflow.module("m_head").is_constant()
        assert workflow.module("m_mid").private
        assert workflow.module("m_mid").is_invertible()
        assert workflow.module("m_tail").public
        assert workflow.module("m_tail").is_invertible()

    def test_privacy_flags_configurable(self):
        workflow = example7_chain(2, public_head=False, public_tail=False)
        assert workflow.is_all_private

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            example7_chain(0)


class TestExample6Modules:
    def test_one_one_module_shape(self):
        module = example6_one_one_module(3)
        assert len(module.input_names) == 3
        assert module.is_invertible()

    def test_majority_module_shape(self):
        module = example6_majority_module(3)
        assert len(module.input_names) == 6
        assert len(module.output_names) == 1
