"""Tests for the synthetic scientific-workflow generator."""

from __future__ import annotations


from repro.workloads import (
    ScientificWorkflowConfig,
    scientific_problem,
    scientific_suite,
    scientific_workflow,
)


class TestScientificWorkflow:
    def test_module_count_close_to_requested(self):
        workflow = scientific_workflow(ScientificWorkflowConfig(n_modules=30, seed=1))
        assert 25 <= len(workflow) <= 35

    def test_deterministic_per_seed(self):
        config = ScientificWorkflowConfig(n_modules=20, seed=4)
        assert (
            scientific_workflow(config).attribute_names
            == scientific_workflow(config).attribute_names
        )

    def test_respects_sharing_cap_loosely(self):
        config = ScientificWorkflowConfig(n_modules=25, seed=2, max_sharing=2)
        workflow = scientific_workflow(config)
        # The aggregators may slightly exceed the cap when the pool runs dry,
        # but the overall sharing stays small.
        assert workflow.data_sharing_degree() <= 6

    def test_public_fraction_zero_gives_all_private(self):
        config = ScientificWorkflowConfig(n_modules=15, seed=3, public_fraction=0.0)
        workflow = scientific_workflow(config)
        assert workflow.is_all_private

    def test_executes_end_to_end(self):
        workflow = scientific_workflow(ScientificWorkflowConfig(n_modules=12, seed=5))
        inputs = {name: 0 for name in workflow.initial_inputs}
        result = workflow.run(inputs)
        assert set(result) == set(workflow.attribute_names)


class TestScientificProblems:
    def test_problem_has_requirements_for_private_modules(self):
        problem = scientific_problem(
            ScientificWorkflowConfig(n_modules=15, seed=6, public_fraction=0.0)
        )
        assert set(problem.requirements) == {
            m.name for m in problem.workflow.private_modules
        }

    def test_problem_solvable_by_greedy(self):
        problem = scientific_problem(
            ScientificWorkflowConfig(n_modules=15, seed=7, public_fraction=0.0)
        )
        solution = problem.solve(method="greedy")
        problem.validate_solution(solution)

    def test_suite_sizes(self):
        problems = list(scientific_suite(sizes=(10, 20), seed=1))
        assert len(problems) == 2
        assert len(problems[0].workflow) < len(problems[1].workflow)
