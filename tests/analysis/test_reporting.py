"""Tests for the fixed-width reporting helpers."""

from __future__ import annotations

from repro.analysis import Report, format_records, format_table, format_value


class TestFormatValue:
    def test_floats_rounded(self):
        assert format_value(1.23456) == "1.235"
        assert format_value(1.23456, precision=1) == "1.2"

    def test_booleans(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_special_floats(self):
        assert format_value(float("nan")) == "nan"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("-inf")) == "-inf"

    def test_other_types(self):
        assert format_value("text") == "text"
        assert format_value(7) == "7"


class TestFormatTable:
    def test_alignment_and_caption(self):
        table = format_table(
            ["name", "value"], [["alpha", 1.0], ["b", 22.5]], caption="demo"
        )
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert lines[1].startswith("name")
        assert len(lines) == 5

    def test_column_widths_accommodate_long_cells(self):
        table = format_table(["h"], [["a-very-long-cell"]])
        header, separator, row = table.splitlines()
        assert len(separator) == len("a-very-long-cell")

    def test_format_records(self):
        records = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}]
        text = format_records(records)
        assert "a" in text and "b" in text
        assert "2.500" in text

    def test_format_records_empty(self):
        assert "(no records)" in format_records([], caption="cap")

    def test_format_records_column_selection(self):
        records = [{"a": 1, "b": 2}]
        text = format_records(records, columns=["b"])
        assert "b" in text and "a" not in text.splitlines()[0]


class TestReport:
    def test_render_contains_sections(self):
        report = Report("Demo")
        report.add_text("intro")
        report.add_table("t1", ["x"], [[1]])
        report.add_records("t2", [{"y": 2}])
        rendered = report.render()
        assert rendered.startswith("== Demo ==")
        assert "intro" in rendered and "t1" in rendered and "t2" in rendered
