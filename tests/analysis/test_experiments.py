"""Tests for the solver-comparison and sweep harness."""

from __future__ import annotations


from repro.analysis import compare_solvers, sweep, time_solver
from repro.workloads import example5_problem


class TestTimeSolver:
    def test_successful_run(self, small_set_problem):
        run = time_solver(small_set_problem, "greedy")
        assert run.succeeded
        assert run.cost > 0
        assert run.seconds >= 0
        assert run.as_record()["method"] == "greedy"

    def test_failed_run_is_captured(self, small_set_problem):
        run = time_solver(small_set_problem, "lp_rounding")  # wrong constraint kind
        assert not run.succeeded
        assert run.cost == float("inf")
        assert run.error


class TestCompareSolvers:
    def test_records_include_exact_and_ratios(self, small_cardinality_problem):
        records = compare_solvers(
            small_cardinality_problem,
            ["lp_rounding", "greedy"],
            seeds=(0, 1),
        )
        methods = [record["method"] for record in records]
        assert methods[0] == "exact_ip"
        assert methods.count("lp_rounding") == 2
        ratios = [record["ratio"] for record in records if "ratio" in record]
        assert all(ratio >= 1.0 - 1e-9 for ratio in ratios)

    def test_without_exact(self, small_set_problem):
        records = compare_solvers(
            small_set_problem, ["set_lp", "greedy"], include_exact=False
        )
        assert all("ratio" not in record for record in records)

    def test_solver_failures_reported_not_raised(self, small_set_problem):
        records = compare_solvers(
            small_set_problem, ["lp_rounding"], include_exact=False
        )
        assert records[0]["cost"] == float("inf")
        assert "error" in records[0]


class TestSweep:
    def test_sweep_tags_parameter(self):
        records = sweep(
            lambda n: example5_problem(int(n)),
            [2, 4],
            methods=["greedy"],
            parameter_name="n",
        )
        assert {record["n"] for record in records} == {2, 4}
        assert any(record["method"] == "greedy" for record in records)

    def test_sweep_ratio_grows_for_example5(self):
        records = sweep(
            lambda n: example5_problem(int(n)),
            [3, 8],
            methods=["union_standalone"],
            parameter_name="n",
        )
        ratios = {
            record["n"]: record["ratio"]
            for record in records
            if record["method"] == "union_of_standalone_optima"
        }
        assert ratios[8] > ratios[3]
