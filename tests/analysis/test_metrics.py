"""Tests for the experiment metrics."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    approximation_ratio,
    hidden_fraction,
    privacy_margin,
    solution_summary,
    summarize_ratios,
)
from repro.exceptions import SolverError
from repro.optim import solve_greedy


class TestRatios:
    def test_basic_ratio(self):
        assert approximation_ratio(6.0, 3.0) == pytest.approx(2.0)

    def test_zero_optimum_conventions(self):
        assert approximation_ratio(0.0, 0.0) == 1.0
        assert approximation_ratio(2.0, 0.0) == math.inf

    def test_negative_rejected(self):
        with pytest.raises(SolverError):
            approximation_ratio(-1.0, 1.0)

    def test_privacy_margin(self):
        assert privacy_margin(4, 2) == pytest.approx(2.0)
        with pytest.raises(SolverError):
            privacy_margin(4, 0)

    def test_summary_statistics(self):
        summary = summarize_ratios([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.median == pytest.approx(2.0)
        assert summary.maximum == pytest.approx(3.0)
        assert summary.minimum == pytest.approx(1.0)
        assert len(summary.as_row()) == 5

    def test_summary_requires_values(self):
        with pytest.raises(SolverError):
            summarize_ratios([])


class TestSolutionSummary:
    def test_summary_fields(self, small_set_problem):
        solution = solve_greedy(small_set_problem)
        record = solution_summary(small_set_problem, solution, optimum=solution.cost())
        assert record["method"] == "greedy"
        assert record["ratio"] == pytest.approx(1.0)
        assert 0.0 < record["hidden_fraction"] <= 1.0
        assert record["n_modules"] == len(small_set_problem.workflow)

    def test_hidden_fraction_bounds(self, small_set_problem):
        solution = solve_greedy(small_set_problem)
        assert 0.0 <= hidden_fraction(solution) <= 1.0
