"""Unit tests for the compiled module/workflow kernels and the backend switch."""

from __future__ import annotations

import pytest

from repro.core import (
    Attribute,
    Module,
    Relation,
    boolean_attributes,
    standalone_privacy_level,
)
from repro.core.attributes import integer_domain
from repro.core.standalone import minimal_safe_hidden_subsets
from repro.exceptions import PrivacyError
from repro.kernel import (
    CompiledModule,
    compile_cache_info,
    compile_module,
    compile_workflow,
    get_default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.workloads import figure1_m1_module, figure1_workflow


class TestBackendSwitch:
    def test_kernel_is_the_default(self):
        assert get_default_backend() == "kernel"
        assert resolve_backend(None) == "kernel"

    def test_resolve_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            resolve_backend("turbo")

    def test_set_default_backend_round_trips(self):
        previous = set_default_backend("reference")
        try:
            assert previous == "kernel"
            assert resolve_backend(None) == "reference"
        finally:
            set_default_backend(previous)


class TestCompiledModule:
    def test_matches_reference_on_figure1(self):
        m1 = figure1_m1_module()
        compiled = compile_module(m1)
        for visible in (
            {"a1", "a3", "a5"},
            {"a3", "a4", "a5"},
            set(),
            set(m1.attribute_names),
        ):
            assert compiled.privacy_level(visible) == standalone_privacy_level(
                m1, visible, backend="reference"
            )

    def test_gamma_validation(self):
        compiled = compile_module(figure1_m1_module())
        with pytest.raises(PrivacyError):
            compiled.is_private({"a1"}, 0)
        with pytest.raises(PrivacyError):
            compiled.enumerate_safe_hidden_subsets(0)

    def test_minimal_subsets_form_an_antichain(self):
        compiled = compile_module(figure1_m1_module())
        minimal = compiled.minimal_safe_hidden_subsets(2)
        assert minimal == minimal_safe_hidden_subsets(
            figure1_m1_module(), 2, backend="reference"
        )
        for first in minimal:
            for second in minimal:
                assert first == second or not first <= second

    def test_restricted_relation_is_respected(self):
        m1 = figure1_m1_module()
        restricted = Relation(
            m1.schema,
            [row for row in m1.relation() if row["a1"] == 0],
            check_domains=False,
        )
        visible = {"a1", "a3"}
        assert compile_module(m1, restricted).privacy_level(
            visible
        ) == standalone_privacy_level(
            m1, visible, relation=restricted, backend="reference"
        )

    def test_empty_relation_reports_range_size(self):
        m1 = figure1_m1_module()
        empty = Relation(m1.schema, ())
        assert compile_module(m1, empty).privacy_level({"a1"}) == m1.range_size()

    def test_wide_schema_falls_back_to_python_ints(self):
        wide_in = [Attribute(f"x{i}", integer_domain(2**16)) for i in range(3)]
        wide_out = [Attribute("y", integer_domain(2**16))]

        def function(values):
            return {"y": (values["x0"] + values["x1"] + values["x2"]) % 7}

        module = Module("wide", wide_in, wide_out, function)
        rows = [
            {"x0": i, "x1": 2 * i, "x2": 3 * i, "y": (6 * i) % 7}
            for i in range(6)
        ]
        restricted = Relation(module.schema, rows, check_domains=False)
        compiled = CompiledModule(module, restricted)
        assert compiled.layout.total_bits == 64
        assert compiled.packed.array is None
        assert compiled.privacy_level({"x0", "y"}) == standalone_privacy_level(
            module, {"x0", "y"}, relation=restricted, backend="reference"
        )


class TestNumpyPath:
    def test_large_boolean_module_uses_numpy_and_agrees(self):
        names_in = [f"i{k}" for k in range(8)]

        def parity(values):
            return {"o0": sum(values[n] for n in names_in) & 1, "o1": values["i0"]}

        module = Module(
            "big",
            boolean_attributes(names_in),
            boolean_attributes(["o0", "o1"]),
            parity,
        )
        compiled = CompiledModule(module)
        if compiled.packed.array is not None:
            assert compiled.packed.use_numpy  # 256 rows, 10 bits
        for visible in ({"i0", "o0"}, {"i0", "i1", "o1"}, set(names_in)):
            assert compiled.privacy_level(visible) == standalone_privacy_level(
                module, visible, backend="reference"
            )


class TestBatchedSweep:
    """PR 8: privacy_levels_batch internals — tiling, memo, counters."""

    @staticmethod
    def _big_module(n_inputs: int = 8):
        names_in = [f"i{k}" for k in range(n_inputs)]

        def majority(values):
            total = sum(values[n] for n in names_in)
            return {"o0": int(total * 2 > n_inputs)}

        return Module(
            "batchy",
            boolean_attributes(names_in),
            boolean_attributes(["o0"]),
            majority,
        )

    def test_batch_toggle_round_trips(self):
        from repro.kernel import batching_enabled, sweep_batching

        assert batching_enabled()
        with sweep_batching(False):
            assert not batching_enabled()
            with sweep_batching(True):
                assert batching_enabled()
            assert not batching_enabled()
        assert batching_enabled()

    def test_batch_dedupes_and_reuses_memo(self):
        module = self._big_module()
        compiled = CompiledModule(module)
        if not compiled.packed.use_numpy:
            pytest.skip("numpy unavailable; the batch path is scalar-only")
        n_masks = 1 << 9
        warm = [3, 5, 3, 9, 12]
        warm_levels = compiled.privacy_levels_batch(warm)
        assert warm_levels[0] == warm_levels[2]
        # Duplicates collapse: only four distinct masks were computed.
        assert compiled.sweep_stats["batched_masks"] == 4
        passes_after_warm = compiled.sweep_stats["batched_passes"]
        levels = compiled.privacy_levels_batch(list(range(n_masks)))
        # The warm masks were served from the memo, not recomputed.
        assert compiled.sweep_stats["batched_masks"] == n_masks
        assert levels[3] == warm_levels[0]
        assert levels[5] == warm_levels[1]
        assert compiled.sweep_stats["batched_passes"] > passes_after_warm
        assert compiled.sweep_stats["scalar_masks"] == 0

    def test_memory_budget_controls_tiling(self, monkeypatch):
        from repro.kernel import module_kernel

        module = self._big_module()
        compiled = CompiledModule(module)
        if not compiled.packed.use_numpy:
            pytest.skip("numpy unavailable; the batch path is scalar-only")
        # A budget of one row's worth of masks forces one pass per mask.
        monkeypatch.setattr(module_kernel, "BATCH_MEMORY_BUDGET", 1)
        masks = list(range(64))
        tiled_levels = compiled.privacy_levels_batch(masks)
        assert compiled.sweep_stats["batched_passes"] == len(masks)
        monkeypatch.undo()
        roomy = CompiledModule(module)
        assert roomy.privacy_levels_batch(masks) == tiled_levels
        assert roomy.sweep_stats["batched_passes"] == 1

    def test_batch_matches_scalar_and_reference(self):
        from repro.kernel import sweep_batching

        module = self._big_module()
        masks = list(range(0, 1 << 9, 7))
        batched = CompiledModule(module)
        batched_levels = batched.privacy_levels_batch(masks)
        with sweep_batching(False):
            scalar = CompiledModule(module)
            scalar_levels = scalar.privacy_levels_batch(masks)
        assert batched_levels == scalar_levels
        assert scalar.sweep_stats["scalar_masks"] == len(masks)
        assert scalar.sweep_stats["batched_passes"] == 0
        layout = batched.layout
        names = list(module.attribute_names)
        for mask in (masks[0], masks[1], masks[-1]):
            visible = {n for n in names if mask & layout.field_masks[n]}
            assert batched_levels[masks.index(mask)] == (
                standalone_privacy_level(module, visible, backend="reference")
            )

    def test_empty_batch_is_a_no_op(self):
        compiled = CompiledModule(figure1_m1_module())
        assert compiled.privacy_levels_batch([]) == []
        assert compiled.sweep_stats == {
            "scalar_masks": 0,
            "batched_masks": 0,
            "batched_passes": 0,
        }

    def test_small_relation_stays_scalar(self):
        compiled = CompiledModule(figure1_m1_module())
        n_bits = compiled.layout.total_bits
        levels = compiled.privacy_levels_batch(list(range(1 << n_bits)))
        assert compiled.sweep_stats["batched_passes"] == 0
        assert compiled.sweep_stats["scalar_masks"] == 1 << n_bits
        assert levels == [
            compiled.privacy_level_bits(mask) for mask in range(1 << n_bits)
        ]


class TestCompileMemo:
    def test_compile_module_memoizes_by_identity(self):
        module = figure1_m1_module()
        assert compile_module(module) is compile_module(module)
        other = figure1_m1_module()
        assert compile_module(module) is not compile_module(other)

    def test_compile_workflow_memoizes_by_identity(self):
        workflow = figure1_workflow()
        assert compile_workflow(workflow) is compile_workflow(workflow)
        info = compile_cache_info()
        assert info["hits"] >= 1

    def test_restriction_gets_its_own_entry(self):
        module = figure1_m1_module()
        restricted = Relation(
            module.schema,
            [row for row in module.relation() if row["a1"] == 1],
            check_domains=False,
        )
        assert compile_module(module) is not compile_module(module, restricted)


class TestCompiledWorkflow:
    def test_out_sets_match_reference(self, tiny_chain):
        from repro.core import workflow_out_sets

        visible = {"a0", "b0", "c0"}
        for name in tiny_chain.module_names:
            assert workflow_out_sets(
                tiny_chain, name, visible, backend="kernel"
            ) == workflow_out_sets(tiny_chain, name, visible, backend="reference")

    def test_work_limit_guard(self, tiny_chain):
        with pytest.raises(PrivacyError):
            compile_workflow(tiny_chain).module_out_sets(
                "first", {"a0"}, work_limit=2
            )
