"""Unit tests for the compiled module/workflow kernels and the backend switch."""

from __future__ import annotations

import pytest

from repro.core import (
    Attribute,
    Module,
    Relation,
    boolean_attributes,
    standalone_privacy_level,
)
from repro.core.attributes import integer_domain
from repro.core.standalone import minimal_safe_hidden_subsets
from repro.exceptions import PrivacyError
from repro.kernel import (
    CompiledModule,
    compile_cache_info,
    compile_module,
    compile_workflow,
    get_default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.workloads import figure1_m1_module, figure1_workflow


class TestBackendSwitch:
    def test_kernel_is_the_default(self):
        assert get_default_backend() == "kernel"
        assert resolve_backend(None) == "kernel"

    def test_resolve_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            resolve_backend("turbo")

    def test_set_default_backend_round_trips(self):
        previous = set_default_backend("reference")
        try:
            assert previous == "kernel"
            assert resolve_backend(None) == "reference"
        finally:
            set_default_backend(previous)


class TestCompiledModule:
    def test_matches_reference_on_figure1(self):
        m1 = figure1_m1_module()
        compiled = compile_module(m1)
        for visible in ({"a1", "a3", "a5"}, {"a3", "a4", "a5"}, set(), set(m1.attribute_names)):
            assert compiled.privacy_level(visible) == standalone_privacy_level(
                m1, visible, backend="reference"
            )

    def test_gamma_validation(self):
        compiled = compile_module(figure1_m1_module())
        with pytest.raises(PrivacyError):
            compiled.is_private({"a1"}, 0)
        with pytest.raises(PrivacyError):
            compiled.enumerate_safe_hidden_subsets(0)

    def test_minimal_subsets_form_an_antichain(self):
        compiled = compile_module(figure1_m1_module())
        minimal = compiled.minimal_safe_hidden_subsets(2)
        assert minimal == minimal_safe_hidden_subsets(
            figure1_m1_module(), 2, backend="reference"
        )
        for first in minimal:
            for second in minimal:
                assert first == second or not first <= second

    def test_restricted_relation_is_respected(self):
        m1 = figure1_m1_module()
        restricted = Relation(
            m1.schema,
            [row for row in m1.relation() if row["a1"] == 0],
            check_domains=False,
        )
        visible = {"a1", "a3"}
        assert compile_module(m1, restricted).privacy_level(
            visible
        ) == standalone_privacy_level(
            m1, visible, relation=restricted, backend="reference"
        )

    def test_empty_relation_reports_range_size(self):
        m1 = figure1_m1_module()
        empty = Relation(m1.schema, ())
        assert compile_module(m1, empty).privacy_level({"a1"}) == m1.range_size()

    def test_wide_schema_falls_back_to_python_ints(self):
        wide_in = [Attribute(f"x{i}", integer_domain(2**16)) for i in range(3)]
        wide_out = [Attribute("y", integer_domain(2**16))]

        def function(values):
            return {"y": (values["x0"] + values["x1"] + values["x2"]) % 7}

        module = Module("wide", wide_in, wide_out, function)
        rows = [
            {"x0": i, "x1": 2 * i, "x2": 3 * i, "y": (6 * i) % 7}
            for i in range(6)
        ]
        restricted = Relation(module.schema, rows, check_domains=False)
        compiled = CompiledModule(module, restricted)
        assert compiled.layout.total_bits == 64
        assert compiled.packed.array is None
        assert compiled.privacy_level({"x0", "y"}) == standalone_privacy_level(
            module, {"x0", "y"}, relation=restricted, backend="reference"
        )


class TestNumpyPath:
    def test_large_boolean_module_uses_numpy_and_agrees(self):
        names_in = [f"i{k}" for k in range(8)]

        def parity(values):
            return {"o0": sum(values[n] for n in names_in) & 1, "o1": values["i0"]}

        module = Module(
            "big", boolean_attributes(names_in), boolean_attributes(["o0", "o1"]), parity
        )
        compiled = CompiledModule(module)
        if compiled.packed.array is not None:
            assert compiled.packed.use_numpy  # 256 rows, 10 bits
        for visible in ({"i0", "o0"}, {"i0", "i1", "o1"}, set(names_in)):
            assert compiled.privacy_level(visible) == standalone_privacy_level(
                module, visible, backend="reference"
            )


class TestCompileMemo:
    def test_compile_module_memoizes_by_identity(self):
        module = figure1_m1_module()
        assert compile_module(module) is compile_module(module)
        other = figure1_m1_module()
        assert compile_module(module) is not compile_module(other)

    def test_compile_workflow_memoizes_by_identity(self):
        workflow = figure1_workflow()
        assert compile_workflow(workflow) is compile_workflow(workflow)
        info = compile_cache_info()
        assert info["hits"] >= 1

    def test_restriction_gets_its_own_entry(self):
        module = figure1_m1_module()
        restricted = Relation(
            module.schema,
            [row for row in module.relation() if row["a1"] == 1],
            check_domains=False,
        )
        assert compile_module(module) is not compile_module(module, restricted)


class TestCompiledWorkflow:
    def test_out_sets_match_reference(self, tiny_chain):
        from repro.core import workflow_out_sets

        visible = {"a0", "b0", "c0"}
        for name in tiny_chain.module_names:
            assert workflow_out_sets(
                tiny_chain, name, visible, backend="kernel"
            ) == workflow_out_sets(tiny_chain, name, visible, backend="reference")

    def test_work_limit_guard(self, tiny_chain):
        with pytest.raises(PrivacyError):
            compile_workflow(tiny_chain).module_out_sets(
                "first", {"a0"}, work_limit=2
            )
