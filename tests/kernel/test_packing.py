"""Unit tests for the bit-packing layer of the privacy kernel."""

from __future__ import annotations

import pytest

from repro.core import Attribute, Relation, Schema
from repro.core.attributes import BOOLEAN, integer_domain
from repro.kernel import BitLayout, PackedRelation
from repro.kernel.packing import NUMPY_MAX_BITS


@pytest.fixture
def mixed_schema() -> Schema:
    return Schema(
        [
            Attribute("a", BOOLEAN),
            Attribute("b", integer_domain(3)),
            Attribute("c", integer_domain(5, start=10)),
        ]
    )


class TestBitLayout:
    def test_field_widths_cover_domains(self, mixed_schema):
        layout = BitLayout(mixed_schema)
        assert layout.widths == {"a": 1, "b": 2, "c": 3}
        assert layout.total_bits == 6
        # Fields are disjoint and laid out in schema order.
        assert layout.field_masks["a"] & layout.field_masks["b"] == 0
        assert layout.field_masks["b"] & layout.field_masks["c"] == 0

    def test_pack_unpack_round_trip(self, mixed_schema):
        layout = BitLayout(mixed_schema)
        row = {"a": 1, "b": 2, "c": 13}
        code = layout.pack_assignment(row)
        assert layout.unpack(code, ("a", "b", "c")) == (1, 2, 13)
        assert layout.unpack(code, ("c", "a")) == (13, 1)

    def test_mask_for_ignores_unknown_names(self, mixed_schema):
        layout = BitLayout(mixed_schema)
        assert layout.mask_for(["a", "nope"]) == layout.field_masks["a"]
        assert layout.mask_for([]) == 0

    def test_assignment_codes_match_schema_enumeration(self, mixed_schema):
        layout = BitLayout(mixed_schema)
        names = ("b", "c")
        codes = layout.assignment_codes(names)
        expected = [
            layout.pack_assignment(assignment, names)
            for assignment in mixed_schema.iter_assignments(names)
        ]
        assert codes == expected
        assert len(codes) == 3 * 5

    def test_pack_relation_matches_column_order_by_name(self, mixed_schema):
        layout = BitLayout(mixed_schema)
        # A relation over the same attributes in a different column order.
        shuffled = Schema(
            [mixed_schema["c"], mixed_schema["a"], mixed_schema["b"]]
        )
        relation = Relation(
            shuffled, [{"a": 0, "b": 1, "c": 12}, {"a": 1, "b": 0, "c": 10}]
        )
        codes = layout.pack_relation(relation)
        assert [layout.unpack(code, ("a", "b", "c")) for code in codes] == [
            (0, 1, 12),
            (1, 0, 10),
        ]


class TestPackedRelation:
    def test_numpy_mirror_round_trips(self, mixed_schema):
        relation = Relation(
            mixed_schema,
            [
                {"a": a, "b": b, "c": 10 + c}
                for a in (0, 1)
                for b in (0, 1, 2)
                for c in range(5)
            ],
        )
        packed = PackedRelation.from_relation(relation)
        array = packed.array
        if array is not None:  # numpy present
            assert [int(x) for x in array] == packed.codes

    def test_wide_layout_disables_numpy_mirror(self):
        wide = Schema(
            [Attribute(f"w{i}", integer_domain(2**16)) for i in range(5)]
        )
        relation = Relation(wide, [{f"w{i}": i for i in range(5)}])
        packed = PackedRelation.from_relation(relation)
        assert packed.layout.total_bits == 80 > NUMPY_MAX_BITS
        assert packed.array is None
        assert not packed.use_numpy
        # Pure-int packing still round-trips above 64 bits.
        assert packed.layout.unpack(
            packed.codes[0], tuple(f"w{i}" for i in range(5))
        ) == (0, 1, 2, 3, 4)
