"""Tests for the Planner facade and the shared derivation cache."""

from __future__ import annotations

import random

import pytest

from repro.core import SecureViewProblem
from repro.engine import DerivationCache, Planner
from repro.exceptions import SolverError
from repro.optim import SOLVERS
from repro.workloads import figure1_workflow, random_problem


@pytest.fixture
def figure1_planner() -> Planner:
    return Planner(figure1_workflow(), 2, kind="set")


class TestSolve:
    def test_auto_solves_figure1_with_valid_solver(self, figure1_planner):
        result = figure1_planner.solve()
        assert result.requested == "auto"
        assert result.solver in SOLVERS
        assert result.cost > 0
        figure1_planner.problem().validate_solution(result.solution)

    def test_every_registered_solver_reachable_by_name(self, figure1_planner):
        problem = figure1_planner.problem()
        for spec in figure1_planner.solvers():
            result = figure1_planner.solve(solver=spec.name, seed=0)
            assert result.solver == spec.name
            problem.validate_solution(result.solution)
            assert result.cost >= 0
            assert result.seconds >= 0

    def test_result_record_is_flat(self, figure1_planner):
        record = figure1_planner.solve(solver="exact").as_record()
        assert record["method"] == "exact"
        assert record["guarantee"] == "optimal"
        assert isinstance(record["cost"], float)

    def test_unknown_solver_raises(self, figure1_planner):
        with pytest.raises(SolverError, match="unknown solver"):
            figure1_planner.solve(solver="does-not-exist")

    def test_unsupported_option_raises(self, figure1_planner):
        with pytest.raises(SolverError, match="does not accept option"):
            figure1_planner.solve(solver="greedy", scale=2.0)

    def test_local_search_never_worse(self, figure1_planner):
        base = figure1_planner.solve(solver="greedy")
        improved = figure1_planner.solve(solver="greedy", local_search=True)
        assert improved.cost <= base.cost + 1e-9


class TestRandomness:
    def test_seed_reproducible_end_to_end(self):
        problem = random_problem(n_modules=8, kind="cardinality", seed=4)
        planner = Planner.from_problem(problem)
        first = planner.solve(solver="lp_rounding", seed=13)
        second = planner.solve(solver="lp_rounding", seed=13)
        assert first.hidden_attributes == second.hidden_attributes
        assert first.cost == second.cost

    def test_rng_takes_precedence_over_seed(self):
        problem = random_problem(n_modules=8, kind="cardinality", seed=4)
        planner = Planner.from_problem(problem)
        via_rng = planner.solve(solver="lp_rounding", rng=random.Random(99), seed=13)
        via_seed = planner.solve(solver="lp_rounding", seed=99)
        assert via_rng.hidden_attributes == via_seed.hidden_attributes

    def test_seed_silently_ignored_by_deterministic_solver(self, figure1_planner):
        result = figure1_planner.solve(solver="exact", seed=5)
        assert result.solver == "exact"


class TestDerivationSharing:
    def test_two_solver_sweep_derives_once(self):
        planner = Planner(figure1_workflow(), 2, kind="set")
        planner.solve(solver="set_lp")
        planner.solve(solver="greedy")
        stats = planner.cache.stats()
        assert stats.derivation_misses == 1

    def test_shared_cache_across_planners_hits(self):
        workflow = figure1_workflow()
        cache = DerivationCache()
        Planner(workflow, 2, kind="set", cache=cache).solve(solver="greedy")
        Planner(workflow, 2, kind="set", cache=cache).solve(solver="set_lp")
        stats = cache.stats()
        assert stats.derivation_misses == 1
        assert stats.derivation_hits >= 1

    def test_from_problem_never_rederives(self):
        problem = SecureViewProblem.from_standalone_analysis(
            figure1_workflow(), 2, kind="set"
        )
        planner = Planner.from_problem(problem)
        planner.solve(solver="greedy")
        planner.solve(solver="set_lp")
        assert planner.cache.stats().derivation_misses == 0

    def test_distinct_gamma_is_a_distinct_entry(self):
        workflow = figure1_workflow()
        cache = DerivationCache()
        Planner(workflow, 1, kind="set", cache=cache).solve(solver="greedy")
        Planner(workflow, 2, kind="set", cache=cache).solve(solver="greedy")
        assert cache.stats().derivation_misses == 2


class TestCostOverrides:
    def test_costs_steer_the_optimum_without_rederiving(self, figure1_planner):
        base = figure1_planner.solve(solver="exact")
        derivations = figure1_planner.cache.stats().derivation_misses
        expensive = next(iter(base.hidden_attributes))
        steered = figure1_planner.solve(
            solver="exact", costs={expensive: 1000.0}
        )
        assert expensive not in steered.hidden_attributes
        assert figure1_planner.cache.stats().derivation_misses == derivations

    def test_unknown_cost_attribute_raises(self, figure1_planner):
        with pytest.raises(Exception, match="unknown attributes"):
            figure1_planner.solve(solver="exact", costs={"zz": 1.0})


class TestVerification:
    def test_exact_solution_certified(self, figure1_planner):
        result = figure1_planner.solve(solver="exact", verify=True)
        assert result.certificate is not None
        assert result.certificate.ok
        assert set(result.certificate.module_levels) == {"m1", "m2", "m3"}
        assert all(
            level >= 2 for level in result.certificate.module_levels.values()
        )

    def test_bad_view_fails_certification(self, figure1_planner):
        problem = figure1_planner.problem()
        # Hiding nothing cannot be Γ=2 private for any private module.
        bare = problem.make_solution(frozenset())
        certificate = figure1_planner.verify(bare)
        assert not certificate.ok
        assert certificate.weakest_module in {"m1", "m2", "m3"}

    def test_repeated_verification_hits_the_cache(self, figure1_planner):
        result = figure1_planner.solve(solver="exact", verify=True)
        before = figure1_planner.cache.stats().out_set_misses
        figure1_planner.verify(result.solution)
        stats = figure1_planner.cache.stats()
        assert stats.out_set_misses == before
        assert stats.out_set_hits >= 3


class TestSolverListing:
    """Planner.solvers() must be deterministically ordered (regression)."""

    def test_listing_is_deterministic_across_calls(self, figure1_planner):
        names = [spec.name for spec in figure1_planner.solvers()]
        for _ in range(3):
            assert [spec.name for spec in figure1_planner.solvers()] == names

    def test_listing_ordered_by_cost_rank_then_name(self, figure1_planner):
        specs = figure1_planner.solvers(applicable_only=False)
        keys = [(spec.cost_rank, spec.name) for spec in specs]
        assert keys == sorted(keys)

    def test_applicable_listing_preserves_rank_order(self, figure1_planner):
        specs = figure1_planner.solvers()
        keys = [(spec.cost_rank, spec.name) for spec in specs]
        assert keys == sorted(keys)
        assert specs  # figure 1 always has applicable solvers


class TestPinBounds:
    """Pinned workflows/modules are bounded so long-lived caches cannot leak."""

    def test_workflow_pins_evict_oldest_with_their_entries(self):
        cache = DerivationCache(max_pins=3)
        workflows = [figure1_workflow() for _ in range(6)]
        for workflow in workflows:
            cache.requirements(workflow, 2, "set")
        assert len(cache._workflows) <= 3
        assert len(cache._fingerprints) <= 3
        # Evicted pins took their id-keyed requirement entries with them.
        live = set(cache._workflows)
        assert all(key[0] in live for key in cache._requirements)
        # The survivors still answer from memory (hit, no re-derivation).
        before = cache.stats().derivation_misses
        cache.requirements(workflows[-1], 2, "set")
        assert cache.stats().derivation_misses == before

    def test_seeded_workflows_are_never_evicted(self):
        cache = DerivationCache(max_pins=2)
        problem = SecureViewProblem.from_standalone_analysis(
            figure1_workflow(), 2, kind="set"
        )
        seeded = Planner.from_problem(problem, cache=cache)
        for _ in range(5):
            cache.requirements(figure1_workflow(), 2, "set")
        # The seeded workflow outlives the churn and still solves from its
        # caller-provided (non-re-derivable) requirement lists.
        assert id(problem.workflow) in cache._workflows
        assert seeded.solve(solver="exact").cost == 3.0

    def test_module_pins_are_bounded(self):
        cache = DerivationCache(max_pins=2)
        for _ in range(5):
            workflow = figure1_workflow()
            for module in workflow.private_modules:
                cache.module_requirement(module, 2, "set")
        assert len(cache._modules) <= 2 + len(figure1_workflow().private_modules)
        assert len(cache._module_fingerprints) == len(cache._modules)
