"""Tests for the persistent derivation store and the two-tier cache."""

from __future__ import annotations

import json

import pytest

from repro.engine import DerivationCache, DerivationStore, Planner
from repro.engine.store import OutSetKey, ResultKey
from repro.workloads import figure1_workflow, random_workflow, workflow_fingerprint


@pytest.fixture
def store(tmp_path) -> DerivationStore:
    return DerivationStore(tmp_path / "store")


class TestArtifactRoundTrips:
    def test_requirements_round_trip(self, store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        cache = DerivationCache()
        derived = cache.requirements(workflow, 2, "set", backend="kernel")
        store.save_requirements(fingerprint, 2, "set", "kernel", derived)
        loaded = store.load_requirements(fingerprint, 2, "set", "kernel")
        assert set(loaded) == set(derived)
        for name in derived:
            assert list(loaded[name]) == list(derived[name])

    def test_relation_round_trip(self, store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        relation = workflow.provenance_relation()
        store.save_relation(fingerprint, relation, workflow=workflow)
        loaded = store.load_relation(fingerprint, workflow)
        assert loaded == relation

    def test_pack_round_trip_produces_identical_out_sets(self, store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        cache = DerivationCache()
        compiled = cache.compiled_workflow(workflow)
        store.save_pack(fingerprint, compiled)
        loaded = store.load_pack(
            fingerprint, workflow, workflow.provenance_relation()
        )
        visible = frozenset({"a1", "a3", "a5"})
        for module in workflow.module_names:
            assert loaded.module_out_sets(module, visible) == compiled.module_out_sets(
                module, visible
            )

    def test_out_sets_round_trip(self, store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        cache = DerivationCache()
        visible = frozenset({"a1", "a3", "a5"})
        out_sets = cache.module_out_sets(
            workflow, "m1", visible, frozenset(), stop_at=None, backend="kernel"
        )
        key = OutSetKey("m1", visible, frozenset(), None, "kernel")
        store.save_out_sets(fingerprint, workflow, key, "m1", out_sets)
        assert store.load_out_sets(fingerprint, workflow, key) == out_sets

    def test_result_round_trip(self, store):
        key = ResultKey("kernel", 2, "set", "exact", None, False)
        record = {"cost": 3.0, "solver": "exact", "hidden_attributes": ["a2"]}
        store.save_result("ab" * 32, key, record)
        assert store.load_result("ab" * 32, key) == record

    def test_missing_entries_are_misses(self, store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        assert store.load_requirements(fingerprint, 2, "set", "kernel") is None
        assert store.load_relation(fingerprint, workflow) is None
        assert store.load_result(fingerprint, ResultKey("kernel", 2, "set", "a", 0)) is None
        stats = store.stats()
        assert stats["hits"] == 0 and stats["misses"] == 3

    def test_corrupt_entry_degrades_to_miss(self, store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        relation = workflow.provenance_relation()
        store.save_relation(fingerprint, relation)
        path = store._dir(fingerprint) / "relation.json"
        path.write_text("{not json")
        assert store.load_relation(fingerprint, workflow) is None

    def test_corrupt_pack_degrades_to_miss(self, store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        relation = workflow.provenance_relation()
        for payload in ('{"layout": "x", "codes": []}', '{"pack": {"layout": "x"}}'):
            path = store._dir(fingerprint) / "pack.json"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(payload)
            assert store.load_pack(fingerprint, workflow, relation) is None

    def test_negative_domain_index_degrades_to_miss(self, store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        store.save_relation(fingerprint, workflow.provenance_relation())
        path = store._dir(fingerprint) / "relation.json"
        payload = json.loads(path.read_text())
        payload["rows"][0][0] = -1  # would silently wrap via domain[-1]
        path.write_text(json.dumps(payload))
        assert store.load_relation(fingerprint, workflow) is None

    def test_requirements_round_trip_preserves_order(self, store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        derived = DerivationCache().requirements(workflow, 2, "set")
        store.save_requirements(fingerprint, 2, "set", "kernel", derived)
        loaded = store.load_requirements(fingerprint, 2, "set", "kernel")
        # Same mapping order as fresh derivation: constraint ordering (and
        # thus LP/IP tie-breaking among equal optima) must not change.
        assert list(loaded) == list(derived)

    def test_structurally_wrong_entry_degrades_to_miss(self, store):
        workflow = figure1_workflow()
        other = random_workflow(4, seed=5)
        fingerprint = workflow_fingerprint(workflow)
        store.save_relation(fingerprint, other.provenance_relation())
        # Decoding against the wrong schema must fail safe, not misdecode.
        assert store.load_relation(fingerprint, workflow) is None


class TestTwoTierCache:
    def test_warm_store_skips_derivation_in_fresh_cache(self, store):
        workflow = figure1_workflow()
        cold = DerivationCache(store=store)
        cold.requirements(workflow, 2, "set")
        assert cold.derivation_misses == 1 and cold.store_misses >= 1

        warm = DerivationCache(store=store)
        rebuilt = figure1_workflow()  # a distinct object, same content
        lists = warm.requirements(rebuilt, 2, "set")
        assert warm.derivation_misses == 0
        assert warm.store_hits == 1
        assert set(lists) == {m.name for m in workflow.private_modules}

    def test_warm_store_serves_relation_pack_and_out_sets(self, store):
        workflow = figure1_workflow()
        cold = DerivationCache(store=store)
        visible = frozenset({"a1", "a3", "a5"})
        cold.relation(workflow)
        cold.compiled_workflow(workflow)
        expected = cold.module_out_sets(
            workflow, "m1", visible, frozenset(), stop_at=None, backend="kernel"
        )

        warm = DerivationCache(store=store)
        rebuilt = figure1_workflow()
        assert warm.relation(rebuilt) == cold.relation(workflow)
        warm.compiled_workflow(rebuilt)
        got = warm.module_out_sets(
            rebuilt, "m1", visible, frozenset(), stop_at=None, backend="kernel"
        )
        assert got == expected
        assert warm.relation_misses == 0
        assert warm.compile_misses == 0  # served from the store, not compiled
        assert warm.compile_hits == 1
        assert warm.out_set_misses == 0
        assert warm.store_hits >= 3

    def test_planner_store_path_round_trip(self, tmp_path):
        directory = str(tmp_path / "store")
        first = Planner(figure1_workflow(), 2, kind="set", store=directory)
        result = first.solve(solver="exact", verify=True)

        second = Planner(figure1_workflow(), 2, kind="set", store=directory)
        again = second.solve(solver="exact", verify=True)
        assert again.cost == result.cost
        assert again.certificate.ok == result.certificate.ok
        assert again.cache_stats.derivation_misses == 0
        assert again.cache_stats.out_set_misses == 0
        assert again.cache_stats.store_hits > 0

    def test_memory_front_is_bounded(self):
        cache = DerivationCache(max_entries=2)
        for seed in range(4):
            cache.relation(random_workflow(3, seed=seed))
        assert len(cache._relations) <= 2
        # Pins survive eviction so id() reuse can never alias an entry.
        assert len(cache._workflows) == 4

    def test_seeded_requirements_are_never_evicted(self):
        # Caller-provided lists may not be re-derivable (generators attach
        # random requirements): the FIFO bound must not touch them.
        from repro.workloads import random_problem

        cache = DerivationCache(max_entries=2)
        problem = random_problem(n_modules=4, kind="set", seed=21)
        cache.seed_requirements(
            problem.workflow, problem.gamma, "set", problem.requirements
        )
        for seed in range(4):  # churn the bounded derived-requirements table
            cache.requirements(random_workflow(3, seed=seed), 2, "set")
        served = cache.requirements(problem.workflow, problem.gamma, "set")
        assert served is problem.requirements


class TestClearRegression:
    """DerivationCache.clear() drops everything, including pinned packs."""

    def test_clear_drops_pinned_compiled_and_resets_counters(self):
        cache = DerivationCache()
        workflow = figure1_workflow()
        cache.compiled_workflow(workflow)
        cache.compiled_workflow(workflow)
        cache.requirements(workflow, 2, "set")
        assert cache._compiled and cache.compile_hits == 1

        cache.clear()
        assert not cache._compiled
        assert not cache._workflows and not cache._fingerprints
        assert not cache._requirements and not cache._relations
        assert not cache._out_sets
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0
        assert stats.compile_hits == stats.compile_misses == 0
        assert stats.store_hits == stats.store_misses == 0

    def test_clear_keeps_disk_artifacts(self, tmp_path):
        store = DerivationStore(tmp_path / "store")
        cache = DerivationCache(store=store)
        workflow = figure1_workflow()
        cache.requirements(workflow, 2, "set")
        cache.clear()
        assert cache.store is store
        warm = cache.requirements(figure1_workflow(), 2, "set")
        assert cache.derivation_misses == 0 and cache.store_hits == 1
        assert warm


class TestCacheStatsSurface:
    def test_stats_dict_includes_store_counters(self):
        cache = DerivationCache()
        payload = cache.stats().as_dict()
        for key in ("compile_hits", "compile_misses", "store_hits", "store_misses"):
            assert key in payload

    def test_delta_subtracts_fieldwise(self):
        cache = DerivationCache()
        before = cache.stats()
        cache.requirements(figure1_workflow(), 2, "set")
        delta = cache.stats().delta(before)
        assert delta.derivation_misses == 1
        assert delta.derivation_hits == 0
