"""Tests for the persistent derivation store and the two-tier cache."""

from __future__ import annotations

import json
import os

import pytest

from repro.engine import DerivationCache, DerivationStore, Planner
from repro.engine.store import FORMAT_VERSION, OutSetKey, ResultKey, _key_digest
from repro.kernel import CompiledWorkflow
from repro.optim.lp import HAVE_SCIPY
from repro.workloads import figure1_workflow, random_workflow, workflow_fingerprint


@pytest.fixture
def store(tmp_path) -> DerivationStore:
    return DerivationStore(tmp_path / "store")


class TestArtifactRoundTrips:
    def test_requirements_round_trip(self, store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        cache = DerivationCache()
        derived = cache.requirements(workflow, 2, "set", backend="kernel")
        store.save_requirements(fingerprint, 2, "set", "kernel", derived)
        loaded = store.load_requirements(fingerprint, 2, "set", "kernel")
        assert set(loaded) == set(derived)
        for name in derived:
            assert list(loaded[name]) == list(derived[name])

    def test_relation_round_trip(self, store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        relation = workflow.provenance_relation()
        store.save_relation(fingerprint, relation, workflow=workflow)
        loaded = store.load_relation(fingerprint, workflow)
        assert loaded == relation

    def test_pack_round_trip_produces_identical_out_sets(self, store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        cache = DerivationCache()
        compiled = cache.compiled_workflow(workflow)
        store.save_pack(fingerprint, compiled)
        loaded = store.load_pack(
            fingerprint, workflow, workflow.provenance_relation()
        )
        visible = frozenset({"a1", "a3", "a5"})
        for module in workflow.module_names:
            assert loaded.module_out_sets(module, visible) == compiled.module_out_sets(
                module, visible
            )

    def test_out_sets_round_trip(self, store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        cache = DerivationCache()
        visible = frozenset({"a1", "a3", "a5"})
        out_sets = cache.module_out_sets(
            workflow, "m1", visible, frozenset(), stop_at=None, backend="kernel"
        )
        key = OutSetKey("m1", visible, frozenset(), None, "kernel")
        store.save_out_sets(fingerprint, workflow, key, "m1", out_sets)
        assert store.load_out_sets(fingerprint, workflow, key) == out_sets

    def test_result_round_trip(self, store):
        key = ResultKey("kernel", 2, "set", "exact", None, False)
        record = {"cost": 3.0, "solver": "exact", "hidden_attributes": ["a2"]}
        store.save_result("ab" * 32, key, record)
        assert store.load_result("ab" * 32, key) == record

    def test_missing_entries_are_misses(self, store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        assert store.load_requirements(fingerprint, 2, "set", "kernel") is None
        assert store.load_relation(fingerprint, workflow) is None
        assert (
            store.load_result(fingerprint, ResultKey("kernel", 2, "set", "a", 0))
            is None
        )
        stats = store.stats()
        assert stats["hits"] == 0 and stats["misses"] == 3

    def test_corrupt_entry_degrades_to_miss(self, store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        relation = workflow.provenance_relation()
        store.save_relation(fingerprint, relation)
        path = store._dir(fingerprint) / "relation.json"
        path.write_text("{not json")
        assert store.load_relation(fingerprint, workflow) is None

    def test_corrupt_pack_degrades_to_miss(self, store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        relation = workflow.provenance_relation()
        for payload in ('{"layout": "x", "codes": []}', '{"pack": {"layout": "x"}}'):
            path = store._dir(fingerprint) / "pack.json"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(payload)
            assert store.load_pack(fingerprint, workflow, relation) is None

    def test_negative_domain_index_degrades_to_miss(self, tmp_path):
        store = DerivationStore(tmp_path / "store", format_version=1)
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        store.save_relation(fingerprint, workflow.provenance_relation())
        path = store._dir(fingerprint) / "relation.json"
        payload = json.loads(path.read_text())
        payload["rows"][0][0] = -1  # would silently wrap via domain[-1]
        path.write_text(json.dumps(payload))
        assert store.load_relation(fingerprint, workflow) is None

    def test_requirements_round_trip_preserves_order(self, store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        derived = DerivationCache().requirements(workflow, 2, "set")
        store.save_requirements(fingerprint, 2, "set", "kernel", derived)
        loaded = store.load_requirements(fingerprint, 2, "set", "kernel")
        # Same mapping order as fresh derivation: constraint ordering (and
        # thus LP/IP tie-breaking among equal optima) must not change.
        assert list(loaded) == list(derived)

    def test_structurally_wrong_entry_degrades_to_miss(self, store):
        workflow = figure1_workflow()
        other = random_workflow(4, seed=5)
        fingerprint = workflow_fingerprint(workflow)
        store.save_relation(fingerprint, other.provenance_relation())
        # Decoding against the wrong schema must fail safe, not misdecode.
        assert store.load_relation(fingerprint, workflow) is None


class TestStoreFormatV2:
    """The binary, memory-mapped v2 layout and its failure modes."""

    @staticmethod
    def _saved_entry(store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        compiled = DerivationCache().compiled_workflow(workflow)
        store.save_pack(fingerprint, compiled)
        store.save_relation(fingerprint, workflow.provenance_relation(),
                            workflow=workflow)
        return workflow, fingerprint, compiled

    def test_v2_writes_binary_sidecars_and_stamped_docs(self, store):
        workflow, fingerprint, _ = self._saved_entry(store)
        entry = store._dir(fingerprint)
        for stem in ("pack", "relation"):
            doc = json.loads((entry / f"{stem}.json").read_text())
            assert doc["format"] == FORMAT_VERSION
            descriptor = doc["pack"]["codes"]
            assert isinstance(descriptor, dict)
            sidecar = entry / descriptor["file"]
            assert sidecar.is_file() and sidecar.stat().st_size > 0
        meta = json.loads((entry / "meta.json").read_text())
        assert meta["format_version"] == FORMAT_VERSION

    def test_truncated_sidecar_degrades_to_miss(self, store):
        workflow, fingerprint, _ = self._saved_entry(store)
        entry = store._dir(fingerprint)
        sidecar = next(entry.glob("pack.codes.*"))
        sidecar.write_bytes(sidecar.read_bytes()[:-3])
        assert store.load_pack(
            fingerprint, workflow, workflow.provenance_relation()
        ) is None

    def test_garbage_sidecar_degrades_to_miss(self, store):
        workflow, fingerprint, _ = self._saved_entry(store)
        entry = store._dir(fingerprint)
        next(entry.glob("relation.codes.*")).write_bytes(b"\x00garbage\xff" * 7)
        assert store.load_relation(fingerprint, workflow) is None

    def test_missing_sidecar_degrades_to_miss(self, store):
        workflow, fingerprint, _ = self._saved_entry(store)
        entry = store._dir(fingerprint)
        next(entry.glob("pack.codes.*")).unlink()
        assert store.load_pack(
            fingerprint, workflow, workflow.provenance_relation()
        ) is None

    def test_sidecar_path_traversal_is_rejected(self, store, tmp_path):
        workflow, fingerprint, _ = self._saved_entry(store)
        entry = store._dir(fingerprint)
        outside = tmp_path / "outside.npy"
        outside.write_bytes(next(entry.glob("pack.codes.*")).read_bytes())
        doc = json.loads((entry / "pack.json").read_text())
        doc["pack"]["codes"]["file"] = os.path.relpath(outside, entry)
        (entry / "pack.json").write_text(json.dumps(doc))
        assert store.load_pack(
            fingerprint, workflow, workflow.provenance_relation()
        ) is None

    def test_v2_document_without_base_dir_raises_for_v1_readers(self, store):
        """Code expecting inline v1 codes fails loudly, not with garbage."""
        workflow, fingerprint, _ = self._saved_entry(store)
        doc = json.loads((store._dir(fingerprint) / "pack.json").read_text())
        with pytest.raises(ValueError):
            CompiledWorkflow.from_payload(
                workflow, workflow.provenance_relation(), doc
            )

    def test_future_format_degrades_to_miss(self, store):
        workflow, fingerprint, _ = self._saved_entry(store)
        entry = store._dir(fingerprint)
        for stem in ("pack", "relation"):
            doc = json.loads((entry / f"{stem}.json").read_text())
            doc["format"] = FORMAT_VERSION + 1
            (entry / f"{stem}.json").write_text(json.dumps(doc))
        assert store.load_pack(
            fingerprint, workflow, workflow.provenance_relation()
        ) is None
        assert store.load_relation(fingerprint, workflow) is None

    def test_mixed_version_store_serves_both_formats(self, tmp_path):
        """A half-migrated directory keeps serving hits from both tiers."""
        root = tmp_path / "store"
        old = DerivationStore(root, format_version=1)
        new = DerivationStore(root)
        v1_wf = figure1_workflow()
        v1_fp = workflow_fingerprint(v1_wf)
        old.save_relation(v1_fp, v1_wf.provenance_relation(), workflow=v1_wf)
        v2_wf = random_workflow(4, seed=11)
        v2_fp = workflow_fingerprint(v2_wf)
        new.save_relation(v2_fp, v2_wf.provenance_relation(), workflow=v2_wf)
        reader = DerivationStore(root)
        assert reader.load_relation(v1_fp, v1_wf) == v1_wf.provenance_relation()
        assert reader.load_relation(v2_fp, v2_wf) == v2_wf.provenance_relation()

    def test_loaded_pack_reports_mapped_bytes(self, store):
        workflow, fingerprint, compiled = self._saved_entry(store)
        loaded = store.load_pack(
            fingerprint, workflow, workflow.provenance_relation()
        )
        assert loaded is not None
        mapped = getattr(loaded.packed, "mapped_bytes", 0)
        # mmap may legitimately be unavailable (exotic filesystems); the
        # pack must still round-trip either way.
        assert mapped >= 0
        visible = frozenset({"a1", "a3", "a5"})
        assert loaded.module_out_sets("m1", visible) == compiled.module_out_sets(
            "m1", visible
        )


class TestDiskStatsSurface:
    def test_disk_stats_reports_tiers_and_format_versions(self, store):
        workflow = figure1_workflow()
        cache = DerivationCache(store=store)
        cache.requirements(workflow, 2, "set")  # fills both tiers
        cache.compiled_workflow(workflow)
        stats = store.disk_stats()
        assert stats["format_version"] == FORMAT_VERSION
        assert stats["format_versions"].get(str(FORMAT_VERSION), 0) > 0
        tiers = stats["tiers"]
        assert tiers["workflow"]["entries"] >= 1
        assert tiers["modules"]["entries"] >= 1
        for tier in tiers.values():
            assert tier["files"] > 0 and tier["bytes"] > 0
        assert tiers["workflow"]["bytes"] + tiers["modules"]["bytes"] == (
            stats["bytes"]
        )


class TestStoreMigration:
    """``DerivationStore.migrate``: v1 -> v2, in place, idempotent."""

    @staticmethod
    def _v1_store_with_solve(tmp_path):
        directory = tmp_path / "store"
        store = DerivationStore(directory, format_version=1)
        planner = Planner(figure1_workflow(), 2, kind="set", store=store)
        planner.solve(solver="greedy", verify=True)
        return directory

    def test_migrate_rewrites_packs_and_relations(self, tmp_path):
        directory = self._v1_store_with_solve(tmp_path)
        store = DerivationStore(directory)
        before = store.disk_stats()
        assert before["format_versions"].get("1", 0) > 0
        summary = store.migrate()
        assert summary["packs_migrated"] > 0
        assert summary["relations_migrated"] > 0
        assert summary["failed"] == 0
        after = store.disk_stats()
        assert "1" not in after["format_versions"]
        assert after["format_versions"].get("2", 0) == summary["entries"]

    def test_migrate_is_idempotent(self, tmp_path):
        directory = self._v1_store_with_solve(tmp_path)
        store = DerivationStore(directory)
        first = store.migrate()
        second = store.migrate()
        assert second["packs_migrated"] == 0
        assert second["relations_migrated"] == 0
        assert second["already_current"] > 0
        assert second["entries"] == first["entries"]

    def test_warm_solve_on_migrated_store_skips_derivation(self, tmp_path):
        directory = self._v1_store_with_solve(tmp_path)
        cold = Planner(figure1_workflow(), 2, kind="set", store=str(directory))
        expected = cold.solve(solver="greedy", verify=True)
        DerivationStore(directory).migrate()
        warm = Planner(figure1_workflow(), 2, kind="set", store=str(directory))
        result = warm.solve(solver="greedy", verify=True)
        assert result.cost == expected.cost
        assert sorted(result.hidden_attributes) == sorted(
            expected.hidden_attributes
        )
        assert result.cache_stats.derivation_misses == 0
        assert result.cache_stats.store_hits > 0

    def test_migrated_module_pack_payload_is_byte_identical(self, tmp_path):
        directory = self._v1_store_with_solve(tmp_path)
        store = DerivationStore(directory)
        workflow = figure1_workflow()
        from repro.workloads import module_fingerprint

        originals = {}
        for module in workflow.private_modules:
            mfp = module_fingerprint(module)
            loaded = store.load_module_pack(mfp, module)
            assert loaded is not None, "fixture store must hold module packs"
            originals[mfp] = json.dumps(loaded.to_payload(), sort_keys=True)
        store.migrate()
        for module in workflow.private_modules:
            mfp = module_fingerprint(module)
            migrated = store.load_module_pack(mfp, module)
            assert json.dumps(
                migrated.to_payload(), sort_keys=True
            ) == originals[mfp]


class TestTwoTierCache:
    def test_warm_store_skips_derivation_in_fresh_cache(self, store):
        workflow = figure1_workflow()
        cold = DerivationCache(store=store)
        cold.requirements(workflow, 2, "set")
        assert cold.derivation_misses == 1 and cold.store_misses >= 1

        warm = DerivationCache(store=store)
        rebuilt = figure1_workflow()  # a distinct object, same content
        lists = warm.requirements(rebuilt, 2, "set")
        assert warm.derivation_misses == 0
        assert warm.store_hits == 1
        assert set(lists) == {m.name for m in workflow.private_modules}

    def test_warm_store_serves_relation_pack_and_out_sets(self, store):
        workflow = figure1_workflow()
        cold = DerivationCache(store=store)
        visible = frozenset({"a1", "a3", "a5"})
        cold.relation(workflow)
        cold.compiled_workflow(workflow)
        expected = cold.module_out_sets(
            workflow, "m1", visible, frozenset(), stop_at=None, backend="kernel"
        )

        warm = DerivationCache(store=store)
        rebuilt = figure1_workflow()
        assert warm.relation(rebuilt) == cold.relation(workflow)
        warm.compiled_workflow(rebuilt)
        got = warm.module_out_sets(
            rebuilt, "m1", visible, frozenset(), stop_at=None, backend="kernel"
        )
        assert got == expected
        assert warm.relation_misses == 0
        assert warm.compile_misses == 0  # served from the store, not compiled
        assert warm.compile_hits == 1
        assert warm.out_set_misses == 0
        assert warm.store_hits >= 3

    @pytest.mark.skipif(not HAVE_SCIPY, reason="exact solver needs scipy")
    def test_planner_store_path_round_trip(self, tmp_path):
        directory = str(tmp_path / "store")
        first = Planner(figure1_workflow(), 2, kind="set", store=directory)
        result = first.solve(solver="exact", verify=True)

        second = Planner(figure1_workflow(), 2, kind="set", store=directory)
        again = second.solve(solver="exact", verify=True)
        assert again.cost == result.cost
        assert again.certificate.ok == result.certificate.ok
        assert again.cache_stats.derivation_misses == 0
        assert again.cache_stats.out_set_misses == 0
        assert again.cache_stats.store_hits > 0

    def test_memory_front_is_bounded(self):
        cache = DerivationCache(max_entries=2)
        for seed in range(4):
            cache.relation(random_workflow(3, seed=seed))
        assert len(cache._relations) <= 2
        # Pins survive eviction so id() reuse can never alias an entry.
        assert len(cache._workflows) == 4

    def test_seeded_requirements_are_never_evicted(self):
        # Caller-provided lists may not be re-derivable (generators attach
        # random requirements): the FIFO bound must not touch them.
        from repro.workloads import random_problem

        cache = DerivationCache(max_entries=2)
        problem = random_problem(n_modules=4, kind="set", seed=21)
        cache.seed_requirements(
            problem.workflow, problem.gamma, "set", problem.requirements
        )
        for seed in range(4):  # churn the bounded derived-requirements table
            cache.requirements(random_workflow(3, seed=seed), 2, "set")
        served = cache.requirements(problem.workflow, problem.gamma, "set")
        assert served is problem.requirements


class TestClearRegression:
    """DerivationCache.clear() drops everything, including pinned packs."""

    def test_clear_drops_pinned_compiled_and_resets_counters(self):
        cache = DerivationCache()
        workflow = figure1_workflow()
        cache.compiled_workflow(workflow)
        cache.compiled_workflow(workflow)
        cache.requirements(workflow, 2, "set")
        assert cache._compiled and cache.compile_hits == 1

        cache.clear()
        assert not cache._compiled
        assert not cache._workflows and not cache._fingerprints
        assert not cache._requirements and not cache._relations
        assert not cache._out_sets
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0
        assert stats.compile_hits == stats.compile_misses == 0
        assert stats.store_hits == stats.store_misses == 0

    def test_clear_keeps_disk_artifacts(self, tmp_path):
        store = DerivationStore(tmp_path / "store")
        cache = DerivationCache(store=store)
        workflow = figure1_workflow()
        cache.requirements(workflow, 2, "set")
        cache.clear()
        assert cache.store is store
        warm = cache.requirements(figure1_workflow(), 2, "set")
        assert cache.derivation_misses == 0 and cache.store_hits == 1
        assert warm


class TestCacheStatsSurface:
    def test_stats_dict_includes_store_counters(self):
        cache = DerivationCache()
        payload = cache.stats().as_dict()
        for key in (
            "compile_hits",
            "compile_misses",
            "store_hits",
            "store_misses",
            "mmap_packs",
            "mmap_bytes",
        ):
            assert key in payload

    def test_warm_v2_pack_load_counts_mapped_bytes(self, store):
        workflow = figure1_workflow()
        cold = DerivationCache(store=store)
        cold.relation(workflow)
        cold.compiled_workflow(workflow)
        warm = DerivationCache(store=store)
        rebuilt = figure1_workflow()
        warm.relation(rebuilt)
        warm.compiled_workflow(rebuilt)
        stats = warm.stats()
        assert stats.mmap_packs >= 1
        assert stats.mmap_bytes > 0
        warm.clear()
        cleared = warm.stats()
        assert cleared.mmap_packs == 0 and cleared.mmap_bytes == 0

    def test_delta_subtracts_fieldwise(self):
        cache = DerivationCache()
        before = cache.stats()
        cache.requirements(figure1_workflow(), 2, "set")
        delta = cache.stats().delta(before)
        assert delta.derivation_misses == 1
        assert delta.derivation_hits == 0


class TestStoreGC:
    """LRU eviction to a byte budget (the maintenance GC task's engine)."""

    @staticmethod
    def _backdate(path, seconds: float) -> None:
        stat = path.stat()
        os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))

    def test_touch_on_read_keeps_warm_artifacts_over_cold_ones(self, store):
        warm_key = ResultKey("kernel", 2, "set", "exact", None, False)
        cold_key = ResultKey("kernel", 3, "set", "exact", None, False)
        fingerprint = "ab" * 32
        store.save_result(fingerprint, warm_key, {"cost": 3.0})
        store.save_result(fingerprint, cold_key, {"cost": 4.0})
        warm_path, cold_path = (
            store._dir(fingerprint) / f"result-{_key_digest(key)}.json"
            for key in (warm_key, cold_key)
        )
        # Both written an hour ago, cold more recently than warm...
        self._backdate(warm_path, 3600.0)
        self._backdate(cold_path, 1800.0)
        # ... but a read *touches* warm, so LRU now favors it.
        assert store.load_result(fingerprint, warm_key) == {"cost": 3.0}
        budget = warm_path.stat().st_size
        summary = store.gc(max_bytes=budget)
        assert summary["deleted_files"] == 1
        assert summary["kept_bytes"] <= budget
        assert store.load_result(fingerprint, warm_key) == {"cost": 3.0}
        assert store.load_result(fingerprint, cold_key) is None

    def test_gc_never_deletes_inflight_temp_files(self, store):
        store.save_result(
            "cd" * 32, ResultKey("kernel", 2, "set", "exact", None, False),
            {"cost": 1.0},
        )
        entry_dir = store._dir("cd" * 32)
        temp = entry_dir / f"result.json.tmp-{os.getpid()}"
        temp.write_text("{in flight}")
        summary = store.gc(max_bytes=0)
        assert summary["kept_bytes"] == 0  # every *artifact* went
        assert temp.exists()  # the in-flight temp did not
        assert store.load_result(
            "cd" * 32, ResultKey("kernel", 2, "set", "exact", None, False)
        ) is None

    def test_gc_sweeps_out_emptied_entry_directories(self, store):
        fingerprint = "ef" * 32
        store.save_result(
            fingerprint, ResultKey("kernel", 2, "set", "exact", None, False),
            {"cost": 2.0},
        )
        assert store._dir(fingerprint).is_dir()
        store.gc(max_bytes=0)
        assert not store._dir(fingerprint).exists()
        # The emptied two-hex shard directory goes too, not just the entry.
        assert not store._dir(fingerprint).parent.exists()
        assert store.root.is_dir()  # the root itself survives

    def test_gc_evicts_binary_sidecars_with_their_documents(self, store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        cache = DerivationCache(store=store)
        cache.relation(workflow)
        cache.compiled_workflow(workflow)
        entry = store._dir(fingerprint)
        assert list(entry.glob("*.codes.*"))  # v2 wrote sidecars
        summary = store.gc(max_bytes=0)
        assert summary["kept_bytes"] == 0
        assert not entry.exists()
        assert not list(store.root.rglob("*.codes.*"))

    def test_gc_rejects_negative_budget(self, store):
        with pytest.raises(ValueError):
            store.gc(max_bytes=-1)


class TestPopularityMeta:
    """The meta tier's popularity counter and warm-up queries."""

    def test_bump_and_read_survive_reopen(self, store, tmp_path):
        fingerprint = "ab" * 32
        assert store.popularity(fingerprint) == 0
        assert store.bump_popularity(fingerprint) == 1
        assert store.bump_popularity(fingerprint, 4) == 5
        reopened = DerivationStore(tmp_path / "store")
        assert reopened.popularity(fingerprint) == 5

    def test_popularity_survives_artifact_writes(self, store):
        """Bump-before-save must not be clobbered by the meta write."""
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        store.bump_popularity(fingerprint, 2)
        store.save_relation(fingerprint, workflow.provenance_relation(),
                            workflow=workflow)
        assert store.popularity(fingerprint) == 2
        popular = store.popular_workflows(1)
        assert popular[0][0] == fingerprint and popular[0][1] == 2

    def test_popular_workflows_ranks_and_skips_unwarmables(self, store):
        ranked_wf = figure1_workflow()
        ranked = workflow_fingerprint(ranked_wf)
        store.save_relation(ranked, ranked_wf.provenance_relation(),
                            workflow=ranked_wf)
        store.bump_popularity(ranked, 3)
        other_wf = random_workflow(3, seed=7)
        other = workflow_fingerprint(other_wf)
        store.save_relation(other, other_wf.provenance_relation(),
                            workflow=other_wf)
        store.bump_popularity(other, 9)
        # Popular but payload-less: bumped yet never saved — unwarmable.
        store.bump_popularity("99" * 32, 50)
        ranking = store.popular_workflows(10)
        assert [(fp, count) for fp, count, _ in ranking] == [
            (other, 9), (ranked, 3)
        ]
        assert ranking[0][2]["name"] == other_wf.name
        assert store.popular_workflows(1) == ranking[:1]

    def test_stored_requirement_points_parse_filenames(self, store):
        workflow = figure1_workflow()
        fingerprint = workflow_fingerprint(workflow)
        cache = DerivationCache()
        for kind in ("set", "cardinality"):
            derived = cache.requirements(workflow, 2, kind, backend="kernel")
            store.save_requirements(fingerprint, 2, kind, "kernel", derived)
        assert store.stored_requirement_points(fingerprint) == [
            (2, "cardinality", "kernel"),
            (2, "set", "kernel"),
        ]
        assert store.stored_requirement_points("00" * 32) == []
