"""Tests for the parallel sweep executor."""

from __future__ import annotations

import json

import pytest

from repro.engine import (
    SweepInstance,
    SweepSpec,
    run_sweep,
    scrub_record,
    spec_from_grid,
)
from repro.workloads import (
    figure1_workflow,
    problem_to_dict,
    random_problem,
    random_workflow,
    workflow_to_dict,
)


def _spec(solvers=("set_lp", "greedy"), seeds=(0,), **kwargs) -> SweepSpec:
    instances = tuple(
        SweepInstance(
            f"w{seed}", "workflow", workflow_to_dict(random_workflow(5, seed=seed))
        )
        for seed in (1, 2)
    )
    return SweepSpec(
        instances=instances, gammas=(2,), kinds=("set",), solvers=solvers,
        seeds=seeds, **kwargs
    )


class TestGridExpansion:
    def test_cells_are_deterministic_and_indexed(self):
        spec = _spec()
        cells = spec.cells()
        assert [cell.index for cell in cells] == list(range(len(cells)))
        assert cells == spec.cells()
        assert len(cells) == 2 * 1 * 1 * 2 * 1

    def test_problem_instances_ignore_grid_axes(self):
        problem = random_problem(n_modules=5, kind="set", seed=3)
        spec = SweepSpec(
            instances=(SweepInstance("p", "problem", problem_to_dict(problem)),),
            gammas=(2, 3),
            kinds=("set", "cardinality"),
            solvers=("greedy",),
        )
        cells = spec.cells()
        assert len(cells) == 1  # gammas/kinds come baked into the problem
        assert cells[0].gamma is None and cells[0].kind is None

    def test_explicit_solver_seed_pairs(self):
        spec = _spec(solver_seed_pairs=(("exact", None), ("greedy", 7)))
        cells = spec.cells()
        assert [(c.solver, c.seed) for c in cells[:2]] == [
            ("exact", None),
            ("greedy", 7),
        ]

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError):
            SweepInstance("x", "mystery", {})


class TestSerialParallelEquivalence:
    def test_records_identical_modulo_timings(self):
        spec = _spec()
        serial = run_sweep(spec, n_jobs=1)
        parallel = run_sweep(spec, n_jobs=2)
        assert [scrub_record(r) for r in serial.records] == [
            scrub_record(r) for r in parallel.records
        ]
        assert serial.errors == parallel.errors == 0

    def test_records_sorted_by_index(self):
        report = run_sweep(_spec(), n_jobs=2)
        assert [r["index"] for r in report.records] == list(range(len(report.records)))


class TestFailureIsolation:
    def test_bad_solver_yields_error_record_not_dead_sweep(self):
        spec = _spec(solvers=("lp_rounding", "greedy"))  # lp_rounding: wrong kind
        report = run_sweep(spec, n_jobs=1)
        errors = [r for r in report.records if "error" in r]
        oks = [r for r in report.records if "error" not in r]
        assert len(errors) == 2 and len(oks) == 2
        assert all(r["cost"] == float("inf") for r in errors)
        assert all(r["method"] == "lp_rounding" for r in errors)

    def test_error_records_match_across_serial_and_parallel(self):
        spec = _spec(solvers=("lp_rounding", "greedy"))
        serial = run_sweep(spec, n_jobs=1)
        parallel = run_sweep(spec, n_jobs=2)
        assert [scrub_record(r) for r in serial.records] == [
            scrub_record(r) for r in parallel.records
        ]


class TestStoreIntegration:
    def test_warm_store_performs_zero_derivations(self, tmp_path):
        spec = _spec()
        store = tmp_path / "store"
        cold = run_sweep(spec, n_jobs=2, store=store)
        assert cold.stats["derivation_misses"] > 0
        warm = run_sweep(spec, n_jobs=2, store=store)
        assert warm.stats["derivation_misses"] == 0
        assert warm.result_store_hits == len(warm.records)
        assert [scrub_record(r) for r in warm.records] == [
            scrub_record(r) for r in cold.records
        ]
        assert all(r["from_store"] for r in warm.records)

    def test_infeasible_gamma_failures_are_served_from_store(self, tmp_path):
        # Γ=6 is infeasible for these instances (RequirementError), which is
        # a pure function of workflow content: the warm run must skip even
        # the failing cells' derivations.
        instances = tuple(
            SweepInstance(
                f"w{seed}", "workflow", workflow_to_dict(random_workflow(5, seed=seed))
            )
            for seed in (1, 2)
        )
        spec = SweepSpec(
            instances=instances, gammas=(2, 6), kinds=("set",), solvers=("greedy",)
        )
        store = tmp_path / "store"
        cold = run_sweep(spec, n_jobs=1, store=store)
        assert cold.errors == 2
        assert all(
            record["error_type"] == "RequirementError"
            for record in cold.records
            if "error" in record
        )
        warm = run_sweep(spec, n_jobs=1, store=store)
        assert warm.errors == 2
        assert warm.stats["derivation_misses"] == 0
        assert warm.result_store_hits == len(warm.records)
        assert [scrub_record(r) for r in warm.records] == [
            scrub_record(r) for r in cold.records
        ]

    def test_solver_applicability_failures_are_not_persisted(self, tmp_path):
        # SolverError (wrong-kind solver) depends on registry metadata that
        # can change across versions — never served from a warm store.
        spec = _spec(solvers=("lp_rounding", "greedy"))
        store = tmp_path / "store"
        run_sweep(spec, n_jobs=1, store=store)
        warm = run_sweep(spec, n_jobs=1, store=store)
        assert warm.errors == 2
        assert warm.stats["derivation_misses"] == 0  # derivations still shared
        assert warm.result_store_hits == 2  # only the successful greedy cells

    def test_fresh_results_still_reuses_derivations(self, tmp_path):
        spec = _spec()
        store = tmp_path / "store"
        run_sweep(spec, n_jobs=1, store=store)
        warm = run_sweep(spec, n_jobs=1, store=store, reuse_results=False)
        assert warm.result_store_hits == 0
        assert warm.stats["derivation_misses"] == 0  # derivations from store
        assert warm.stats["store_hits"] > 0

    def test_serial_run_updates_caller_store_counters(self, tmp_path):
        from repro.engine import DerivationStore

        store = DerivationStore(tmp_path / "store")
        run_sweep(_spec(), n_jobs=1, store=store)
        assert store.stats()["writes"] > 0
        run_sweep(_spec(), n_jobs=1, store=store)
        assert store.stats()["result_hits"] > 0


class TestVerification:
    def test_verify_attaches_certificates(self):
        spec = SweepSpec(
            instances=(
                SweepInstance("fig1", "workflow", workflow_to_dict(figure1_workflow())),
            ),
            solvers=("exact",),
            verify=True,
        )
        report = run_sweep(spec, n_jobs=1)
        assert report.records[0]["verified"] is True


class TestGridFile:
    def test_spec_from_grid_reads_workflow_and_problem_files(self, tmp_path):
        from repro.workloads import dump_problem

        problem = random_problem(n_modules=5, kind="set", seed=4)
        problem_path = tmp_path / "p.json"
        dump_problem(problem, str(problem_path))
        workflow_path = tmp_path / "w.json"
        workflow_path.write_text(
            json.dumps(workflow_to_dict(random_workflow(4, seed=6)))
        )
        grid = {
            "workflows": ["w.json", "p.json"],  # problem file contributes its workflow
            "problems": ["p.json"],
            "gammas": [2],
            "kinds": ["set"],
            "solvers": ["greedy"],
            "seeds": [0],
        }
        spec = spec_from_grid(grid, base_dir=str(tmp_path))
        assert len(spec.instances) == 3
        assert [i.source for i in spec.instances] == ["workflow", "workflow", "problem"]
        labels = [i.label for i in spec.instances]
        assert len(set(labels)) == 3  # duplicate basenames are disambiguated
        report = run_sweep(spec, n_jobs=1)
        assert report.errors == 0 and len(report.records) == 3

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            spec_from_grid({"gammas": [2]})

    def test_non_object_grid_rejected(self):
        with pytest.raises(ValueError):
            spec_from_grid([1, 2])

    def test_string_axis_rejected(self):
        with pytest.raises(ValueError):
            spec_from_grid({"workflows": "w1.json"})
