"""Module-granular derivation: shared module tier, Planner.evolve, families.

PR 4 re-keys the derivation pipeline from workflow granularity down to
module granularity.  These tests pin the load-bearing behaviours:

* per-module requirement lists and compiled packs are shared by *content*
  fingerprint — across workflow objects, cost variants and edit-chains, in
  memory and through the store's ``modules/`` tier;
* ``Planner.evolve`` re-derives exactly the modules whose content changed
  and never changes an answer relative to a cold solve;
* general (mixed public/private) workflows round-trip identically through
  the Planner+store path, ``privatization_closure`` results included;
* the sweep executor groups instances into shared-module families so a
  family grid pays each distinct module derivation once.
"""

from __future__ import annotations

import json

import pytest

from repro.core import (
    Module,
    Workflow,
    boolean_attributes,
    privatization_closure,
)
from repro.engine import (
    DerivationCache,
    DerivationStore,
    Planner,
    SweepInstance,
    SweepSpec,
    run_sweep,
    scrub_record,
)
from repro.engine.executor import _chunks_for
from repro.exceptions import WorkflowError
from repro.kernel import CompiledModule
from repro.workloads import (
    module_fingerprint,
    workflow_family,
    workflow_to_dict,
)


def _signature(lists):
    """Structural form of a requirement mapping for equality checks."""
    out = {}
    for name, lst in lists.items():
        options = []
        for option in lst:
            if hasattr(option, "alpha"):
                options.append(("card", option.alpha, option.beta))
            else:
                options.append(
                    (
                        "set",
                        tuple(sorted(option.hidden_inputs)),
                        tuple(sorted(option.hidden_outputs)),
                    )
                )
        out[name] = sorted(options)
    return out


@pytest.fixture
def family():
    return workflow_family(n_variants=2, seed=11, n_modules=4, topology="chain")


class TestSharedModuleTier:
    def test_edit_chain_rederives_only_changed_modules(self, family):
        base, v1, _ = family
        cache = DerivationCache()
        cache.requirements(base, 2, "set")
        assert cache.rederived_modules == len(base)

        cache.requirements(v1, 2, "set")
        changed = sum(
            1
            for m in v1.modules
            if module_fingerprint(m) != module_fingerprint(base.module(m.name))
        )
        assert changed == 1
        assert cache.rederived_modules == len(base) + 1
        assert cache.reused_modules == len(base) - 1

    def test_assembly_matches_whole_workflow_derivation(self, family):
        from repro.core import derive_workflow_requirements

        base = family[0]
        assembled = DerivationCache().requirements(base, 2, "set")
        direct = derive_workflow_requirements(base, 2, kind="set")
        assert list(assembled) == list(direct)
        assert _signature(assembled) == _signature(direct)

    def test_cost_overrides_share_module_entries(self, family):
        base = family[0]
        cache = DerivationCache()
        cache.requirements(base, 2, "set")
        recosted = base.with_attribute_costs(
            {base.attribute_names[0]: 99.0}
        )
        cache.requirements(recosted, 2, "set")
        # The workflow fingerprint changed (costs are part of it) but every
        # module fingerprint did not: zero new module derivations.
        assert cache.rederived_modules == len(base)
        assert cache.reused_modules == len(base)

    def test_store_module_tier_shares_across_processes(self, tmp_path, family):
        base, v1, _ = family
        store = DerivationStore(tmp_path / "store")
        cold = DerivationCache(store=store)
        cold_lists = cold.requirements(base, 2, "set")
        assert store.writes["module_requirement"] == len(base)

        # A different process (fresh cache, same store) analyzing the edited
        # variant: only the edited module is derived, the rest stream in
        # from the shared modules/ tier.
        warm = DerivationCache(store=store)
        warm_lists = warm.requirements(v1, 2, "set")
        assert warm.rederived_modules == 1
        assert warm.reused_modules == len(base) - 1
        shared = [
            m.name
            for m in v1.modules
            if module_fingerprint(m) == module_fingerprint(base.module(m.name))
        ]
        for name in shared:
            assert _signature({name: warm_lists[name]}) == _signature(
                {name: cold_lists[name]}
            )

    def test_corrupt_module_entry_degrades_to_rederivation(self, tmp_path, family):
        base = family[0]
        store = DerivationStore(tmp_path / "store")
        DerivationCache(store=store).requirements(base, 2, "set")
        module = base.modules[0]
        fingerprint = module_fingerprint(module)
        req_path = store._module_dir(fingerprint) / "req-g2-set-kernel.json"
        req_path.write_text("{not json")
        # A structurally-valid JSON document with an unknown inner kind must
        # also degrade to a miss (SchemaError), not crash the solve.
        other = module_fingerprint(base.modules[1])
        bad_kind = store._module_dir(other) / "req-g2-set-kernel.json"
        bad_kind.write_text(
            json.dumps(
                {
                    "gamma": 2,
                    "kind": "set",
                    "backend": "kernel",
                    "requirement": {"kind": "sets", "module": "x", "options": []},
                }
            )
        )
        pack_path = store._module_dir(fingerprint) / "pack.json"
        pack_path.write_text(json.dumps({"pack": {"layout": "x", "codes": []}}))
        # Kill the workflow-level fast path so assembly actually runs.
        fresh = DerivationCache(store=store)
        lists = {
            m.name: fresh.module_requirement(m, 2, "set")
            for m in base.private_modules
        }
        assert _signature(lists) == _signature(
            DerivationCache().requirements(base, 2, "set")
        )

    def test_module_pack_round_trip_with_level_memos(self, family):
        module = family[0].modules[1]
        cache = DerivationCache()
        compiled = cache.compiled_module(module)
        compiled.minimal_safe_hidden_subsets(2)  # populate level memos
        payload = compiled.to_payload()
        assert payload["levels"]
        loaded = CompiledModule.from_payload(module, payload)
        assert loaded._level_cache == compiled._level_cache
        assert loaded.minimal_safe_hidden_subsets(
            2
        ) == compiled.minimal_safe_hidden_subsets(2)
        assert loaded.safe_cardinality_pairs(2) == compiled.safe_cardinality_pairs(2)

    def test_bad_level_memo_is_rejected(self, family):
        module = family[0].modules[0]
        compiled = DerivationCache().compiled_module(module)
        payload = compiled.to_payload()
        payload["levels"] = [[1 << 200, 4]]
        with pytest.raises(ValueError):
            CompiledModule.from_payload(module, payload)


class TestPlannerEvolve:
    def test_replace_matches_cold_solve(self, family):
        base, v1, v2 = family
        planner = Planner(base, 2, kind="set")
        planner.solve(solver="exact")
        for variant in (v1, v2):
            edited = {
                m.name: m
                for m in variant.modules
                if module_fingerprint(m)
                != module_fingerprint(planner.workflow.module(m.name))
            }
            before = planner.cache.stats()
            planner = planner.evolve(replace=edited)
            evolved = planner.solve(solver="exact")
            delta = planner.cache.stats().delta(before)
            assert delta.rederived_modules == len(edited) == 1
            assert delta.reused_modules == len(base) - 1
            cold = Planner(variant, 2, kind="set").solve(solver="exact")
            assert evolved.cost == cold.cost
            assert evolved.hidden_attributes == cold.hidden_attributes

    def test_gamma_change_keeps_workflow_identity(self, family):
        base = family[0]
        planner = Planner(base, 2, kind="cardinality")
        planner.solve(solver="auto")
        stricter = planner.evolve(gamma=4)
        # A pure Γ evolution keeps the same workflow object so id-keyed
        # workflow-level entries (relation, packs, out-sets) stay warm.
        assert stricter.gamma == 4 and stricter.workflow is planner.workflow
        result = stricter.solve(solver="auto")
        cold = Planner(base, 4, kind="cardinality").solve(solver="auto")
        assert result.cost == cold.cost

    def test_add_and_remove_modules(self, family):
        base = family[0]
        x, y = boolean_attributes(["evx", "evy"])
        extra = Module("extra", [x], [y], lambda v: {"evy": 1 - v["evx"]})
        planner = Planner(base, 2, kind="set")
        grown = planner.evolve(add=[extra])
        assert "extra" in grown.workflow.module_names
        shrunk = grown.evolve(remove=["extra"])
        assert "extra" not in shrunk.workflow.module_names
        assert shrunk.workflow.module_names == base.module_names
        # The shrunk planner's solve reuses every module entry.
        planner.solve(solver="greedy")
        before = shrunk.cache.stats()
        shrunk.solve(solver="greedy")
        delta = shrunk.cache.stats().delta(before)
        assert delta.rederived_modules == 0

    def test_unknown_or_conflicting_edits_raise(self, family):
        planner = Planner(family[0], 2, kind="set")
        with pytest.raises(WorkflowError, match="unknown"):
            planner.evolve(remove=["nope"])
        with pytest.raises(WorkflowError, match="unknown"):
            planner.evolve(replace={"nope": family[0].modules[0]})
        name = family[0].module_names[0]
        with pytest.raises(WorkflowError, match="removed and replaced"):
            planner.evolve(
                remove=[name], replace={name: family[0].module(name)}
            )
        with pytest.raises(WorkflowError, match="no modules left"):
            planner.evolve(remove=list(family[0].module_names))

    def test_costs_evolve_without_module_rederivation(self, family):
        base = family[0]
        planner = Planner(base, 2, kind="set")
        planner.solve(solver="greedy")
        before = planner.cache.stats()
        cheap = planner.evolve(costs={base.attribute_names[0]: 0.001})
        cheap.solve(solver="greedy")
        delta = cheap.cache.stats().delta(before)
        assert delta.rederived_modules == 0
        assert delta.reused_modules == len(base)


def _mixed_workflow() -> Workflow:
    """Two private modules around a public one (Section 5 setting)."""
    a0, a1, b0, b1, c0, d0 = boolean_attributes(
        ["a0", "a1", "b0", "b1", "c0", "d0"]
    )
    first = Module(
        "priv_head", [a0, a1], [b0, b1],
        lambda v: {"b0": v["a0"] ^ v["a1"], "b1": v["a0"] & v["a1"]},
    )
    public = Module(
        "pub_mid", [b0, b1], [c0],
        lambda v: {"c0": v["b0"] | v["b1"]},
        private=False,
        privatization_cost=2.0,
    )
    last = Module(
        "priv_tail", [c0], [d0], lambda v: {"d0": 1 - v["c0"]},
    )
    return Workflow([first, public, last], name="mixed")


class TestGeneralWorkflowStorePath:
    """Satellite: public-module workflows through Planner + store."""

    def test_privatization_closure_round_trips_warm_vs_cold(self, tmp_path):
        directory = str(tmp_path / "store")
        cold = Planner(_mixed_workflow(), 2, kind="set", store=directory)
        cold_result = cold.solve(solver="auto")
        assert cold.cache.stats().rederived_modules == 2  # private modules only

        warm = Planner(_mixed_workflow(), 2, kind="set", store=directory)
        warm_result = warm.solve(solver="auto")
        assert warm.cache.stats().rederived_modules == 0
        assert warm.cache.stats().derivation_misses == 0

        # Identical solutions — including the privatized public modules,
        # which must equal the privatization closure of the hidden set.
        assert warm_result.cost == cold_result.cost
        assert warm_result.hidden_attributes == cold_result.hidden_attributes
        assert warm_result.privatized_modules == cold_result.privatized_modules
        workflow = warm.workflow
        closure = privatization_closure(workflow, warm_result.hidden_attributes)
        touched = {
            m.name
            for m in workflow.public_modules
            if set(m.attribute_names) & set(warm_result.hidden_attributes)
        }
        assert closure == touched
        assert closure <= warm_result.privatized_modules

    def test_warm_general_solve_verifies_identically(self, tmp_path):
        directory = str(tmp_path / "store")
        cold = Planner(_mixed_workflow(), 2, kind="set", store=directory)
        cold_result = cold.solve(solver="auto", verify=True)

        warm = Planner(_mixed_workflow(), 2, kind="set", store=directory)
        warm_result = warm.solve(solver="auto", verify=True)
        assert warm.cache.stats().out_set_misses == 0
        assert warm_result.certificate.ok == cold_result.certificate.ok
        assert (
            warm_result.certificate.module_levels
            == cold_result.certificate.module_levels
        )


class TestFamilySweepChunking:
    def _spec(self, workflows) -> SweepSpec:
        return SweepSpec(
            instances=tuple(
                SweepInstance(w.name, "workflow", workflow_to_dict(w))
                for w in workflows
            ),
            gammas=(2,),
            kinds=("set",),
            solvers=("greedy",),
            seeds=(0,),
        )

    def test_family_lands_in_one_chunk_unrelated_do_not(self, family):
        unrelated = workflow_family(n_variants=0, seed=99, n_modules=3)[0]
        spec = self._spec([*family, unrelated])
        chunks = _chunks_for(spec, None, True, None)
        assert len(chunks) == 2
        assert {len(chunk["instances"]) for chunk in chunks} == {len(family), 1}

    def test_family_sweep_pays_each_distinct_module_once(self, family):
        report = run_sweep(self._spec(family), n_jobs=1)
        assert report.errors == 0
        distinct = len(
            {
                module_fingerprint(m)
                for workflow in family
                for m in workflow.modules
            }
        )
        assert report.stats["rederived_modules"] == distinct
        assert (
            report.stats["reused_modules"]
            == sum(len(w) for w in family) - distinct
        )

    def test_family_sweep_records_match_fresh_solves(self, family):
        report = run_sweep(self._spec(family), n_jobs=1)
        for workflow, record in zip(family, report.records):
            fresh = Planner(workflow, 2, kind="set").solve(solver="greedy")
            assert record["workflow"] == workflow.name
            assert record["cost"] == pytest.approx(fresh.cost)
            assert record["hidden_attributes"] == sorted(fresh.hidden_attributes)

    def test_multi_gamma_single_instance_still_fans_out(self, family):
        # Family grouping must not collapse a one-workflow parameter sweep
        # into a single serial chunk: distinct (Γ, kind) points are still
        # separate chunks, so --jobs keeps parallelizing them.
        spec = SweepSpec(
            instances=(
                SweepInstance(
                    family[0].name, "workflow", workflow_to_dict(family[0])
                ),
            ),
            gammas=(1, 2, 3),
            kinds=("set", "cardinality"),
            solvers=("greedy",),
            seeds=(0,),
        )
        chunks = _chunks_for(spec, None, True, None)
        assert len(chunks) == 6

    def test_chunk_size_still_splits_family_cells(self, family):
        spec = self._spec(family)
        chunks = _chunks_for(spec, None, True, 1)
        assert len(chunks) == len(family)
        serial = run_sweep(spec, n_jobs=1)
        split = run_sweep(spec, n_jobs=2, chunk_size=1)
        assert [scrub_record(r) for r in serial.records] == [
            scrub_record(r) for r in split.records
        ]
