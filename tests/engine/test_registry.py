"""Tests for the solver registry: registration, metadata, auto-selection."""

from __future__ import annotations

import pytest

from repro.engine import SolverRegistry, default_registry
from repro.exceptions import SolverError
from repro.optim import SOLVERS
from repro.workloads import random_problem


class TestDefaultRegistry:
    def test_every_optim_solver_is_registered(self):
        registry = default_registry()
        expected = set(SOLVERS) - {"auto"}
        assert expected <= set(registry.names())

    def test_aliases_resolve_to_same_spec(self):
        registry = default_registry()
        assert registry.get("exact_ip") is registry.get("exact")

    def test_unknown_solver_raises(self):
        with pytest.raises(SolverError, match="unknown solver"):
            default_registry().get("simulated_annealing")

    def test_specs_sorted_by_rank(self):
        ranks = [spec.cost_rank for spec in default_registry().specs()]
        assert ranks == sorted(ranks)

    def test_metadata_records(self):
        record = default_registry().get("lp_rounding").as_record()
        assert record["constraints"] == "cardinality"
        assert record["randomized"] is True


class TestApplicability:
    def test_cardinality_excludes_set_only_solvers(self):
        problem = random_problem(n_modules=5, kind="cardinality", seed=0)
        names = {s.name for s in default_registry().applicable(problem)}
        assert "lp_rounding" in names
        assert "set_lp" not in names

    def test_set_excludes_cardinality_only_solvers(self):
        problem = random_problem(n_modules=5, kind="set", seed=0)
        names = {s.name for s in default_registry().applicable(problem)}
        assert "set_lp" in names
        assert "lp_rounding" not in names

    def test_mixed_workflow_needs_general_scope(self):
        problem = random_problem(
            n_modules=6, kind="set", seed=2, private_fraction=0.5
        )
        assert problem.workflow.public_modules
        names = {s.name for s in default_registry().applicable(problem)}
        assert "general_lp" in names
        assert "set_lp" not in names  # declared all-private scope


class TestAutoSelection:
    def test_auto_matches_historical_choice_set(self):
        problem = random_problem(n_modules=5, kind="set", seed=0)
        assert default_registry().select(problem).name == "set_lp"

    def test_auto_matches_historical_choice_cardinality(self):
        problem = random_problem(n_modules=5, kind="cardinality", seed=0)
        assert default_registry().select(problem).name == "lp_rounding"

    def test_auto_matches_historical_choice_general(self):
        problem = random_problem(
            n_modules=6, kind="set", seed=2, private_fraction=0.5
        )
        assert default_registry().select(problem).name == "general_lp"

    def test_auto_never_picks_a_baseline(self):
        for seed in range(3):
            for kind in ("set", "cardinality"):
                problem = random_problem(n_modules=5, kind=kind, seed=seed)
                assert not default_registry().select(problem).baseline


class TestCustomRegistration:
    def test_decorator_registers_and_dispatches(self):
        registry = SolverRegistry()

        @registry.register(
            "cardinality-lp", constraints="cardinality", scope="all-private"
        )
        def my_solver(problem, seed=None):
            return "sentinel"

        spec = registry.get("cardinality-lp")
        assert spec.fn(None) == "sentinel"
        assert spec.accepts == {"seed"}
        assert not spec.accepts_any

    def test_duplicate_name_rejected(self):
        registry = SolverRegistry()
        registry.register("one")(lambda problem: None)
        with pytest.raises(SolverError, match="already registered"):
            registry.register("one")(lambda problem: None)

    def test_bad_metadata_rejected(self):
        registry = SolverRegistry()
        with pytest.raises(SolverError, match="constraints"):
            registry.register("bad", constraints="fuzzy")(lambda problem: None)

    def test_unsupported_option_rejected_ambient_dropped(self):
        registry = SolverRegistry()

        @registry.register("plain")
        def plain(problem):
            return None

        spec = registry.get("plain")
        # Ambient randomness is dropped silently for deterministic solvers...
        assert spec.accepted_kwargs({"seed": 3}) == {}
        # ...but explicit unknown options are an error, not a silent no-op.
        with pytest.raises(SolverError, match="does not accept option"):
            spec.accepted_kwargs({"scale": 2.0})
