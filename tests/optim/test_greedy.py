"""Tests for the greedy (γ+1)-approximation and the Example-5 baseline."""

from __future__ import annotations

import pytest

from repro.optim import (
    greedy_guarantee,
    solve_exact_ip,
    solve_greedy,
    union_of_standalone_optima,
)
from repro.workloads import example5_problem, random_problem


class TestGreedy:
    def test_solution_is_feasible(self, small_set_problem):
        solution = solve_greedy(small_set_problem)
        small_set_problem.validate_solution(solution)

    def test_cardinality_instances_supported(self, small_cardinality_problem):
        solution = solve_greedy(small_cardinality_problem)
        small_cardinality_problem.validate_solution(solution)

    def test_guarantee_holds_with_bounded_sharing(self):
        # Chain topologies have γ = 1, so greedy is a 2-approximation.
        problem = random_problem(n_modules=10, kind="set", seed=3, topology="chain")
        gamma = problem.workflow.data_sharing_degree()
        assert gamma == 1
        greedy_cost = solve_greedy(problem).cost()
        optimum = solve_exact_ip(problem).cost()
        assert greedy_cost <= (gamma + 1) * optimum + 1e-6

    def test_guarantee_holds_on_random_bounded_instances(self):
        for seed in range(3):
            problem = random_problem(
                n_modules=10, kind="cardinality", seed=seed, max_sharing=2
            )
            gamma = problem.workflow.data_sharing_degree()
            greedy_cost = solve_greedy(problem).cost()
            optimum = solve_exact_ip(problem).cost()
            assert greedy_cost <= (gamma + 1) * optimum + 1e-6

    def test_meta_records_choices_and_guarantee(self, small_set_problem):
        solution = solve_greedy(small_set_problem)
        assert set(solution.meta["per_module_choice"]) == set(
            small_set_problem.requirements
        )
        assert solution.meta["guarantee"] == greedy_guarantee(small_set_problem)


class TestExample5Baseline:
    def test_union_of_standalone_optima_costs_n_plus_one(self):
        n = 7
        problem = example5_problem(n)
        baseline = union_of_standalone_optima(problem)
        # Every middle module hides its own b_i (cost 1), the head hides a1
        # (cost 1, cheaper than a2), and the collector's pick is shared.
        assert baseline.cost() == pytest.approx(n + 1)

    def test_workflow_optimum_is_two_plus_epsilon(self):
        epsilon = 0.25
        problem = example5_problem(7, epsilon=epsilon)
        optimum = solve_exact_ip(problem)
        assert optimum.cost() == pytest.approx(2 + epsilon)

    def test_gap_grows_linearly_with_n(self):
        ratios = []
        for n in (3, 6, 9):
            problem = example5_problem(n)
            ratio = union_of_standalone_optima(problem).cost() / solve_exact_ip(
                problem
            ).cost()
            ratios.append(ratio)
        assert ratios[0] < ratios[1] < ratios[2]

    def test_baseline_method_label(self):
        problem = example5_problem(3)
        baseline = union_of_standalone_optima(problem)
        assert baseline.meta["method"] == "union_of_standalone_optima"
