"""Tests for the LP/IP builder on top of scipy."""

from __future__ import annotations

import pytest

from repro.exceptions import SolverError
from repro.optim import LinearProgram


def knapsack_like_program(integral: bool) -> LinearProgram:
    program = LinearProgram("toy")
    program.add_variable("x", cost=1.0, integral=integral)
    program.add_variable("y", cost=2.0, integral=integral)
    program.add_constraint({"x": 1.0, "y": 1.0}, ">=", 1.5, name="coverage")
    return program


class TestConstruction:
    def test_duplicate_variable_rejected(self):
        program = LinearProgram()
        program.add_variable("x")
        with pytest.raises(SolverError):
            program.add_variable("x")

    def test_unknown_variable_in_constraint_rejected(self):
        program = LinearProgram()
        program.add_variable("x")
        with pytest.raises(SolverError):
            program.add_constraint({"y": 1.0}, ">=", 1.0)

    def test_unknown_sense_rejected(self):
        program = LinearProgram()
        program.add_variable("x")
        with pytest.raises(SolverError):
            program.add_constraint({"x": 1.0}, ">>", 1.0)

    def test_counts_and_introspection(self):
        program = knapsack_like_program(False)
        assert program.num_variables == 2
        assert program.num_constraints == 1
        assert program.has_variable("x")
        assert not program.has_variable("z")
        assert "coverage" in program.describe()

    def test_empty_program_cannot_be_solved(self):
        with pytest.raises(SolverError):
            LinearProgram().solve_relaxation()
        with pytest.raises(SolverError):
            LinearProgram().solve_integer()


class TestSolving:
    def test_relaxation_fractional_optimum(self):
        program = knapsack_like_program(False)
        solution = program.solve_relaxation()
        assert solution.optimal
        # Put everything on the cheap variable: x = 1, y = 0.5, objective 2.
        assert solution.objective == pytest.approx(2.0)
        assert solution.value("x") == pytest.approx(1.0)
        assert solution.value("y") == pytest.approx(0.5)

    def test_integer_optimum_rounds_up(self):
        program = knapsack_like_program(True)
        solution = program.solve_integer()
        assert solution.optimal
        assert solution.objective == pytest.approx(3.0)
        assert solution.value("x") == pytest.approx(1.0)
        assert solution.value("y") == pytest.approx(1.0)

    def test_equality_constraints(self):
        program = LinearProgram()
        program.add_variable("x", cost=1.0)
        program.add_constraint({"x": 1.0}, "==", 0.25)
        solution = program.solve_relaxation()
        assert solution.value("x") == pytest.approx(0.25)

    def test_infeasible_program_reports_status(self):
        program = LinearProgram()
        program.add_variable("x", cost=1.0, upper=1.0)
        program.add_constraint({"x": 1.0}, ">=", 2.0)
        solution = program.solve_relaxation()
        assert not solution.optimal
        assert solution.status == "infeasible"

    def test_solve_dispatch(self):
        program = knapsack_like_program(True)
        assert program.solve(relaxation=True).objective == pytest.approx(2.0)
        assert program.solve(relaxation=False).objective == pytest.approx(3.0)

    def test_variable_bounds_respected(self):
        program = LinearProgram()
        program.add_variable("x", cost=-1.0, lower=0.0, upper=0.7)
        solution = program.solve_relaxation()
        assert solution.value("x") == pytest.approx(0.7)
