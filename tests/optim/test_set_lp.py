"""Tests for the set-constraint LP and its ℓ_max rounding (Theorem 6)."""

from __future__ import annotations

import pytest

from repro.exceptions import RequirementError
from repro.optim import build_set_program, solve_exact_ip, solve_set_lp
from repro.workloads import example5_problem, random_problem


class TestProgram:
    def test_requires_set_constraints(self, small_cardinality_problem):
        with pytest.raises(RequirementError):
            build_set_program(small_cardinality_problem)

    def test_relaxation_lower_bounds_optimum(self, small_set_problem):
        lp = build_set_program(small_set_problem).solve_relaxation()
        optimum = solve_exact_ip(small_set_problem).cost()
        assert lp.optimal
        assert lp.objective <= optimum + 1e-6

    def test_integer_program_matches_exact_enumeration(self, small_set_problem):
        from repro.optim import solve_exact_enumeration

        ip_cost = solve_exact_ip(small_set_problem).cost()
        enum_cost = solve_exact_enumeration(small_set_problem).cost()
        assert ip_cost == pytest.approx(enum_cost)


class TestRounding:
    def test_solution_is_feasible(self, small_set_problem):
        solution = solve_set_lp(small_set_problem)
        small_set_problem.validate_solution(solution)
        assert solution.meta["method"] == "set_lp"

    def test_lmax_guarantee_holds(self, small_set_problem):
        solution = solve_set_lp(small_set_problem)
        optimum = solve_exact_ip(small_set_problem).cost()
        assert solution.cost() <= small_set_problem.lmax * optimum + 1e-6

    def test_lmax_guarantee_on_example5(self):
        problem = example5_problem(6)
        solution = solve_set_lp(problem)
        optimum = solve_exact_ip(problem).cost()
        assert solution.cost() <= problem.lmax * optimum + 1e-6

    def test_rejects_cardinality_instances(self, small_cardinality_problem):
        with pytest.raises(RequirementError):
            solve_set_lp(small_cardinality_problem)

    def test_random_instances_stay_feasible(self):
        for seed in range(4):
            problem = random_problem(n_modules=10, kind="set", seed=seed)
            solution = solve_set_lp(problem)
            problem.validate_solution(solution)
