"""Tests for the general-workflow LP with privatization (Section 5.2)."""

from __future__ import annotations

import pytest

from repro.core import SecureViewProblem, SetRequirement, SetRequirementList
from repro.exceptions import RequirementError, SolverError
from repro.optim import (
    build_general_set_program,
    solve_exact_ip,
    solve_general_lp,
)
from repro.workloads import example7_chain, random_problem


@pytest.fixture
def example7_problem() -> SecureViewProblem:
    workflow = example7_chain(2)
    requirements = {
        "m_mid": SetRequirementList(
            "m_mid",
            [
                SetRequirement(frozenset({"x0", "x1"}), frozenset()),
                SetRequirement(frozenset(), frozenset({"y0", "y1"})),
            ],
        )
    }
    return SecureViewProblem(workflow, gamma=4, requirements=requirements)


class TestProgram:
    def test_requires_set_constraints(self, small_cardinality_problem):
        with pytest.raises(RequirementError):
            build_general_set_program(small_cardinality_problem)

    def test_privatization_variables_present(self, example7_problem):
        built = build_general_set_program(example7_problem)
        assert built.program.has_variable("w::m_head")
        assert built.program.has_variable("w::m_tail")

    def test_relaxation_lower_bounds_optimum(self, example7_problem):
        lp = build_general_set_program(example7_problem).solve_relaxation()
        optimum = solve_exact_ip(example7_problem).cost()
        assert lp.objective <= optimum + 1e-6


class TestSolve:
    def test_solution_is_feasible_and_privatizes(self, example7_problem):
        solution = solve_general_lp(example7_problem)
        example7_problem.validate_solution(solution)
        # Whatever side was hidden, its public neighbour must be privatized.
        assert solution.privatized_modules

    def test_lmax_guarantee(self, example7_problem):
        solution = solve_general_lp(example7_problem)
        optimum = solve_exact_ip(example7_problem).cost()
        assert solution.cost() <= example7_problem.lmax * optimum + 1e-6

    def test_exact_accounts_for_privatization_costs(self, example7_problem):
        solution = solve_exact_ip(example7_problem)
        # Hiding two attributes (cost 2) plus privatizing one public module.
        workflow = example7_problem.workflow
        expected_minimum = 2.0 + min(
            workflow.module("m_head").privatization_cost,
            workflow.module("m_tail").privatization_cost,
        )
        assert solution.cost() == pytest.approx(expected_minimum)

    def test_cardinality_instances_fall_back_to_rounding(self):
        problem = random_problem(
            n_modules=8, kind="cardinality", seed=41, private_fraction=0.5
        )
        solution = solve_general_lp(problem, seed=0)
        problem.validate_solution(solution)

    def test_privatization_disallowed_raises(self):
        workflow = example7_chain(2)
        requirements = {
            "m_mid": SetRequirementList(
                "m_mid", [SetRequirement(frozenset({"x0"}), frozenset())]
            )
        }
        problem = SecureViewProblem(
            workflow, gamma=2, requirements=requirements, allow_privatization=False
        )
        with pytest.raises(SolverError):
            solve_general_lp(problem)

    def test_random_mixed_instances_feasible(self):
        for seed in range(3):
            problem = random_problem(
                n_modules=10, kind="set", seed=seed, private_fraction=0.5
            )
            solution = solve_general_lp(problem)
            problem.validate_solution(solution)
