"""Tests for the exact solvers (IP and enumeration)."""

from __future__ import annotations

import pytest

from repro.core import SecureViewProblem, SetRequirement, SetRequirementList
from repro.exceptions import InfeasibleError, SolverError
from repro.optim import (
    exact_optimum_cost,
    solve_exact_enumeration,
    solve_exact_ip,
)
from repro.workloads import figure1_workflow, random_problem


class TestExactIP:
    def test_feasible_and_minimal_on_figure1(self, figure1_problem):
        solution = solve_exact_ip(figure1_problem)
        figure1_problem.validate_solution(solution)
        # Γ=2 on Figure 1 can be met by hiding one attribute per module at
        # most; with sharing the optimum is at most 3 and at least 1.
        assert 1.0 <= solution.cost() <= 3.0

    def test_matches_enumeration_on_set_instances(self):
        for seed in range(4):
            problem = random_problem(n_modules=8, kind="set", seed=seed)
            assert solve_exact_ip(problem).cost() == pytest.approx(
                solve_exact_enumeration(problem).cost()
            )

    def test_matches_enumeration_on_cardinality_instances(self):
        for seed in range(3):
            problem = random_problem(n_modules=6, kind="cardinality", seed=seed)
            assert solve_exact_ip(problem).cost() == pytest.approx(
                solve_exact_enumeration(problem).cost()
            )

    def test_exact_optimum_cost_wrapper(self, small_set_problem):
        assert exact_optimum_cost(small_set_problem) == pytest.approx(
            solve_exact_ip(small_set_problem).cost()
        )

    def test_infeasible_instance_raises(self):
        workflow = figure1_workflow()
        problem = SecureViewProblem(
            workflow,
            2,
            {
                "m1": SetRequirementList(
                    "m1", [SetRequirement(frozenset({"a1"}), frozenset())]
                )
            },
            hidable_attributes=frozenset({"a7"}),
        )
        with pytest.raises(InfeasibleError):
            solve_exact_ip(problem)

    def test_exact_is_lower_bound_for_heuristics(self, small_cardinality_problem):
        from repro.optim import solve_cardinality_rounding, solve_greedy

        optimum = solve_exact_ip(small_cardinality_problem).cost()
        assert optimum <= solve_greedy(small_cardinality_problem).cost() + 1e-6
        assert (
            optimum
            <= solve_cardinality_rounding(small_cardinality_problem, seed=0).cost()
            + 1e-6
        )


class TestExactEnumeration:
    def test_enumeration_limit_guard(self):
        problem = random_problem(n_modules=12, kind="cardinality", seed=5)
        with pytest.raises(SolverError):
            solve_exact_enumeration(problem, max_combinations=2)

    def test_infeasible_option_detected(self):
        workflow = figure1_workflow()
        problem = SecureViewProblem(
            workflow,
            2,
            {
                "m1": SetRequirementList(
                    "m1", [SetRequirement(frozenset({"a1"}), frozenset())]
                )
            },
            hidable_attributes=frozenset({"a7"}),
        )
        with pytest.raises(InfeasibleError):
            solve_exact_enumeration(problem)

    def test_solution_meta_method(self, small_set_problem):
        solution = solve_exact_enumeration(small_set_problem)
        assert solution.meta["method"] == "exact_enumeration"
