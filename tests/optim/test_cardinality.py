"""Tests for the Figure-3 LP/IP and Algorithm-1 rounding (Theorem 5)."""

from __future__ import annotations

import pytest

from repro.core import SecureViewProblem
from repro.exceptions import RequirementError
from repro.optim import (
    STRENGTH_FULL,
    STRENGTH_NO_CAP,
    STRENGTH_NO_SUM,
    build_cardinality_program,
    cheapest_fallback_set,
    expected_rounding_cost,
    solve_cardinality_rounding,
    solve_exact_ip,
)
from repro.workloads import random_problem


@pytest.fixture
def problem() -> SecureViewProblem:
    return random_problem(n_modules=10, kind="cardinality", seed=23)


class TestProgramConstruction:
    def test_requires_cardinality_constraints(self, small_set_problem):
        with pytest.raises(RequirementError):
            build_cardinality_program(small_set_problem)

    def test_variables_cover_attributes_and_options(self, problem):
        built = build_cardinality_program(problem)
        n_attrs = len(problem.workflow.attribute_names)
        assert built.program.num_variables > n_attrs
        for name in problem.workflow.attribute_names:
            assert built.program.has_variable(f"x::{name}")

    def test_relaxation_lower_bounds_integer_program(self, problem):
        built = build_cardinality_program(problem)
        lp = built.solve_relaxation()
        built_ip = build_cardinality_program(problem, integral=True)
        ip = built_ip.solve_integer()
        assert lp.optimal and ip.optimal
        assert lp.objective <= ip.objective + 1e-6

    def test_weakened_lp_is_cheaper_or_equal(self, problem):
        full = build_cardinality_program(problem, strength=STRENGTH_FULL)
        weak = build_cardinality_program(problem, strength=STRENGTH_NO_CAP)
        nosum = build_cardinality_program(problem, strength=STRENGTH_NO_SUM)
        v_full = full.solve_relaxation().objective
        v_weak = weak.solve_relaxation().objective
        v_nosum = nosum.solve_relaxation().objective
        assert v_weak <= v_full + 1e-6
        assert v_nosum <= v_full + 1e-6

    def test_unknown_strength_rejected(self, problem):
        from repro.exceptions import SolverError

        with pytest.raises(SolverError):
            build_cardinality_program(problem, strength="bogus")

    def test_hidden_extraction_threshold(self, problem):
        built = build_cardinality_program(problem, integral=True)
        solution = built.solve_integer()
        hidden = built.hidden_from_solution(solution)
        assert hidden <= set(problem.workflow.attribute_names)
        assert all(
            problem.requirement_satisfied(name, hidden)
            for name in problem.requirements
        )


class TestFallbackSet:
    def test_fallback_satisfies_module(self, problem):
        for module_name in problem.requirements:
            fallback = cheapest_fallback_set(problem, module_name)
            assert problem.requirement_satisfied(module_name, fallback)

    def test_fallback_requires_cardinality(self, small_set_problem):
        with pytest.raises(RequirementError):
            cheapest_fallback_set(
                small_set_problem, next(iter(small_set_problem.requirements))
            )


class TestRounding:
    def test_rounded_solution_is_feasible(self, problem):
        solution = solve_cardinality_rounding(problem, seed=0)
        problem.validate_solution(solution)
        assert solution.meta["method"] == "lp_rounding"

    def test_rounding_deterministic_given_seed(self, problem):
        first = solve_cardinality_rounding(problem, seed=5)
        second = solve_cardinality_rounding(problem, seed=5)
        assert first.hidden_attributes == second.hidden_attributes

    def test_rounding_cost_close_to_optimum_on_small_instances(self, problem):
        optimum = solve_exact_ip(problem).cost()
        costs = [
            solve_cardinality_rounding(problem, seed=seed).cost() for seed in range(5)
        ]
        assert min(costs) <= 4 * optimum  # far below the 16 log n analysis bound

    def test_rounding_meta_records_lp_objective(self, problem):
        solution = solve_cardinality_rounding(problem, seed=1)
        optimum = solve_exact_ip(problem).cost()
        assert solution.meta["lp_objective"] <= optimum + 1e-6

    def test_small_scale_constant_still_feasible(self, problem):
        # Even with scale 0 every module is repaired via its fallback set.
        solution = solve_cardinality_rounding(problem, seed=0, scale=0.0)
        problem.validate_solution(solution)
        assert len(solution.meta["repaired_modules"]) == len(problem.requirements)

    def test_expected_rounding_cost_averages(self, problem):
        value = expected_rounding_cost(problem, seeds=range(3))
        assert value > 0

    def test_set_constraints_rejected(self, small_set_problem):
        with pytest.raises(RequirementError):
            solve_cardinality_rounding(small_set_problem)

    def test_rounding_on_mixed_workflow_privatizes(self):
        problem = random_problem(
            n_modules=8, kind="cardinality", seed=31, private_fraction=0.6
        )
        solution = solve_cardinality_rounding(problem, seed=2)
        problem.validate_solution(solution)
        assert solution.privatized_modules == problem.required_privatizations(
            solution.hidden_attributes
        )
