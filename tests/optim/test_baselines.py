"""Tests for the trivial baselines."""

from __future__ import annotations

import pytest

from repro.core import SecureViewProblem, SetRequirement, SetRequirementList
from repro.exceptions import InfeasibleError
from repro.optim import (
    hide_all_intermediate,
    hide_everything,
    random_feasible,
    solve_exact_ip,
)
from repro.workloads import figure1_workflow


class TestHideEverything:
    def test_feasible_and_upper_bounds_optimum(self, small_set_problem):
        solution = hide_everything(small_set_problem)
        small_set_problem.validate_solution(solution)
        assert solution.cost() >= solve_exact_ip(small_set_problem).cost() - 1e-6

    def test_infeasible_when_hidable_set_too_small(self):
        workflow = figure1_workflow()
        problem = SecureViewProblem(
            workflow,
            2,
            {
                "m1": SetRequirementList(
                    "m1", [SetRequirement(frozenset({"a1"}), frozenset())]
                )
            },
            hidable_attributes=frozenset({"a7"}),
        )
        with pytest.raises(InfeasibleError):
            hide_everything(problem)


class TestHideAllIntermediate:
    def test_feasible_when_requirements_live_on_intermediate_data(self):
        workflow = figure1_workflow()
        problem = SecureViewProblem(
            workflow,
            2,
            {
                "m1": SetRequirementList(
                    "m1", [SetRequirement(frozenset(), frozenset({"a4"}))]
                ),
                "m2": SetRequirementList(
                    "m2", [SetRequirement(frozenset({"a3"}), frozenset())]
                ),
            },
        )
        solution = hide_all_intermediate(problem)
        problem.validate_solution(solution)
        assert solution.hidden_attributes <= set(workflow.intermediate_attributes)

    def test_infeasible_when_final_output_needed(self):
        workflow = figure1_workflow()
        problem = SecureViewProblem(
            workflow,
            2,
            {
                "m2": SetRequirementList(
                    "m2", [SetRequirement(frozenset(), frozenset({"a6"}))]
                )
            },
        )
        with pytest.raises(InfeasibleError):
            hide_all_intermediate(problem)


class TestRandomFeasible:
    def test_feasible_and_deterministic_per_seed(self, small_cardinality_problem):
        first = random_feasible(small_cardinality_problem, seed=3)
        second = random_feasible(small_cardinality_problem, seed=3)
        small_cardinality_problem.validate_solution(first)
        assert first.hidden_attributes == second.hidden_attributes

    def test_varies_across_seeds(self, small_cardinality_problem):
        solutions = {
            random_feasible(small_cardinality_problem, seed=seed).hidden_attributes
            for seed in range(6)
        }
        assert len(solutions) > 1

    def test_never_cheaper_than_optimum(self, small_set_problem):
        optimum = solve_exact_ip(small_set_problem).cost()
        for seed in range(4):
            assert (
                random_feasible(small_set_problem, seed=seed).cost() >= optimum - 1e-6
            )
