"""Tests for the local-search post-processing passes."""

from __future__ import annotations

import pytest

from repro.optim import (
    hide_everything,
    improve_solution,
    prune_solution,
    solve_exact_ip,
    solve_greedy,
    solve_with_local_search,
    swap_options,
)
from repro.workloads import example5_problem, random_problem


class TestPrune:
    def test_prunes_hide_everything_down(self, small_set_problem):
        bloated = hide_everything(small_set_problem)
        pruned = prune_solution(small_set_problem, bloated)
        small_set_problem.validate_solution(pruned)
        assert pruned.cost() <= bloated.cost()
        assert len(pruned.hidden_attributes) < len(bloated.hidden_attributes)

    def test_never_breaks_feasibility(self, small_cardinality_problem):
        base = solve_greedy(small_cardinality_problem)
        pruned = prune_solution(small_cardinality_problem, base)
        small_cardinality_problem.validate_solution(pruned)

    def test_optimal_solution_unchanged(self, small_set_problem):
        optimum = solve_exact_ip(small_set_problem)
        pruned = prune_solution(small_set_problem, optimum)
        assert pruned.cost() == pytest.approx(optimum.cost())


class TestSwap:
    def test_swap_improves_example5_greedy(self):
        problem = example5_problem(8)
        greedy = solve_greedy(problem)
        swapped = swap_options(problem, greedy)
        problem.validate_solution(swapped)
        # Greedy pays n+1; swapping in the shared a2 option collapses it to 2+eps.
        assert swapped.cost() < greedy.cost()
        assert swapped.cost() == pytest.approx(solve_exact_ip(problem).cost())

    def test_swap_never_worsens(self, small_cardinality_problem):
        base = solve_greedy(small_cardinality_problem)
        swapped = swap_options(small_cardinality_problem, base)
        assert swapped.cost() <= base.cost() + 1e-9


class TestImproveAndSolver:
    def test_improve_runs_both_passes(self, small_set_problem):
        base = hide_everything(small_set_problem)
        improved = improve_solution(small_set_problem, base)
        assert improved.cost() <= base.cost()
        assert improved.meta["local_search"] in {"pruned", "swapped"}

    def test_unknown_pass_rejected(self, small_set_problem):
        base = solve_greedy(small_set_problem)
        with pytest.raises(ValueError):
            improve_solution(small_set_problem, base, passes=("polish",))

    def test_solver_entry_point(self, small_cardinality_problem):
        solution = solve_with_local_search(
            small_cardinality_problem, method="greedy"
        )
        small_cardinality_problem.validate_solution(solution)
        assert solution.meta["base_method"] == "greedy"
        assert solution.cost() <= solution.meta["base_cost"] + 1e-9

    def test_dispatcher_name(self, small_cardinality_problem):
        # The dispatcher accepts the registered name directly.
        from repro.optim import solve_secure_view

        solution = solve_secure_view(small_cardinality_problem, method="local_search")
        small_cardinality_problem.validate_solution(solution)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_local_search_closes_part_of_the_greedy_gap(self, seed):
        problem = random_problem(n_modules=10, kind="set", seed=seed)
        greedy = solve_greedy(problem)
        improved = improve_solution(problem, greedy)
        optimum = solve_exact_ip(problem).cost()
        assert optimum - 1e-6 <= improved.cost() <= greedy.cost() + 1e-9
