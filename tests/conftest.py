"""Shared fixtures: the paper's running example and a few small instances."""

from __future__ import annotations

import pytest

from repro.core import Module, SecureViewProblem, Workflow, boolean_attributes
from repro.workloads import (
    example5_problem,
    figure1_m1_module,
    figure1_workflow,
    random_problem,
)


@pytest.fixture
def m1() -> Module:
    """The Figure-1 top module m1 (2 boolean inputs, 3 boolean outputs)."""
    return figure1_m1_module()


@pytest.fixture
def figure1() -> Workflow:
    """The full Figure-1 workflow (m1, m2, m3 over a1..a7)."""
    return figure1_workflow()


@pytest.fixture
def figure1_problem(figure1: Workflow) -> SecureViewProblem:
    """Figure-1 Secure-View instance with set constraints derived at Γ=2."""
    return SecureViewProblem.from_standalone_analysis(figure1, gamma=2, kind="set")


@pytest.fixture
def example5() -> SecureViewProblem:
    """The Example-5 star instance with n=5 middle modules."""
    return example5_problem(5)


@pytest.fixture
def small_cardinality_problem() -> SecureViewProblem:
    """A small random cardinality-constraint instance (8 modules)."""
    return random_problem(n_modules=8, kind="cardinality", seed=11)


@pytest.fixture
def small_set_problem() -> SecureViewProblem:
    """A small random set-constraint instance (8 modules)."""
    return random_problem(n_modules=8, kind="set", seed=13)


@pytest.fixture
def mixed_problem() -> SecureViewProblem:
    """A small instance with both private and public modules."""
    return random_problem(
        n_modules=8, kind="set", seed=17, private_fraction=0.6
    )


@pytest.fixture
def tiny_chain() -> Workflow:
    """A 2-module chain over 2-bit data, small enough for brute-force worlds."""
    a0, a1, b0, b1, c0 = boolean_attributes(["a0", "a1", "b0", "b1", "c0"])

    def swap(x):
        return {"b0": x["a1"], "b1": x["a0"]}

    def parity(x):
        return {"c0": x["b0"] ^ x["b1"]}

    first = Module("first", [a0, a1], [b0, b1], swap)
    second = Module("second", [b0, b1], [c0], parity)
    return Workflow([first, second], name="tiny_chain")
