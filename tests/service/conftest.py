"""Shared fixtures for the solve-service tests.

The concurrency tests are deterministic by construction: blocking solvers
gate on :class:`threading.Event`, attachment is sequenced through
``RequestCoalescer.await_waiters`` (condition-based, no polling), and drain
ordering goes through ``SolveService.drain_started`` — no ``sleep`` calls
anywhere.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import Workflow
from repro.engine.registry import SolverRegistry, default_registry
from repro.workloads import figure1_workflow, random_total_module, workflow_to_dict


class Blocker:
    """A registry whose one solver blocks until the test releases it."""

    def __init__(self) -> None:
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()
        self.registry = SolverRegistry()

        @self.registry.register("blocker", summary="test solver that blocks")
        def blocker(problem):
            with self._lock:
                self.calls += 1
            self.started.set()
            assert self.release.wait(30), "test never released the blocking solver"
            return default_registry().get("exact").fn(problem)


@pytest.fixture
def blocker() -> Blocker:
    return Blocker()


@pytest.fixture
def figure1_payload() -> dict:
    return workflow_to_dict(figure1_workflow())


@pytest.fixture
def overlapping_payloads() -> tuple[dict, dict]:
    """Two workflows sharing one module by content (the module tier's unit)."""
    shared = random_total_module(7, 2, 2, "shared", "s_")
    left = Workflow(
        [shared, random_total_module(11, 2, 2, "left", "l_")], name="left-wf"
    )
    right = Workflow(
        [shared, random_total_module(13, 2, 2, "right", "r_")], name="right-wf"
    )
    return workflow_to_dict(left), workflow_to_dict(right)
