"""End-to-end tests over real HTTP: routes, error mapping, shutdown."""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.service import (
    ServiceClient,
    ServiceClientError,
    ServiceServer,
    SolveService,
)
from repro.workloads import figure1_workflow
from repro.workloads.serialization import problem_to_dict
from repro.core import SecureViewProblem


@pytest.fixture
def served():
    """A running server on an ephemeral port, stopped after the test."""
    service = SolveService(workers=2, default_timeout=30)
    server = ServiceServer(service, port=0).start()
    try:
        yield service, server, ServiceClient(server.url, timeout=30)
    finally:
        server.stop(drain_timeout=30)


class TestRoutes:
    def test_healthz_and_metrics(self, served):
        _, _, client = served
        health = client.healthz()
        assert health["status"] == "ok" and health["in_flight"] == 0
        metrics = client.metrics()
        assert metrics["requests"]["healthz"] == 1
        assert metrics["workers"] == 2
        assert "cache" in metrics and "coalesced" in metrics

    def test_solve_roundtrip_with_workflow_object(self, served):
        _, _, client = served
        record = client.solve(
            workflow=figure1_workflow(), gamma=2, kind="set",
            solver="exact", verify=True,
        )
        assert record["cost"] == 3.0
        assert record["verified"] is True
        assert record["resolved_solver"] == "exact"

    def test_solve_roundtrip_with_problem_object(self, served):
        _, _, client = served
        problem = SecureViewProblem.from_standalone_analysis(
            figure1_workflow(), 2, kind="set"
        )
        record = client.solve(problem=problem_to_dict(problem), solver="exact")
        assert record["cost"] == 3.0

    def test_sweep_roundtrip(self, served):
        _, _, client = served
        report = client.sweep(
            workflows=[figure1_workflow()], solvers=["exact", "greedy"]
        )
        assert report["cells"] == 2 and report["errors"] == 0


class TestV1Surface:
    """The versioned API: /v1 routes, legacy aliases, version, keep-alive."""

    def _get(self, url: str):
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, dict(response.headers), json.loads(
                response.read().decode("utf-8")
            )

    def test_v1_and_legacy_routes_answer_identically(self, served):
        _, server, _ = served
        status_v1, headers_v1, body_v1 = self._get(f"{server.url}/v1/healthz")
        status_legacy, headers_legacy, body_legacy = self._get(
            f"{server.url}/healthz"
        )
        assert status_v1 == status_legacy == 200
        # uptime ticks between the two calls; everything else is identical.
        body_v1.pop("uptime_seconds"), body_legacy.pop("uptime_seconds")
        assert body_v1 == body_legacy

    def test_legacy_alias_answers_deprecation_header(self, served):
        _, server, _ = served
        _, headers, _ = self._get(f"{server.url}/healthz")
        assert headers.get("Deprecation") == "true"
        assert "/v1/healthz" in headers.get("Link", "")
        _, headers_v1, _ = self._get(f"{server.url}/v1/healthz")
        assert "Deprecation" not in headers_v1

    def test_version_reports_package_api_and_store_formats(self, served, tmp_path):
        _, _, client = served
        payload = client.version()
        from repro import __version__

        assert payload["package"] == __version__
        assert payload["api"] == "v1"
        assert payload["store"] is None  # in-memory service
        stored = SolveService(workers=1, store=str(tmp_path / "store"))
        server = ServiceServer(stored, port=0).start()
        try:
            stored_version = ServiceClient(server.url, timeout=30).version()
            block = stored_version["store"]
            assert block["format_version"] == 2
            assert 2 in block["supported_format_versions"]
        finally:
            server.stop(drain_timeout=30)

    def test_client_negotiates_legacy_base_path(self, served):
        _, server, _ = served
        client = ServiceClient(server.url, timeout=30)
        assert client._negotiated_base() == "/v1"
        # A pre-v1 server 404s the probe; the client falls back to the
        # unprefixed routes and keeps working.
        legacy = ServiceClient(server.url, timeout=30)
        legacy._base_path = ""
        assert legacy.healthz()["status"] == "ok"

    def test_keep_alive_reuses_one_connection(self, served):
        _, server, client = served
        client.healthz()
        sock = client._local.conn.sock
        assert sock is not None
        client.metrics()
        client.version()
        assert client._local.conn.sock is sock  # same socket across calls

    def test_error_envelope_carries_type_message_status(self, served):
        _, _, client = served
        with pytest.raises(ServiceClientError) as excinfo:
            client.request("GET", "/no-such-route")
        assert excinfo.value.status == 404
        assert excinfo.value.error_type == "ServiceError"
        envelope = excinfo.value.payload["error"]
        assert envelope["status"] == 404 and "no such path" in envelope["message"]

    def test_client_parses_legacy_flat_error_bodies(self):
        from repro.service.client import _error_details

        message, error_type = _error_details(
            {"error": "service is draining", "status": 503}, "fallback"
        )
        assert message == "service is draining" and error_type is None
        message, error_type = _error_details(
            {"error": {"type": "ServiceTimeout", "message": "too slow",
                       "status": 504}},
            "fallback",
        )
        assert message == "too slow" and error_type == "ServiceTimeout"
        assert _error_details({}, "fallback") == ("fallback", None)


class TestErrorMapping:
    def test_malformed_json_body_is_400(self, served):
        _, server, client = served
        with pytest.raises(ServiceClientError) as excinfo:
            client.request("POST", "/solve", payload=None)  # empty body
        assert excinfo.value.status == 400
        request = urllib.request.Request(
            f"{server.url}/solve",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as http_error:
            urllib.request.urlopen(request, timeout=30)
        assert http_error.value.code == 400
        envelope = json.loads(http_error.value.read())["error"]
        assert "not valid JSON" in envelope["message"]
        assert envelope["type"] == "ServiceError"
        assert envelope["status"] == 400

    def test_invalid_payload_is_400_with_reason(self, served):
        _, _, client = served
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit({"workflow": {"modules": []}, "gamma": "two"})
        assert excinfo.value.status == 400
        assert "gamma" in str(excinfo.value)

    def test_unknown_solver_is_422(self, served):
        _, _, client = served
        with pytest.raises(ServiceClientError) as excinfo:
            client.solve(workflow=figure1_workflow(), gamma=2, solver="no-such")
        assert excinfo.value.status == 422

    def test_unknown_path_is_404(self, served):
        _, _, client = served
        with pytest.raises(ServiceClientError) as excinfo:
            client.request("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceClientError) as post_excinfo:
            client.request("POST", "/healthz", {})
        assert post_excinfo.value.status == 404

    def test_error_cells_serialize_as_strict_json(self, served, figure1_payload):
        """Partial-failure sweep reports must parse under RFC 8259 rules."""
        _, server, _ = served
        request = urllib.request.Request(
            f"{server.url}/sweep",
            data=json.dumps(
                {"workflows": [figure1_payload], "solvers": ["no-such-solver"]}
            ).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            raw = response.read()
        assert b"Infinity" not in raw and b"NaN" not in raw

        def _reject_constants(token: str) -> None:
            raise AssertionError(f"non-RFC JSON constant {token!r} in response")

        report = json.loads(raw.decode("utf-8"), parse_constant=_reject_constants)
        assert report["errors"] == 1
        assert report["records"][0]["cost"] is None

    def test_client_socket_timeout_is_a_controlled_error(
        self, blocker, figure1_payload
    ):
        """A response slower than the client deadline must not traceback."""
        service = SolveService(workers=1, registry=blocker.registry, default_timeout=30)
        server = ServiceServer(service, port=0).start()
        try:
            impatient = ServiceClient(server.url, timeout=0.2)
            with pytest.raises(ServiceClientError) as excinfo:
                # No request-level timeout: the server would hold the
                # connection for its 30s default, far past the socket
                # deadline.
                impatient.submit(
                    {"workflow": figure1_payload, "gamma": 2, "solver": "blocker"}
                )
            assert excinfo.value.status == 0
            assert "timed out" in str(excinfo.value)
        finally:
            blocker.release.set()
            server.stop(drain_timeout=30)

    def test_timeout_is_504(self, blocker, figure1_payload):
        service = SolveService(workers=1, registry=blocker.registry, default_timeout=30)
        server = ServiceServer(service, port=0).start()
        try:
            client = ServiceClient(server.url, timeout=30)
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit(
                    {"workflow": figure1_payload, "gamma": 2,
                     "solver": "blocker", "timeout": 0.05}
                )
            assert excinfo.value.status == 504
        finally:
            blocker.release.set()
            server.stop(drain_timeout=30)


class TestJobRoutes:
    def test_async_sweep_roundtrip(self, served, figure1_payload):
        _, server, client = served
        # 202 on the wire: accepted, not done.
        request = urllib.request.Request(
            f"{server.url}/jobs/sweep",
            data=json.dumps(
                {"workflows": [figure1_payload], "solvers": ["exact", "greedy"]}
            ).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 202
            handle = json.loads(response.read().decode("utf-8"))
        assert handle["cells"] == 2

        snapshots: list[dict] = []
        final = client.wait_job(handle["job"], timeout=30, poll=0.02,
                                on_progress=snapshots.append)
        assert final["state"] == "done"
        assert final["completed"] == 2 and final["failed"] == 0
        assert [r["index"] for r in final["records"]] == [0, 1]
        assert snapshots[-1] == final
        listed = client.jobs()
        assert handle["job"] in [job["job"] for job in listed]
        metrics = client.metrics()
        assert metrics["jobs"]["submitted"] == 1
        assert metrics["jobs"]["done"] == 1
        assert metrics["jobs"]["cells"]["completed"] == 2
        assert metrics["requests"]["jobs"] >= 2
        assert "maintenance" in metrics

    def test_cancel_over_http(self, blocker, figure1_payload):
        service = SolveService(workers=1, registry=blocker.registry,
                               default_timeout=30)
        server = ServiceServer(service, port=0).start()
        try:
            client = ServiceClient(server.url, timeout=30)
            handle = client.sweep_async(
                workflows=[figure1_payload], gammas=[2, 3, 4],
                solvers=["blocker"],
            )
            assert blocker.started.wait(30)
            ack = client.cancel_job(handle["job"])
            assert ack["cancel_requested"] is True
            blocker.release.set()
            final = client.wait_job(handle["job"], timeout=30, poll=0.02)
            assert final["state"] == "cancelled"
            assert final["dropped"] == 2
        finally:
            blocker.release.set()
            server.stop(drain_timeout=30)

    def test_unknown_job_is_404_on_get_and_delete(self, served):
        _, _, client = served
        for method, call in (
            ("GET", lambda: client.job("no-such-job")),
            ("DELETE", lambda: client.cancel_job("no-such-job")),
        ):
            with pytest.raises(ServiceClientError) as excinfo:
                call()
            assert excinfo.value.status == 404, method
        # Nested paths under /jobs/ are malformed, not routable.
        with pytest.raises(ServiceClientError) as excinfo:
            client.request("GET", "/jobs/a/b")
        assert excinfo.value.status == 404

    def test_malformed_grid_is_400_not_a_job(self, served):
        _, _, client = served
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit_sweep_job({"workflows": "nope"})
        assert excinfo.value.status == 400
        assert client.jobs() == []


class TestShutdown:
    def test_healthz_reports_draining_with_503(self, blocker, figure1_payload):
        service = SolveService(workers=1, registry=blocker.registry,
                               default_timeout=30)
        server = ServiceServer(service, port=0).start()
        client = ServiceClient(server.url, timeout=30)
        health = client.healthz()
        assert health["status"] == "ok" and health["draining"] is False

        def call() -> None:
            client.submit(
                {"workflow": figure1_payload, "gamma": 2, "solver": "blocker"}
            )

        request_thread = threading.Thread(target=call)
        request_thread.start()
        assert blocker.started.wait(30)
        stopper = threading.Thread(target=server.stop)
        stopper.start()
        assert service.drain_started.wait(30)
        # Mid-drain: the body still answers, but at the status level load
        # balancers see "stop routing here".
        with pytest.raises(ServiceClientError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 503
        assert excinfo.value.payload["status"] == "draining"
        assert excinfo.value.payload["draining"] is True
        blocker.release.set()
        request_thread.join(timeout=30)
        stopper.join(timeout=30)

    def test_shutdown_endpoint_drains_and_stops_the_server(self, figure1_payload):
        service = SolveService(workers=1, default_timeout=30)
        server = ServiceServer(service, port=0).start()
        client = ServiceClient(server.url, timeout=30)
        client.submit({"workflow": figure1_payload, "gamma": 2})
        ack = client.shutdown()
        assert ack["status"] == "shutting down"
        server._thread.join(timeout=30)
        assert not server._thread.is_alive()
        assert service.draining
        # Stopping again is a no-op, not an error.
        assert server.stop(drain_timeout=1)

    def test_stop_during_inflight_work_delivers_the_result(
        self, blocker, figure1_payload
    ):
        service = SolveService(workers=1, registry=blocker.registry, default_timeout=30)
        server = ServiceServer(service, port=0).start()
        client = ServiceClient(server.url, timeout=30)
        outcome: dict = {}

        def call() -> None:
            outcome["record"] = client.submit(
                {"workflow": figure1_payload, "gamma": 2, "solver": "blocker"}
            )

        request_thread = threading.Thread(target=call)
        request_thread.start()
        assert blocker.started.wait(30)

        stopper = threading.Thread(target=server.stop)
        stopper.start()
        assert service.drain_started.wait(30)
        blocker.release.set()
        request_thread.join(timeout=30)
        stopper.join(timeout=30)
        assert outcome["record"]["cost"] > 0
