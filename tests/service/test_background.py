"""Tests for the async job subsystem and the maintenance scheduler.

Deterministic by construction, like the rest of the service tests:
blocking solvers gate on events, progress is sequenced through
``JobManager.await_progress`` (condition-based), and clocks are injected
(``expire(now=...)``) instead of slept on.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine.registry import default_registry
from repro.engine.store import DerivationStore
from repro.service import (
    JOB_STATES,
    TERMINAL_JOB_STATES,
    ServiceError,
    SolveService,
)


def make_service(**kwargs) -> SolveService:
    """A service with background threads quiet unless a test opts in."""
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("default_timeout", 30)
    kwargs.setdefault("maintenance_interval", None)
    return SolveService(**kwargs)


def with_exact(blocker):
    """The blocker's registry plus the real ``exact`` solver.

    A fresh :class:`SolverRegistry` holds only ``blocker``; tests mixing
    blocking and instant cells in one grid need both.
    """
    spec = default_registry().get("exact")
    blocker.registry.register("exact", exact=True, summary=spec.summary)(spec.fn)
    return blocker.registry


class TestJobLifecycle:
    def test_hundred_cell_submit_returns_immediately_then_completes(
        self, figure1_payload
    ):
        """The acceptance bar: a 100-cell job hands back its id in <100 ms."""
        service = make_service()
        grid = {
            "workflows": [figure1_payload],
            "gammas": [2],
            "kinds": ["set"],
            "solvers": ["exact"],
            "seeds": list(range(100)),
        }
        started = time.perf_counter()
        handle = service.jobs.submit(grid)
        submit_seconds = time.perf_counter() - started
        assert submit_seconds < 0.1, f"submit took {submit_seconds * 1e3:.1f} ms"
        assert handle["cells"] == 100
        assert handle["state"] in JOB_STATES

        # Partial progress is observable and monotone while cells land.
        assert service.jobs.await_progress(handle["job"], 10, timeout=30)
        partial = service.jobs.status(handle["job"])
        landed = partial["completed"] + partial["failed"]
        assert 10 <= landed <= 100
        assert [r["index"] for r in partial["records"]] == list(range(landed))

        final = service.jobs.wait(handle["job"], timeout=30)
        assert final["state"] == "done"
        assert final["completed"] == 100 and final["failed"] == 0
        assert final["pending"] == 0 and final["dropped"] == 0
        assert [r["index"] for r in final["records"]] == list(range(100))
        assert final["completed"] >= landed  # progress never regressed
        assert all(r["cost"] == 3.0 for r in final["records"])
        assert service.drain(timeout=30)

    def test_partial_records_while_a_cell_blocks(self, blocker, figure1_payload):
        """Progress shows the finished prefix while later cells still run."""
        service = make_service(workers=1, registry=with_exact(blocker))
        handle = service.jobs.submit(
            {
                "workflows": [figure1_payload],
                "gammas": [2],
                "solvers": ["exact", "blocker"],
            }
        )
        # Cell 0 (exact) lands; cell 1 (blocker) starts and parks.
        assert service.jobs.await_progress(handle["job"], 1, timeout=30)
        assert blocker.started.wait(30)
        partial = service.jobs.status(handle["job"])
        assert partial["state"] == "running"
        assert partial["completed"] == 1 and partial["pending"] == 1
        assert len(partial["records"]) == 1
        assert partial["records"][0]["solver"] == "exact"

        blocker.release.set()
        final = service.jobs.wait(handle["job"], timeout=30)
        assert final["state"] == "done" and final["completed"] == 2
        assert service.drain(timeout=30)

    def test_error_cells_are_isolated_not_fatal(self, figure1_payload):
        service = make_service()
        handle = service.jobs.submit(
            {"workflows": [figure1_payload], "solvers": ["exact", "no-such-solver"]}
        )
        final = service.jobs.wait(handle["job"], timeout=30)
        assert final["state"] == "done"  # the job succeeded; one cell failed
        assert final["completed"] == 1 and final["failed"] == 1
        failed = [r for r in final["records"] if "error" in r]
        assert failed[0]["error_type"] == "SolverError"
        assert failed[0]["cost"] is None
        assert service.drain(timeout=30)

    def test_async_cells_share_the_result_cache_with_sync_traffic(
        self, figure1_payload
    ):
        service = make_service()
        body = {"workflow": figure1_payload, "gamma": 2, "kind": "set",
                "solver": "exact", "seed": 0}
        service.solve_payload(dict(body))
        handle = service.jobs.submit(
            {"workflows": [figure1_payload], "gammas": [2], "kinds": ["set"],
             "solvers": ["exact"], "seeds": [0]}
        )
        final = service.jobs.wait(handle["job"], timeout=30)
        assert final["completed"] == 1
        assert service.metrics()["result_hits"]["memory"] >= 1
        assert service.drain(timeout=30)

    def test_malformed_grid_fails_the_submit_not_the_job(self):
        service = make_service()
        with pytest.raises(ServiceError) as excinfo:
            service.jobs.submit({"workflows": "nope"})
        assert excinfo.value.status == 400
        assert service.jobs.metrics()["submitted"] == 0
        assert service.drain(timeout=30)


class TestCancellation:
    def test_cancel_drops_pending_cells_and_finishes_inflight(
        self, blocker, figure1_payload
    ):
        service = make_service(workers=1, registry=blocker.registry)
        handle = service.jobs.submit(
            {
                "workflows": [figure1_payload],
                "gammas": [2, 3, 4, 5, 6],
                "solvers": ["blocker"],
            }
        )
        assert blocker.started.wait(30)  # cell 0 is in flight (window = 1)
        ack = service.jobs.cancel(handle["job"])
        assert ack["cancel_requested"] is True
        blocker.release.set()
        final = service.jobs.wait(handle["job"], timeout=30)
        assert final["state"] == "cancelled"
        # The in-flight cell finished (its result is cached for whoever
        # asks next); everything still pending was dropped, not run.
        assert len(final["records"]) == 1
        assert final["dropped"] == 4
        assert blocker.calls == 1
        assert service.jobs.metrics()["cells"]["dropped"] == 4
        assert service.drain(timeout=30)

    def test_cancel_finished_job_is_a_reporting_noop(self, figure1_payload):
        service = make_service()
        handle = service.jobs.submit(
            {"workflows": [figure1_payload], "solvers": ["exact"]}
        )
        service.jobs.wait(handle["job"], timeout=30)
        ack = service.jobs.cancel(handle["job"])
        assert ack["state"] == "done"
        assert service.jobs.metrics()["cancelled"] == 0
        assert service.drain(timeout=30)

    def test_drain_cancels_active_jobs(self, blocker, figure1_payload):
        service = make_service(workers=1, registry=blocker.registry)
        handle = service.jobs.submit(
            {
                "workflows": [figure1_payload],
                "gammas": [2, 3, 4],
                "solvers": ["blocker"],
            }
        )
        assert blocker.started.wait(30)
        job = service.jobs._jobs[handle["job"]]
        drained: list[bool] = []
        stopper = threading.Thread(target=lambda: drained.append(service.drain(30)))
        stopper.start()
        # Drain marks the job cancelled before joining it; only then does
        # the test let the in-flight cell finish.
        assert job.cancel.wait(30)
        blocker.release.set()
        stopper.join(30)
        assert drained == [True]
        final = service.jobs.status(handle["job"])
        assert final["state"] == "cancelled"
        assert final["dropped"] == 2

    def test_submit_after_drain_is_503(self, figure1_payload):
        service = make_service()
        assert service.drain(timeout=30)
        with pytest.raises(ServiceError) as excinfo:
            service.jobs.submit({"workflows": [figure1_payload]})
        assert excinfo.value.status == 503


class TestJobTable:
    def test_unknown_job_is_404(self):
        service = make_service()
        for call in (service.jobs.status, service.jobs.cancel):
            with pytest.raises(ServiceError) as excinfo:
                call("no-such-job")
            assert excinfo.value.status == 404
        assert service.drain(timeout=30)

    def test_finished_jobs_expire_after_ttl(self, figure1_payload):
        service = make_service(job_ttl=60.0)
        handle = service.jobs.submit(
            {"workflows": [figure1_payload], "solvers": ["exact"]}
        )
        service.jobs.wait(handle["job"], timeout=30)
        assert service.jobs.expire() == 0  # TTL not reached yet
        assert service.jobs.expire(now=time.monotonic() + 61) == 1
        with pytest.raises(ServiceError) as excinfo:
            service.jobs.status(handle["job"])
        assert excinfo.value.status == 404
        assert service.jobs.metrics()["expired"] == 1
        assert service.drain(timeout=30)

    def test_full_table_evicts_finished_then_refuses_active(
        self, blocker, figure1_payload
    ):
        service = make_service(
            workers=1, registry=with_exact(blocker), max_jobs=1
        )
        done = service.jobs.submit(
            {"workflows": [figure1_payload], "solvers": ["exact"]}
        )
        service.jobs.wait(done["job"], timeout=30)
        # The finished job yields its slot to a new submission...
        active = service.jobs.submit(
            {"workflows": [figure1_payload], "gammas": [2], "solvers": ["blocker"]}
        )
        with pytest.raises(ServiceError):
            service.jobs.status(done["job"])  # evicted
        # ... but an active job never does: the table answers 429.
        assert blocker.started.wait(30)
        with pytest.raises(ServiceError) as excinfo:
            service.jobs.submit(
                {"workflows": [figure1_payload], "solvers": ["exact"]}
            )
        assert excinfo.value.status == 429
        blocker.release.set()
        service.jobs.wait(active["job"], timeout=30)
        assert service.drain(timeout=30)

    def test_list_reports_summaries_without_records(self, figure1_payload):
        service = make_service()
        handle = service.jobs.submit(
            {"workflows": [figure1_payload], "solvers": ["exact"]}
        )
        service.jobs.wait(handle["job"], timeout=30)
        listed = service.jobs.list_jobs()
        assert [job["job"] for job in listed] == [handle["job"]]
        assert "records" not in listed[0]
        assert listed[0]["state"] in TERMINAL_JOB_STATES
        assert service.drain(timeout=30)


class TestMaintenance:
    def test_result_ttl_expiry_counts_and_forgets(self, figure1_payload):
        service = make_service(result_ttl=60.0)
        body = {"workflow": figure1_payload, "gamma": 2, "kind": "set",
                "solver": "exact"}
        service.solve_payload(dict(body))
        assert service.expire_caches() == 0
        # Result + planner entries both age out past the TTL.
        assert service.expire_caches(now=time.monotonic() + 61) == 2
        service.solve_payload(dict(body))  # recomputed, not an error
        assert service.metrics()["result_hits"]["memory"] == 0
        assert service.drain(timeout=30)

    def test_lazy_lookup_also_honors_the_ttl(self, figure1_payload, monkeypatch):
        service = make_service(result_ttl=0.001)
        body = {"workflow": figure1_payload, "gamma": 2, "kind": "set",
                "solver": "exact"}
        first = service.solve_payload(dict(body))
        time.sleep(0.01)  # tiny TTL, not a coordination sleep
        again = service.solve_payload(dict(body))
        assert again["cost"] == first["cost"]
        assert service.metrics()["result_hits"]["memory"] == 0
        assert service.drain(timeout=30)

    def test_gc_task_prunes_store_to_budget(self, tmp_path, figure1_payload):
        store_dir = tmp_path / "store"
        service = make_service(store=str(store_dir), store_max_bytes=0)
        service.solve_payload(
            {"workflow": figure1_payload, "gamma": 2, "kind": "set",
             "solver": "exact"}
        )
        summary = service.maintenance.run_once()
        assert summary["gc_store"]["deleted_files"] > 0
        metrics = service.maintenance.metrics()
        assert metrics["gc_runs"] == 1
        assert metrics["gc_deleted_bytes"] > 0
        assert metrics["runs"] == 1
        assert DerivationStore(store_dir).disk_stats()["files"] == 0
        assert service.drain(timeout=30)

    def test_task_failures_are_isolated_and_counted(self, monkeypatch):
        service = make_service()

        def boom() -> int:
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(service.jobs, "expire", boom)
        summary = service.maintenance.run_once()
        assert "RuntimeError" in summary["expire_jobs"]
        # The failing task neither killed the pass nor the other tasks.
        assert summary["expire_results"] == 0
        metrics = service.maintenance.metrics()
        assert metrics["task_failures"]["expire_jobs"] == 1
        assert metrics["runs"] == 1
        assert service.maintenance.run_once()  # still alive
        assert service.drain(timeout=30)

    def test_intervals_are_jittered(self):
        service = make_service()
        scheduler = service.maintenance
        scheduler.interval = 10.0
        delays = {scheduler._delay() for _ in range(32)}
        assert all(9.0 <= delay <= 11.0 for delay in delays)
        assert len(delays) > 1  # not a fixed cadence
        assert service.drain(timeout=30)

    def test_maintenance_thread_runs_and_stops_cleanly(self, figure1_payload):
        service = make_service(maintenance_interval=0.05)
        try:
            deadline = time.monotonic() + 10
            while service.maintenance.metrics()["runs"] == 0:
                assert time.monotonic() < deadline, "no maintenance pass ran"
                time.sleep(0.01)
        finally:
            assert service.drain(timeout=30)
        runs = service.maintenance.metrics()["runs"]
        time.sleep(0.15)  # would cover ~3 more passes if the thread leaked
        assert service.maintenance.metrics()["runs"] == runs


class TestPopularityAndWarmup:
    def test_popularity_persists_through_the_store_meta_tier(
        self, tmp_path, figure1_payload
    ):
        store_dir = str(tmp_path / "store")
        service = make_service(store=store_dir)
        body = {"workflow": figure1_payload, "gamma": 2, "kind": "set",
                "solver": "exact"}
        first = service.solve_payload(dict(body))
        service.solve_payload(dict(body))  # result-cache hit still counts
        assert service.drain(timeout=30)  # drain flushes pending popularity

        store = DerivationStore(store_dir)
        fingerprint = first["fingerprint"]
        assert store.popularity(fingerprint) == 2
        popular = store.popular_workflows(5)
        assert [entry[0] for entry in popular] == [fingerprint]
        assert popular[0][2]["name"] == figure1_payload["name"]
        points = store.stored_requirement_points(fingerprint)
        assert [(gamma, kind) for gamma, kind, _backend in points] == [(2, "set")]
        # Bumps accumulate across service lifetimes.
        store.bump_popularity(fingerprint, 3)
        assert store.popularity(fingerprint) == 5

    def test_restarted_service_with_warmup_compiles_before_first_request(
        self, tmp_path, figure1_payload
    ):
        """The acceptance bar: first solve of a popular fingerprint after a
        warm restart reports ``compile_hits > 0`` (no request-path compile)."""
        store_dir = str(tmp_path / "store")
        first = make_service(store=store_dir)
        first.solve_payload(
            {"workflow": figure1_payload, "gamma": 2, "kind": "set",
             "solver": "exact"}
        )
        assert first.drain(timeout=30)

        second = make_service(store=store_dir, warmup=3)
        assert second.maintenance.metrics()["warmed_packs"] == 1
        # verify=True is a *different* result key (no stored result to
        # short-circuit), so this exercises the compile path for real —
        # and hits the pack warm-up preloaded.
        record = second.solve_payload(
            {"workflow": figure1_payload, "gamma": 2, "kind": "set",
             "solver": "exact", "verify": True}
        )
        assert record["from_store"] is False
        assert record["verified"] is True
        assert record["cache"]["compile_hits"] > 0
        assert record["cache"]["compile_misses"] == 0
        assert record["cache"]["derivation_misses"] == 0
        assert second.drain(timeout=30)

    def test_warmup_without_store_or_popularity_is_a_noop(self, tmp_path):
        assert make_service().maintenance.warm_up(5) == 0
        cold = make_service(store=str(tmp_path / "empty"))
        assert cold.maintenance.warm_up(5) == 0
        assert cold.maintenance.metrics()["warmed_packs"] == 0

    def test_corrupt_warmup_payloads_fail_in_isolation(self, tmp_path):
        store = DerivationStore(tmp_path / "store")
        meta_dir = store.root / "ab" / ("ab" * 32)
        meta_dir.mkdir(parents=True)
        (meta_dir / "meta.json").write_text(
            '{"fingerprint": "%s", "popularity": 9, '
            '"workflow_payload": {"modules": "garbage"}}' % ("ab" * 32)
        )
        service = make_service(store=store)
        assert service.maintenance.warm_up(5) == 0
        assert service.maintenance.metrics()["task_failures"]["warm_up"] == 1
        assert service.drain(timeout=30)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"result_cache_size": -1},
            {"planner_cache_size": 0},
            {"result_ttl": 0},
            {"result_ttl": -1.0},
            {"job_ttl": 0},
            {"max_jobs": 0},
            {"store_max_bytes": -1},
            {"warmup": -1},
            {"maintenance_interval": -0.5},
        ],
    )
    def test_nonsensical_configuration_is_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_service(**kwargs)

    def test_result_cache_size_bound_is_respected(self, figure1_payload):
        service = make_service(result_cache_size=1)
        base = {"workflow": figure1_payload, "gamma": 2, "kind": "set",
                "solver": "exact"}
        service.solve_payload(dict(base, seed=1))
        service.solve_payload(dict(base, seed=2))  # evicts seed=1
        service.solve_payload(dict(base, seed=1))
        assert service.metrics()["result_hits"]["memory"] == 0
        assert service.drain(timeout=30)
