"""Replica fleet: routing, supervision, rolling restart, drain ordering.

The integration tests spawn real ``repro serve`` subprocesses through
:class:`~repro.service.fleet.FleetSupervisor` (one module-scoped fleet,
reused across tests, so the interpreter start-up cost is paid once).  The
drain-ordering tests use two in-process servers instead — everything there
is sequenced through events (``Blocker``, ``drain_started``), no sleeps.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.service import (
    FleetSupervisor,
    ServiceClient,
    ServiceClientError,
    ServiceServer,
    SolveService,
)
from repro.service.fleet import _merge_numeric, _prefix_job_ids
from repro.service.server import encode_json, normalize_path
from repro.workloads import figure1_workflow, workflow_to_dict


class TestHelpers:
    def test_normalize_path(self):
        assert normalize_path("/v1/solve") == ("/solve", False)
        assert normalize_path("/v1/jobs/abc") == ("/jobs/abc", False)
        assert normalize_path("/v1") == ("/", False)
        assert normalize_path("/solve") == ("/solve", True)
        assert normalize_path("/healthz") == ("/healthz", True)
        # /v1x is not the version prefix.
        assert normalize_path("/v1x/solve") == ("/v1x/solve", True)

    def test_merge_numeric_sums_leaves_and_skips_identity(self):
        totals: dict = {}
        _merge_numeric(totals, {"a": 1, "b": {"c": 2.5}, "flag": True, "s": "x"})
        _merge_numeric(totals, {"a": 2, "b": {"c": 1.5, "d": 1}, "flag": False})
        assert totals == {"a": 3, "b": {"c": 4.0, "d": 1}}

    def test_prefix_job_ids(self):
        data = _prefix_job_ids(encode_json({"job": "abc123", "cells": 2}), "r1")
        assert json.loads(data)["job"] == "r1.abc123"
        # Bodies without a job id (or non-JSON) pass through untouched.
        assert _prefix_job_ids(b"[1, 2]", "r1") == b"[1, 2]"
        assert _prefix_job_ids(b"not json", "r1") == b"not json"


class TestDrainOrderingUnderRestart:
    """Satellite: healthz flips 503 before admission stops; in-flight
    requests complete; a client retrying on a second replica succeeds."""

    def test_drain_ordering_and_second_replica_retry(
        self, blocker, figure1_payload
    ):
        replica_a = SolveService(
            workers=2, registry=blocker.registry, default_timeout=30,
            replica_id="r0",
        )
        replica_b = SolveService(
            workers=2, registry=blocker.registry, default_timeout=30,
            replica_id="r1",
        )
        server_a = ServiceServer(replica_a, port=0).start()
        server_b = ServiceServer(replica_b, port=0).start()
        client_a = ServiceClient(server_a.url, timeout=30)
        client_b = ServiceClient(server_b.url, timeout=30)
        try:
            outcome: dict = {}

            def in_flight() -> None:
                outcome["record"] = client_a.solve(
                    workflow=figure1_payload, gamma=2, solver="blocker"
                )

            request_thread = threading.Thread(target=in_flight)
            request_thread.start()
            assert blocker.started.wait(30)

            stopper = threading.Thread(target=server_a.stop)
            stopper.start()
            assert replica_a.drain_started.wait(30)

            # 1. healthz reports 503/draining the moment the drain begins —
            #    *before* we observe any admission refusal — so a balancer
            #    polling healthz routes away first.
            probe = ServiceClient(server_a.url, timeout=30)
            with pytest.raises(ServiceClientError) as health_excinfo:
                probe.healthz()
            assert health_excinfo.value.status == 503
            assert health_excinfo.value.payload["draining"] is True
            assert health_excinfo.value.payload["replica"] == "r0"

            # 2. admission is stopped: a new request is refused with 503...
            with pytest.raises(ServiceClientError) as solve_excinfo:
                probe.solve(workflow=figure1_payload, gamma=2, solver="exact")
            assert solve_excinfo.value.status == 503
            assert solve_excinfo.value.error_type == "ServiceError"

            # 3. ...while the in-flight request is still being served: it
            #    completes once released, through the drain.
            assert not outcome
            blocker.release.set()
            request_thread.join(timeout=30)
            stopper.join(timeout=30)
            assert outcome["record"]["cost"] == 3.0

            # 4. the refused client retries against the second replica and
            #    succeeds — the fleet front automates exactly this.  (release
            #    is set, so the blocker solver passes straight through.)
            retried = client_b.solve(
                workflow=figure1_payload, gamma=2, solver="blocker"
            )
            assert retried["cost"] == 3.0
            assert client_b.healthz()["replica"] == "r1"
        finally:
            blocker.release.set()
            server_a.stop(drain_timeout=30)
            server_b.stop(drain_timeout=30)


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """A two-replica fleet on one store, shared across this module."""
    store = tmp_path_factory.mktemp("fleet-store")
    supervisor = FleetSupervisor(
        replicas=2,
        store=store,
        port=0,
        serve_argv=[
            "--workers", "2",
            # No in-memory result cache: repeats must read the *store's*
            # result tier, which is the cross-replica reuse under test.
            "--result-cache-size", "0",
            "--maintenance-interval", "5",
        ],
        health_interval=0.2,
        spawn_timeout=120.0,
    )
    supervisor.start()
    try:
        yield supervisor
    finally:
        supervisor.stop(drain_timeout=60)


@pytest.fixture(scope="module")
def fleet_client(fleet):
    return ServiceClient(fleet.url, timeout=60)


@pytest.fixture(scope="module")
def payload():
    return workflow_to_dict(figure1_workflow())


class TestFleetServing:
    def test_fleet_healthz_reports_both_replicas_in_rotation(
        self, fleet, fleet_client
    ):
        health = fleet_client.healthz()
        assert health["fleet"] is True
        assert health["status"] == "ok"
        assert health["in_rotation"] == 2
        assert set(health["replicas"]) == {"r0", "r1"}

    def test_fleet_version_lists_replica_versions(self, fleet_client):
        from repro import __version__

        payload = fleet_client.version()
        assert payload["api"] == "v1" and payload["fleet"] is True
        assert payload["replicas"]["r0"]["package"] == __version__
        assert payload["replicas"]["r0"]["replica"] == "r0"

    def test_identical_traffic_derives_once_fleet_wide(
        self, fleet, fleet_client, payload
    ):
        """K identical requests across replicas: one derivation, the rest
        served from the shared store's result tier."""
        k = 6
        records = [
            fleet_client.solve(workflow=payload, gamma=2, kind="set",
                               solver="exact")
            for _ in range(k)
        ]
        assert all(record["cost"] == 3.0 for record in records)
        # Every repeat after the first leader answered from the store.
        assert sum(1 for record in records if record["from_store"]) >= k - 1
        metrics = fleet_client.metrics()
        assert metrics["fleet"]["replicas"] == 2
        assert metrics["fleet"]["proxied"]["solve"] >= k
        # Round-robin routing spread the traffic over both replicas...
        per_replica_solves = [
            metrics["replicas"][rid]["requests"]["solve"] for rid in ("r0", "r1")
        ]
        assert all(count >= 1 for count in per_replica_solves)
        # ...and the store's result tier carried the reuse across them.
        assert metrics["totals"]["result_hits"]["store"] >= k - 1

    def test_jobs_are_namespaced_by_replica(self, fleet_client, payload):
        handle = fleet_client.sweep_async(
            workflows=[payload], gammas=[2], solvers=["exact"], seeds=[0, 1]
        )
        owner, _, raw = handle["job"].partition(".")
        assert owner in ("r0", "r1") and raw
        final = fleet_client.wait_job(handle["job"], timeout=60, poll=0.05)
        assert final["state"] == "done" and final["completed"] == 2
        assert final["job"] == handle["job"]
        assert handle["job"] in [job["job"] for job in fleet_client.jobs()]
        with pytest.raises(ServiceClientError) as excinfo:
            fleet_client.job("unprefixed-id")
        assert excinfo.value.status == 404

    def test_legacy_alias_at_the_front_answers_deprecation_header(self, fleet):
        with urllib.request.urlopen(f"{fleet.url}/healthz", timeout=30) as response:
            assert response.status == 200
            assert response.headers.get("Deprecation") == "true"
            assert "/v1/healthz" in response.headers.get("Link", "")

    def test_unknown_route_is_enveloped_404(self, fleet_client):
        with pytest.raises(ServiceClientError) as excinfo:
            fleet_client.request("GET", "/no-such")
        assert excinfo.value.status == 404
        assert excinfo.value.error_type == "ServiceError"


class TestFleetSupervision:
    def test_rolling_restart_mid_traffic_loses_no_requests(
        self, fleet, payload
    ):
        pids_before = {
            entry["replica"]: entry["pid"]
            for entry in fleet.status()["replicas"]
        }
        stop_traffic = threading.Event()
        failures: list[BaseException] = []
        completed = {"count": 0}

        def drive() -> None:
            client = ServiceClient(fleet.url, timeout=60)
            seed = 0
            while not stop_traffic.is_set():
                seed += 1
                try:
                    client.solve(
                        workflow=payload, gamma=2, kind="set",
                        solver="greedy", seed=seed,
                    )
                    completed["count"] += 1
                except BaseException as exc:  # noqa: BLE001 - collected
                    failures.append(exc)
                    return

        drivers = [threading.Thread(target=drive) for _ in range(3)]
        for thread in drivers:
            thread.start()
        try:
            summary = fleet.rolling_restart(drain_timeout=60)
        finally:
            stop_traffic.set()
            for thread in drivers:
                thread.join(timeout=60)
        assert summary["restarted"] == ["r0", "r1"]
        assert summary["failed"] == []
        assert failures == [], f"requests failed during rolling restart: {failures}"
        assert completed["count"] > 0
        pids_after = {
            entry["replica"]: entry["pid"]
            for entry in fleet.status()["replicas"]
        }
        assert pids_after["r0"] != pids_before["r0"]
        assert pids_after["r1"] != pids_before["r1"]
        health = ServiceClient(fleet.url, timeout=60).healthz()
        assert health["status"] == "ok" and health["in_rotation"] == 2

    def test_dead_replica_is_respawned_within_budget(self, fleet, fleet_client):
        victim = fleet.replicas[0]
        old_pid = victim.process.pid
        restarts_before = victim.restarts
        victim.process.kill()
        victim.process.wait()
        # Condition-based wait: the supervisor's health loop respawns and
        # readmits; 30s is a hard ceiling, not a sleep.
        readmitted = threading.Event()

        def watch() -> None:
            while not readmitted.is_set():
                if (
                    victim.alive()
                    and victim.process.pid != old_pid
                    and victim.in_rotation
                ):
                    readmitted.set()
                else:
                    threading.Event().wait(0.1)

        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()
        watcher.join(timeout=30)
        assert readmitted.is_set(), "dead replica was not respawned/readmitted"
        assert victim.restarts == restarts_before + 1
        assert victim.failed is False
        # The fleet kept serving throughout.
        assert fleet_client.healthz()["in_rotation"] >= 1
