"""Tests for the service core: module-tier reuse, timeouts, drain, sweeps."""

from __future__ import annotations

import threading

import pytest

from repro.service import ServiceError, ServiceTimeout, SolveService
from repro.workloads import figure1_workflow
from repro.workloads.serialization import problem_to_dict
from repro.core import SecureViewProblem


class TestModuleTierReuse:
    def test_overlapping_workflows_pay_the_shared_module_once(
        self, overlapping_payloads
    ):
        left, right = overlapping_payloads
        service = SolveService(workers=2, default_timeout=30)
        service.solve_payload({"workflow": left, "gamma": 2, "kind": "set"})
        service.solve_payload({"workflow": right, "gamma": 2, "kind": "set"})
        metrics = service.metrics()
        # Three distinct module contents across the two workflows; the
        # shared one is derived once and *reused* by the second workflow.
        assert metrics["cache"]["rederived_modules"] == 3
        assert metrics["cache"]["reused_modules"] == 1
        assert metrics["coalesced"] == 0  # distinct keys — sharing, not coalescing
        assert service.drain(timeout=30)

    def test_stored_error_records_answer_422_like_a_fresh_solve(
        self, tmp_path, figure1_payload
    ):
        """A sweep-persisted infeasibility record must not become a 200."""
        from repro.engine.store import DerivationStore, ResultKey
        from repro.service import InstanceCache, parse_solve_payload

        body = {"workflow": figure1_payload, "gamma": 2, "kind": "set",
                "solver": "exact"}
        job = parse_solve_payload(dict(body), InstanceCache())
        store = DerivationStore(str(tmp_path / "store"))
        store.save_result(
            job.fingerprint,
            ResultKey("kernel", 2, "set", "exact", None, False),
            {
                "workflow": job.label, "gamma": 2, "kind": "set",
                "solver": "exact", "seed": None, "method": "exact",
                "cost": float("inf"), "error": "empty requirement list",
                "error_type": "RequirementError",
            },
        )
        service = SolveService(store=store, workers=1, default_timeout=30)
        with pytest.raises(ServiceError) as excinfo:
            service.solve_payload(dict(body))
        assert excinfo.value.status == 422
        assert "empty requirement list" in str(excinfo.value)
        # The error was never memorized as a success either.
        with pytest.raises(ServiceError):
            service.solve_payload(dict(body))
        assert service.drain(timeout=30)

    def test_store_backed_service_shares_results_across_restarts(
        self, tmp_path, figure1_payload
    ):
        body = {
            "workflow": figure1_payload, "gamma": 2,
            "kind": "set", "solver": "exact",
        }
        first = SolveService(
            store=str(tmp_path / "store"), workers=1, default_timeout=30
        )
        cold = first.solve_payload(dict(body))
        assert not cold["from_store"]
        assert first.drain(timeout=30)

        second = SolveService(
            store=str(tmp_path / "store"), workers=1, default_timeout=30
        )
        warm = second.solve_payload(dict(body))
        assert warm["from_store"]
        assert warm["cost"] == cold["cost"]
        # Same record schema whichever tier answered.
        assert set(warm) == set(cold)
        assert second.metrics()["result_hits"]["store"] == 1
        assert second.drain(timeout=30)


class TestTimeouts:
    def test_deadline_expiry_raises_504_but_the_result_still_lands(
        self, blocker, figure1_payload
    ):
        service = SolveService(workers=1, registry=blocker.registry, default_timeout=30)
        body = {
            "workflow": figure1_payload, "gamma": 2, "kind": "set",
            "solver": "blocker", "timeout": 0.05,
        }
        with pytest.raises(ServiceTimeout) as excinfo:
            service.solve_payload(dict(body))
        assert excinfo.value.status == 504
        assert service.metrics()["timeouts"] == 1
        # The abandoned computation still completes, resolves, and caches —
        # a follow-up of the same request attaches or hits the cache, but
        # never recomputes.
        blocker.release.set()
        retry = service.solve_payload(dict(body, timeout=30))
        assert retry["cost"] > 0
        assert blocker.calls == 1
        assert service.drain(timeout=30)


class TestDrain:
    def test_drain_waits_for_inflight_rejects_new_and_completes(
        self, blocker, figure1_payload
    ):
        service = SolveService(workers=1, registry=blocker.registry, default_timeout=30)
        body = {
            "workflow": figure1_payload, "gamma": 2, "kind": "set", "solver": "blocker"
        }
        outcome: dict = {}

        def call() -> None:
            outcome["record"] = service.solve_payload(dict(body))

        solver_thread = threading.Thread(target=call)
        solver_thread.start()
        assert blocker.started.wait(30)

        drained = threading.Event()
        drain_thread = threading.Thread(
            target=lambda: (service.drain(), drained.set())
        )
        drain_thread.start()
        assert service.drain_started.wait(30)

        # While the blocked computation is in flight the drain must not
        # complete, and new work must be refused with 503.
        assert not drained.is_set()
        with pytest.raises(ServiceError) as excinfo:
            service.solve_payload(
                {"workflow": figure1_payload, "gamma": 3, "kind": "set"}
            )
        assert excinfo.value.status == 503

        blocker.release.set()
        solver_thread.join(timeout=30)
        drain_thread.join(timeout=30)
        assert drained.is_set()
        assert outcome["record"]["cost"] > 0  # in-flight work was not dropped
        assert service.in_flight == 0

    def test_drain_is_idempotent(self, figure1_payload):
        service = SolveService(workers=1, default_timeout=30)
        service.solve_payload({"workflow": figure1_payload, "gamma": 2, "kind": "set"})
        assert service.drain(timeout=30)
        assert service.drain(timeout=30)


class TestSweep:
    def test_sweep_expands_deterministically_and_isolates_failures(
        self, figure1_payload
    ):
        service = SolveService(workers=2, default_timeout=30)
        report = service.sweep_payload(
            {
                "workflows": [figure1_payload],
                "gammas": [2],
                "kinds": ["set"],
                "solvers": ["exact", "greedy", "no-such-solver"],
                "seeds": [0],
            }
        )
        assert report["cells"] == 3
        assert [record["index"] for record in report["records"]] == [0, 1, 2]
        assert report["errors"] == 1
        failed = [r for r in report["records"] if "error" in r]
        assert failed[0]["solver"] == "no-such-solver"
        assert failed[0]["error_type"] == "SolverError"
        ok = [r for r in report["records"] if "error" not in r]
        assert all(r["cost"] > 0 for r in ok)
        # One instance, one (Γ, kind) point: the derivation ran once and
        # the second solver reused it through the shared hot cache.
        assert report["stats"]["derivation_misses"] == 1
        assert service.drain(timeout=30)

    def test_sweep_accepts_problem_payloads(self):
        problem = SecureViewProblem.from_standalone_analysis(
            figure1_workflow(), 2, kind="set"
        )
        service = SolveService(workers=2, default_timeout=30)
        report = service.sweep_payload(
            {"problems": [problem_to_dict(problem)], "solvers": ["exact", "greedy"]}
        )
        assert report["cells"] == 2 and report["errors"] == 0
        assert service.drain(timeout=30)

    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"workflows": "nope"},
            {"workflows": [], "problems": []},
            {"workflows": None, "problems": None},
            {"workflows": [{"modules": []}], "gammas": "2"},
        ],
    )
    def test_malformed_sweeps_are_rejected(self, body):
        service = SolveService(workers=1, default_timeout=30)
        with pytest.raises(ServiceError) as excinfo:
            service.sweep_payload(body)
        assert excinfo.value.status == 400
        assert service.drain(timeout=30)

    def test_null_axes_mean_defaults_not_a_crash(self, figure1_payload):
        """Explicit JSON nulls on grid axes behave like absent keys (400/200,
        never a 500 TypeError)."""
        service = SolveService(workers=1, default_timeout=30)
        report = service.sweep_payload(
            {
                "workflows": [figure1_payload],
                "gammas": None,
                "kinds": None,
                "solvers": ["exact"],
                "seeds": None,
            }
        )
        assert report["cells"] == 1 and report["errors"] == 0
        assert report["records"][0]["gamma"] == 2  # the default axis
        assert service.drain(timeout=30)

    def test_repeated_sweeps_hit_the_result_cache(self, figure1_payload):
        """A storeless service must not re-run solvers for a repeated grid."""
        service = SolveService(workers=2, default_timeout=30)
        grid = {"workflows": [figure1_payload], "solvers": ["exact", "greedy"]}
        first = service.sweep_payload(dict(grid))
        second = service.sweep_payload(dict(grid))
        assert first["errors"] == second["errors"] == 0
        assert service.metrics()["result_hits"]["memory"] == 2
        assert [r["cost"] for r in second["records"]] == [
            r["cost"] for r in first["records"]
        ]
        assert service.drain(timeout=30)

    def test_sweep_deadline_is_shared_not_per_cell(self, blocker, figure1_payload):
        """N blocked cells time out within ~one budget, not N budgets."""
        import time

        service = SolveService(workers=1, registry=blocker.registry, default_timeout=30)
        started = time.monotonic()
        report = service.sweep_payload(
            {
                "workflows": [figure1_payload],
                "gammas": [2, 3, 4],
                "solvers": ["blocker"],
                "timeout": 0.2,
            }
        )
        elapsed = time.monotonic() - started
        assert report["errors"] == 3
        assert all(r["error_type"] == "ServiceTimeout" for r in report["records"])
        # Three cells against one shared 0.2s deadline: well under 3 x 0.2s
        # plus scheduling slack.
        assert elapsed < 0.5, elapsed
        blocker.release.set()
        assert service.drain(timeout=30)
