"""Tests for the multi-core execution tier (``exec_mode="processes"``).

Determinism notes: the tier's ``pause()`` hook holds queued tasks
undispatched, so followers can attach to a leader's coalescer entry with
certainty (``RequestCoalescer.await_waiters`` sequences the attachment —
no sleeps, no timing games).  Worker death is exercised through
:data:`~repro.service.exec_tier.CRASH_LABEL`, a request label that makes
the assigned worker ``os._exit`` before solving: labels ride the wire but
are excluded from the coalescing key, so a poisoned request still
coalesces — exactly the "leader's computation is lost mid-flight"
scenario the robustness fix must survive.
"""

from __future__ import annotations

import threading

import pytest

from repro.service import (
    ProcessExecTier,
    ServiceClient,
    ServiceClientError,
    ServiceError,
    ServiceServer,
    SolveService,
    WorkerError,
    parse_solve_payload,
)
from repro.service.exec_tier import CRASH_LABEL


def _process_service(**overrides) -> SolveService:
    defaults = dict(
        workers=2,
        exec_mode="processes",
        exec_workers=2,
        default_timeout=60,
        maintenance_interval=None,
    )
    defaults.update(overrides)
    return SolveService(**defaults)


class TestCoalescingOnProcessTier:
    K = 4

    def test_k_identical_requests_run_one_derivation_on_one_worker(
        self, figure1_payload
    ):
        service = _process_service()
        try:
            assert service.exec_tier.wait_ready(60)
            body = {"workflow": figure1_payload, "gamma": 2, "kind": "set"}
            key = parse_solve_payload(dict(body), service.instances).key

            # Hold dispatch so every request attaches before the worker runs.
            service.exec_tier.pause()
            results: list[dict | None] = [None] * self.K
            errors: list[BaseException] = []

            def call(slot: int) -> None:
                try:
                    results[slot] = service.solve_payload(dict(body))
                except BaseException as exc:  # noqa: BLE001 - via assert
                    errors.append(exc)

            threads = [
                threading.Thread(target=call, args=(i,)) for i in range(self.K)
            ]
            for thread in threads:
                thread.start()
            assert service.coalescer.await_waiters(key, self.K, timeout=30)
            service.exec_tier.resume()
            for thread in threads:
                thread.join(timeout=60)

            assert not errors
            costs = {record["cost"] for record in results}  # type: ignore[index]
            assert len(costs) == 1
            assert sum(record["coalesced"] for record in results) == self.K - 1

            metrics = service.metrics()
            assert metrics["coalesced"] == self.K - 1
            assert metrics["leaders"] == 1
            # The derivation happened exactly once — in a worker process;
            # its cache delta is merged into the shared counters.
            assert metrics["cache"]["derivation_misses"] == 1
            assert metrics["exec"]["mode"] == "processes"
            assert metrics["exec"]["dispatched"] == 1
            assert metrics["exec"]["completed"] == 1
            assert metrics["exec"]["inline_fallbacks"] == 0
            assert results[0]["from_store"] is False  # no store attached
        finally:
            assert service.drain(timeout=30)

    def test_distinct_requests_fan_out_to_distinct_workers(self, figure1_payload):
        service = _process_service()
        try:
            assert service.exec_tier.wait_ready(60)
            tier = service.exec_tier
            jobs = [
                parse_solve_payload(
                    {"workflow": figure1_payload, "gamma": 2, "kind": "set",
                     "seed": seed},
                    service.instances,
                )
                for seed in (1, 2)
            ]
            # Queue both while paused; one resume assigns both in a single
            # pass, so each lands on its own worker — true parallelism.
            tier.pause()
            tasks = [tier.submit(job) for job in jobs]
            assert tier.metrics()["queued"] == 2
            tier.resume()
            records = [tier.wait(task, timeout=60) for task in tasks]
            assert {task.worker for task in tasks} == {0, 1}
            assert all(record["cost"] >= 0 for record in records)
            assert tier.metrics()["dispatched"] == 2
            assert tier.metrics()["completed"] == 2
        finally:
            assert service.drain(timeout=30)


class TestDrainWithProcessTier:
    def test_drain_waits_for_inflight_tier_work(self, figure1_payload):
        service = _process_service(workers=1, exec_workers=1)
        try:
            assert service.exec_tier.wait_ready(60)
            body = {"workflow": figure1_payload, "gamma": 2, "kind": "set"}
            key = parse_solve_payload(dict(body), service.instances).key
            outcome: dict = {}

            service.exec_tier.pause()  # the leader blocks undispatched

            def call() -> None:
                outcome["record"] = service.solve_payload(dict(body))

            solver_thread = threading.Thread(target=call)
            solver_thread.start()
            assert service.coalescer.await_waiters(key, 1, timeout=30)

            drained = threading.Event()
            drain_thread = threading.Thread(
                target=lambda: (service.drain(timeout=60), drained.set())
            )
            drain_thread.start()
            assert service.drain_started.wait(30)

            assert not drained.is_set()
            with pytest.raises(ServiceError) as excinfo:
                service.solve_payload(
                    {"workflow": figure1_payload, "gamma": 3, "kind": "set"}
                )
            assert excinfo.value.status == 503

            service.exec_tier.resume()
            solver_thread.join(timeout=60)
            drain_thread.join(timeout=60)
            assert drained.is_set()
            assert outcome["record"]["cost"] > 0  # in-flight work kept
            assert service.in_flight == 0
        finally:
            service.drain(timeout=30)


class TestWorkerCrashRecovery:
    def test_crash_fails_only_attached_requests_and_respawns(
        self, figure1_payload
    ):
        K = 3
        service = _process_service(workers=2, exec_workers=1)
        try:
            assert service.exec_tier.wait_ready(60)
            poisoned = {
                "workflow": figure1_payload, "gamma": 2, "kind": "set",
                "label": CRASH_LABEL,
            }
            key = parse_solve_payload(dict(poisoned), service.instances).key

            service.exec_tier.pause()
            errors: list[BaseException] = []
            results: list[dict] = []

            def call() -> None:
                try:
                    results.append(service.solve_payload(dict(poisoned)))
                except BaseException as exc:  # noqa: BLE001 - via assert
                    errors.append(exc)

            threads = [threading.Thread(target=call) for _ in range(K)]
            for thread in threads:
                thread.start()
            assert service.coalescer.await_waiters(key, K, timeout=30)
            service.exec_tier.resume()
            for thread in threads:
                thread.join(timeout=60)

            # Every attached request failed with the 500-mapped crash error;
            # nothing hung and nothing succeeded.
            assert not results
            assert len(errors) == K
            assert all(isinstance(exc, WorkerError) for exc in errors)
            assert all(exc.status == 500 for exc in errors)
            assert all("died mid-solve" in str(exc) for exc in errors)
            # The single-flight entry was resolved, not wedged.
            assert service.coalescer.in_flight() == 0

            # The worker respawned; the tier is healthy and still solves.
            assert service.exec_tier.wait_ready(60)
            assert service.exec_tier.worker_restarts == 1
            assert service.exec_tier.healthy()
            record = service.solve_payload(
                {"workflow": figure1_payload, "gamma": 2, "kind": "set"}
            )
            assert record["cost"] > 0
            metrics = service.metrics()
            assert metrics["exec"]["worker_restarts"] == 1
            assert metrics["exec"]["failed"] == 1
            assert metrics["exec"]["healthy"] is True
        finally:
            assert service.drain(timeout=30)

    def test_unrecoverable_pool_is_unhealthy_and_falls_back_inline(
        self, figure1_payload
    ):
        service = _process_service(workers=2, exec_workers=1)
        server = ServiceServer(service, port=0).start()
        try:
            assert service.exec_tier.wait_ready(60)
            service.exec_tier.max_restarts = 0  # first death is terminal
            with pytest.raises(WorkerError):
                service.solve_payload(
                    {"workflow": figure1_payload, "gamma": 2, "kind": "set",
                     "label": CRASH_LABEL}
                )
            # await the death bookkeeping (wait_ready returns False on a
            # dead pool without waiting out its timeout).
            assert service.exec_tier.wait_ready(30) is False
            assert service.exec_tier.healthy() is False

            health = service.healthz()
            assert health["status"] == "unhealthy"
            assert health["healthy"] is False
            client = ServiceClient(server.url, timeout=30)
            with pytest.raises(ServiceClientError) as excinfo:
                client.healthz()
            assert excinfo.value.status == 503
            assert excinfo.value.payload["status"] == "unhealthy"

            # Requests still answer — inline, on the pool thread.
            record = service.solve_payload(
                {"workflow": figure1_payload, "gamma": 2, "kind": "set"}
            )
            assert record["cost"] > 0
            metrics = service.metrics()
            assert metrics["exec"]["inline_fallbacks"] == 1
            assert metrics["exec"]["alive"] == 0
            assert metrics["exec"]["healthy"] is False
        finally:
            server.stop(drain_timeout=30)


class TestStoreBackedProcessTier:
    def test_workers_reuse_results_persisted_by_another_service(
        self, figure1_payload, tmp_path
    ):
        store = str(tmp_path / "store")
        body = {"workflow": figure1_payload, "gamma": 2, "kind": "set"}
        first = SolveService(store=store, workers=1, default_timeout=60,
                             maintenance_interval=None)
        try:
            fresh = first.solve_payload(dict(body))
            assert fresh["from_store"] is False
        finally:
            assert first.drain(timeout=30)

        second = _process_service(store=store)
        try:
            assert second.exec_tier.wait_ready(60)
            reused = second.solve_payload(dict(body))
            assert reused["from_store"] is True
            assert reused["cost"] == fresh["cost"]
            assert second.metrics()["result_hits"]["store"] == 1
        finally:
            assert second.drain(timeout=30)


class TestConstruction:
    def test_exec_workers_requires_process_mode(self):
        with pytest.raises(ValueError, match="exec_workers requires"):
            SolveService(exec_workers=2)

    def test_registry_cannot_cross_the_process_boundary(self, blocker):
        with pytest.raises(ValueError, match="registry"):
            SolveService(exec_mode="processes", registry=blocker.registry)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"exec_mode": "fibers"},
            {"exec_mode": "processes", "exec_workers": 0},
        ],
    )
    def test_nonsensical_exec_arguments_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SolveService(**kwargs)

    def test_tier_rejects_nonsensical_arguments(self):
        with pytest.raises(ValueError):
            ProcessExecTier(workers=0)
        with pytest.raises(ValueError):
            ProcessExecTier(workers=1, warmup=-1)
        with pytest.raises(ValueError):
            ProcessExecTier(workers=1, max_restarts=-1)

    def test_thread_mode_metrics_report_a_static_exec_block(
        self, figure1_payload
    ):
        service = SolveService(workers=2, default_timeout=30)
        try:
            service.solve_payload(
                {"workflow": figure1_payload, "gamma": 2, "kind": "set"}
            )
            block = service.metrics()["exec"]
            assert block["mode"] == "threads"
            assert block["workers"] == 2
            assert block["dispatched"] == 0
            assert block["inline_fallbacks"] == 0
            assert block["worker_restarts"] == 0
            assert block["healthy"] is True
            assert service.healthz()["status"] == "ok"
        finally:
            assert service.drain(timeout=30)


class TestWireCodec:
    def test_to_wire_round_trips_the_coalescing_key(self, figure1_payload):
        from repro.service.jobs import InstanceCache

        instances = InstanceCache()
        body = {
            "workflow": figure1_payload, "gamma": 2, "kind": "set",
            "solver": "auto", "seed": 7, "verify": True,
            "costs": {"m1_a": 2.0},
        }
        job = parse_solve_payload(dict(body), instances)
        reparsed = parse_solve_payload(job.to_wire(), InstanceCache())
        assert reparsed.key == job.key
        assert reparsed.label == job.label

    def test_to_wire_requires_the_raw_payload(self, figure1_payload):
        from dataclasses import replace

        from repro.service.jobs import InstanceCache

        job = parse_solve_payload(
            {"workflow": figure1_payload, "gamma": 2}, InstanceCache()
        )
        with pytest.raises(ValueError, match="raw payload"):
            replace(job, payload=None).to_wire()
