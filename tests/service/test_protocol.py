"""Tests for the request codec: validation, canonicalization, coalescing keys."""

from __future__ import annotations

import pytest

from repro.service import InstanceCache, ServiceError, parse_solve_payload
from repro.workloads import figure1_workflow
from repro.workloads.serialization import problem_to_dict
from repro.core import SecureViewProblem


@pytest.fixture
def instances() -> InstanceCache:
    return InstanceCache()


def _solve_body(payload: dict, **extra) -> dict:
    body = {"workflow": payload, "gamma": 2, "kind": "set"}
    body.update(extra)
    return body


class TestValidation:
    @pytest.mark.parametrize(
        "body",
        [
            "not an object",
            [],
            {},
            {"gamma": 2},  # no instance
            {"workflow": {}, "problem": {}, "gamma": 2},  # both instances
            {"workflow": "nope", "gamma": 2},
            {"workflow": {"modules": []}},  # gamma missing
            {"workflow": {"modules": []}, "gamma": 0},
            {"workflow": {"modules": []}, "gamma": True},
            {"workflow": {"modules": []}, "gamma": 2, "kind": "frob"},
            {"problem": {}, "gamma": 2},  # problems carry their own gamma
        ],
    )
    def test_malformed_bodies_are_rejected_with_400(self, body, instances):
        with pytest.raises(ServiceError) as excinfo:
            parse_solve_payload(body, instances)
        assert excinfo.value.status == 400

    def test_invalid_workflow_payload_is_a_400_not_a_crash(self, instances):
        body = {"workflow": {"modules": [{"name": "broken"}]}, "gamma": 2}
        with pytest.raises(ServiceError) as excinfo:
            parse_solve_payload(body, instances)
        assert excinfo.value.status == 400
        assert "invalid workflow payload" in str(excinfo.value)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("seed", "seven"),
            ("seed", True),
            ("verify", "yes"),
            ("solver", ""),
            ("solver", 3),
            ("backend", "quantum"),
            ("timeout", -1),
            ("timeout", 0),
            ("costs", ["a1", 2.0]),
            ("costs", {"a1": "expensive"}),
        ],
    )
    def test_bad_parameter_values_are_rejected(
        self, field, value, instances, figure1_payload
    ):
        with pytest.raises(ServiceError) as excinfo:
            parse_solve_payload(
                _solve_body(figure1_payload, **{field: value}), instances
            )
        assert excinfo.value.status == 400


class TestCanonicalization:
    def test_defaults(self, instances, figure1_payload):
        job = parse_solve_payload({"workflow": figure1_payload, "gamma": 2}, instances)
        assert job.kind == "set"
        assert job.solver == "auto"
        assert job.seed is None and job.verify is False
        assert job.costs is None and job.timeout is None
        assert job.backend == "kernel"
        assert job.label == figure1_payload["name"]

    def test_key_is_the_issue_tuple_plus_costs(self, instances, figure1_payload):
        job = parse_solve_payload(
            _solve_body(figure1_payload, solver="exact", seed=3, verify=True),
            instances,
        )
        assert job.key == (
            job.fingerprint, "kernel", 2, "set", "exact", 3, True, None
        )

    def test_module_order_does_not_change_the_key(self, instances, figure1_payload):
        shuffled = dict(figure1_payload)
        shuffled["modules"] = list(reversed(figure1_payload["modules"]))
        job_a = parse_solve_payload(_solve_body(figure1_payload), instances)
        job_b = parse_solve_payload(_solve_body(shuffled), instances)
        assert job_a.key == job_b.key
        # ... and both requests resolve to the *same* live object, so the
        # engine's identity-keyed memory tables hit across them.
        assert job_a.instance is job_b.instance

    def test_cost_overrides_split_the_key(self, instances, figure1_payload):
        base = parse_solve_payload(_solve_body(figure1_payload), instances)
        priced = parse_solve_payload(
            _solve_body(figure1_payload, costs={"a3": 10.0}), instances
        )
        assert base.key != priced.key
        assert priced.costs == (("a3", 10.0),)

    def test_problem_payloads_key_like_the_sweep_executor(self, instances):
        from repro.workloads.fingerprint import payload_fingerprint

        problem = SecureViewProblem.from_standalone_analysis(
            figure1_workflow(), 2, kind="set"
        )
        payload = problem_to_dict(problem)
        job = parse_solve_payload({"problem": payload}, instances)
        assert job.gamma is None and job.kind is None
        assert job.fingerprint == payload_fingerprint({"problem": payload})

    def test_repeat_payloads_reuse_the_rebuilt_instance(
        self, instances, figure1_payload
    ):
        job_a = parse_solve_payload(_solve_body(figure1_payload), instances)
        job_b = parse_solve_payload(_solve_body(figure1_payload), instances)
        assert job_a.instance is job_b.instance

    def test_concurrent_first_requests_converge_on_one_instance(
        self, instances, figure1_payload
    ):
        """Simultaneous cold requests must not each rebuild their own object."""
        import threading

        jobs = [None] * 8
        barrier = threading.Barrier(len(jobs))

        def resolve(slot: int) -> None:
            barrier.wait(timeout=30)
            jobs[slot] = parse_solve_payload(_solve_body(figure1_payload), instances)

        threads = [
            threading.Thread(target=resolve, args=(i,)) for i in range(len(jobs))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert all(job is not None for job in jobs)
        assert len({id(job.instance) for job in jobs}) == 1
