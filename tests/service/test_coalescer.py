"""Deterministic tests for request coalescing (barriers and events, no sleeps)."""

from __future__ import annotations

import threading

import pytest

from repro.service import (
    RequestCoalescer,
    ServiceTimeout,
    SolveService,
    parse_solve_payload,
)


class TestRequestCoalescer:
    def test_first_joiner_leads_later_joiners_attach(self):
        coalescer = RequestCoalescer()
        leader, entry = coalescer.join("k")
        assert leader
        follower, same = coalescer.join("k")
        assert not follower and same is entry
        assert coalescer.stats() == {"leaders": 1, "coalesced": 1, "in_flight": 1}
        coalescer.resolve(entry, result=42)
        assert coalescer.wait(entry, timeout=1) == 42
        # The key is free again: the next joiner starts a fresh computation.
        leader_again, fresh = coalescer.join("k")
        assert leader_again and fresh is not entry
        coalescer.resolve(fresh, result=0)

    def test_errors_are_shared_by_all_waiters(self):
        coalescer = RequestCoalescer()
        _, entry = coalescer.join("k")
        coalescer.join("k")
        boom = ValueError("shared failure")
        coalescer.resolve(entry, error=boom)
        for _ in range(2):
            with pytest.raises(ValueError, match="shared failure"):
                coalescer.wait(entry, timeout=1)

    def test_wait_timeout_raises_service_timeout_and_entry_survives(self):
        coalescer = RequestCoalescer()
        _, entry = coalescer.join("k")
        with pytest.raises(ServiceTimeout):
            coalescer.wait(entry, timeout=0.01)
        # The computation is not orphaned: the entry is still joinable ...
        follower, same = coalescer.join("k")
        assert not follower and same is entry
        # ... and a late resolution still reaches everyone.
        coalescer.resolve(entry, result="late")
        assert coalescer.wait(entry, timeout=1) == "late"


class TestServiceCoalescing:
    K = 4

    def test_k_identical_inflight_requests_run_one_computation(
        self, blocker, figure1_payload
    ):
        """K concurrent identical requests: 1 derivation, coalesced == K-1."""
        service = SolveService(workers=2, registry=blocker.registry, default_timeout=30)
        body = {
            "workflow": figure1_payload, "gamma": 2, "kind": "set", "solver": "blocker"
        }
        key = parse_solve_payload(dict(body), service.instances).key

        results: list[dict | None] = [None] * self.K
        errors: list[BaseException] = []

        def call(slot: int) -> None:
            try:
                results[slot] = service.solve_payload(dict(body))
            except BaseException as exc:  # noqa: BLE001 - surfaced via assert
                errors.append(exc)

        threads = [threading.Thread(target=call, args=(i,)) for i in range(self.K)]
        for thread in threads:
            thread.start()
        # All K requests are attached (condition-based wait, no polling);
        # the computation has not produced a result yet — the solver is
        # still blocked — so every one of them must share the single run.
        assert service.coalescer.await_waiters(key, self.K, timeout=30)
        blocker.release.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert blocker.calls == 1
        costs = {record["cost"] for record in results}  # type: ignore[index]
        assert len(costs) == 1
        assert sum(record["coalesced"] for record in results) == self.K - 1

        metrics = service.metrics()
        assert metrics["coalesced"] == self.K - 1
        assert metrics["leaders"] == 1
        assert metrics["cache"]["derivation_misses"] == 1
        assert service.drain(timeout=30)

    def test_distinct_keys_do_not_coalesce(self, blocker, figure1_payload):
        service = SolveService(workers=2, registry=blocker.registry, default_timeout=30)
        blocker.release.set()  # no blocking needed; keys differ
        seeded = {
            "workflow": figure1_payload, "gamma": 2, "kind": "set",
            "solver": "blocker", "seed": 1,
        }
        other_seed = dict(seeded, seed=2)
        service.solve_payload(seeded)
        service.solve_payload(other_seed)
        assert service.metrics()["coalesced"] == 0
        assert blocker.calls == 2
        assert service.drain(timeout=30)

    def test_completed_requests_are_served_from_the_result_cache(
        self, blocker, figure1_payload
    ):
        service = SolveService(workers=2, registry=blocker.registry, default_timeout=30)
        blocker.release.set()
        body = {
            "workflow": figure1_payload, "gamma": 2, "kind": "set", "solver": "blocker"
        }
        first = service.solve_payload(dict(body))
        second = service.solve_payload(dict(body))
        assert blocker.calls == 1
        assert second["cost"] == first["cost"]
        assert service.metrics()["result_hits"]["memory"] == 1
        assert service.drain(timeout=30)
