"""Privacy audit: publish a view, then attack it like an adversary would.

Workflow owners rarely trust an optimizer blindly.  This example plays both
sides on the Figure-1 workflow:

1. the *owner* derives requirement lists, solves the Secure-View problem,
   saves the workflow/problem/solution as JSON (the same files the
   ``python -m repro.cli`` commands consume), and
2. the *auditor* reloads those files and runs the exact reconstruction
   attack against every private module, reporting each input's candidate
   count and the adversary's best guessing probability — confirming the
   published view honours the Γ target, and showing how badly an
   unprotected view fails.

Run with::

    python examples/privacy_audit.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis import Report
from repro.core import SecureViewProblem, reconstruction_attack
from repro.optim import solve_exact_ip
from repro.workloads import (
    dump_problem,
    figure1_workflow,
    load_problem,
    solution_from_dict,
    solution_to_dict,
)


def owner_publishes(directory: Path, gamma: int) -> tuple[Path, Path]:
    """The owner's side: derive, optimize, and write problem + solution files."""
    workflow = figure1_workflow()
    problem = SecureViewProblem.from_standalone_analysis(workflow, gamma, kind="set")
    solution = solve_exact_ip(problem)

    problem_path = directory / "figure1_problem.json"
    solution_path = directory / "figure1_solution.json"
    dump_problem(problem, str(problem_path))
    solution_path.write_text(
        __import__("json").dumps(solution_to_dict(solution), indent=2, sort_keys=True)
    )
    return problem_path, solution_path


def auditor_attacks(report: Report, problem_path: Path, solution_path: Path) -> None:
    """The auditor's side: reload the files and attack every private module."""
    problem = load_problem(str(problem_path))
    payload = __import__("json").loads(solution_path.read_text())
    solution = solution_from_dict(problem.workflow, payload)

    for module in problem.workflow.private_modules:
        protected = reconstruction_attack(
            problem.workflow,
            module.name,
            solution.visible_attributes,
            hidden_public_modules=solution.privatized_modules,
            gamma_target=problem.gamma,
        )
        unprotected = reconstruction_attack(
            problem.workflow,
            module.name,
            set(problem.workflow.attribute_names),
            gamma_target=problem.gamma,
        )
        report.add_table(
            f"Attack on module {module.name!r} (target Γ = {problem.gamma})",
            ["view", "achieved Γ", "worst guess probability", "inputs fully exposed"],
            [
                [
                    "published secure view",
                    protected.achieved_gamma,
                    f"{protected.worst_guessing_probability:.2f}",
                    len(protected.exposed_inputs),
                ],
                [
                    "naive full-provenance view",
                    unprotected.achieved_gamma,
                    f"{unprotected.worst_guessing_probability:.2f}",
                    len(unprotected.exposed_inputs),
                ],
            ],
        )
        assert not protected.breaches_target


def main() -> None:
    gamma = 2
    report = Report("Privacy audit of a published provenance view (Figure 1, Γ = 2)")
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        problem_path, solution_path = owner_publishes(directory, gamma)
        report.add_text(
            "Owner wrote:\n"
            f"  {problem_path.name}  (workflow + requirement lists)\n"
            f"  {solution_path.name} (hidden attributes + privatized modules)\n"
            "The same files drive the CLI:  python -m repro.cli attack <problem> <solution> m1"
        )
        auditor_attacks(report, problem_path, solution_path)
    report.add_text(
        "Every private module meets the Γ target under the published view, while\n"
        "the naive full-provenance view exposes every input of every module."
    )
    print(report.render())


if __name__ == "__main__":
    main()
