"""A genomics-style pipeline with one proprietary module (the paper's motivation).

The introduction of the paper motivates module privacy with proprietary
scientific software such as a genetic-disorder susceptibility predictor.
This example builds a small genomics-flavoured workflow:

    staging (public) -> alignment (public) -> variant calling (private)
        -> susceptibility predictor (private, proprietary) -> report (public)

All data are abstracted to small boolean attributes (presence/absence flags),
exactly as in the paper's model.  The script

1. derives standalone requirement lists for the two private modules,
2. solves the Secure-View problem with privatization allowed,
3. shows that skipping privatization breaks workflow privacy next to the
   public neighbours (Example 7's phenomenon), and
4. prints the final view a collaborator would see.

Run with::

    python examples/genomics_pipeline.py
"""

from __future__ import annotations

from repro.analysis import Report
from repro.core import (
    Module,
    SecureViewProblem,
    Workflow,
    is_gamma_private_workflow,
    workflow_privacy_level,
)
from repro.optim import solve_exact_ip, solve_general_lp
from repro.workloads import make_attributes


def build_pipeline() -> Workflow:
    """A five-module genomics-flavoured workflow over boolean flags."""
    sample, reference = make_attributes(
        ["sample", "reference"], {"sample": 2.0, "reference": 1.0}
    )
    reads, quality = make_attributes(
        ["reads", "quality"], {"reads": 3.0, "quality": 1.0}
    )
    aligned, coverage = make_attributes(
        ["aligned", "coverage"], {"aligned": 4.0, "coverage": 2.0}
    )
    variant_a, variant_b = make_attributes(
        ["variant_a", "variant_b"], {"variant_a": 5.0, "variant_b": 5.0}
    )
    risk, confidence = make_attributes(
        ["risk", "confidence"], {"risk": 6.0, "confidence": 2.0}
    )
    summary, = make_attributes(["summary"], {"summary": 1.0})

    staging = Module(
        "staging",
        [sample, reference],
        [reads, quality],
        lambda x: {"reads": x["sample"], "quality": x["sample"] | x["reference"]},
        private=False,
        privatization_cost=2.0,
    )
    alignment = Module(
        "alignment",
        [reads, quality],
        [aligned, coverage],
        lambda x: {
            "aligned": x["reads"] & x["quality"],
            "coverage": x["reads"] ^ x["quality"],
        },
        private=False,
        privatization_cost=3.0,
    )
    variant_calling = Module(
        "variant_calling",
        [aligned, coverage],
        [variant_a, variant_b],
        lambda x: {
            "variant_a": x["aligned"] ^ x["coverage"],
            "variant_b": 1 - (x["aligned"] & x["coverage"]),
        },
        private=True,
    )
    susceptibility = Module(
        "susceptibility",
        [variant_a, variant_b],
        [risk, confidence],
        lambda x: {
            "risk": x["variant_a"] & x["variant_b"],
            "confidence": x["variant_a"] | x["variant_b"],
        },
        private=True,
    )
    reporting = Module(
        "reporting",
        [risk, confidence],
        [summary],
        lambda x: {"summary": x["risk"] | x["confidence"]},
        private=False,
        privatization_cost=1.0,
    )
    return Workflow(
        [staging, alignment, variant_calling, susceptibility, reporting],
        name="genomics-pipeline",
    )


def main() -> None:
    gamma = 2
    report = Report("Genomics pipeline: protecting a proprietary susceptibility module")
    workflow = build_pipeline()
    report.add_text(
        f"Workflow: {workflow!r}\n"
        f"Private modules: {[m.name for m in workflow.private_modules]}\n"
        f"Public modules:  {[m.name for m in workflow.public_modules]}"
    )

    # Derive requirement lists from standalone analysis of the private modules.
    problem = SecureViewProblem.from_standalone_analysis(workflow, gamma, kind="set")
    report.add_records(
        "Derived requirement lists (minimal safe hidden sets per private module)",
        [
            {
                "module": name,
                "options": "; ".join(
                    "{" + ", ".join(sorted(option.attributes)) + "}"
                    for option in requirement
                ),
            }
            for name, requirement in problem.requirements.items()
        ],
    )

    # Solve with the exact IP and the general LP (which handles privatization).
    exact = solve_exact_ip(problem)
    approx = solve_general_lp(problem)
    report.add_table(
        f"Secure-View solutions for Γ = {gamma} (hiding cost + privatization cost)",
        ["solver", "hidden attributes", "privatized modules", "cost"],
        [
            [
                "exact IP",
                ", ".join(sorted(exact.hidden_attributes)),
                ", ".join(sorted(exact.privatized_modules)) or "-",
                f"{exact.cost():.1f}",
            ],
            [
                "general LP (l_max approx)",
                ", ".join(sorted(approx.hidden_attributes)),
                ", ".join(sorted(approx.privatized_modules)) or "-",
                f"{approx.cost():.1f}",
            ],
        ],
    )

    # Show why privatization matters (Example 7's phenomenon).  Note that the
    # optimizer above deliberately avoided it: hiding `variant_b` protects
    # both private modules without touching any public module.  If instead
    # the owner insisted on hiding `aligned` (an output of the *public*
    # alignment module), the adversary could recompute it from the visible
    # reads/quality values — unless the alignment module is privatized.
    forced_hidden = set(workflow.attribute_names) - {"aligned"}
    level_without = workflow_privacy_level(workflow, "variant_calling", forced_hidden)
    level_with = workflow_privacy_level(
        workflow, "variant_calling", forced_hidden, hidden_public_modules={"alignment"}
    )
    report.add_table(
        "Why privatization matters (Example 7's phenomenon): hide only 'aligned'",
        ["configuration", "privacy level of 'variant_calling'"],
        [
            ["public alignment module stays visible", level_without],
            ["alignment module privatized", level_with],
        ],
    )
    visible = exact.visible_attributes
    verified = is_gamma_private_workflow(
        workflow, visible, gamma, hidden_public_modules=exact.privatized_modules
    )
    report.add_text(
        f"Brute-force check that the chosen view is {gamma}-private for every "
        f"private module: {verified}"
    )
    print(report.render())


if __name__ == "__main__":
    main()
