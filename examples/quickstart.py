"""Quickstart: the Figure-1 workflow from the paper, end to end.

Run with::

    python examples/quickstart.py

The script builds the running example of the paper (three boolean modules
over attributes a1..a7), materializes its provenance relation, checks
Γ-privacy of the top module for the view of Figure 1d, then hands the
workflow to the engine's :class:`~repro.engine.Planner`, which derives
requirement lists once and solves the Secure-View problem with the exact
solver and two approximation algorithms through one uniform ``solve()``
entry point.

All privacy checks and derivations below run on the default
``backend="kernel"`` — the bit-compiled privacy kernel of
:mod:`repro.kernel`, which packs relations into integer bitmask tables.
Pass ``backend="reference"`` (to the check functions or to ``Planner``) to
run the original brute-force enumerators instead; both backends are
property-tested to agree, the kernel is just much faster.  On
numpy-sized relations the kernel additionally batches its safe-subset
sweeps — many candidate masks are levelled per pass over the packed
rows — which is fully transparent here: nothing in this script changes,
the Planner's derivations simply run faster.
"""

from __future__ import annotations

from repro.analysis import Report
from repro.core import (
    ProvenanceView,
    count_standalone_worlds,
    is_gamma_private_workflow,
    standalone_privacy_level,
)
from repro.engine import Planner
from repro.workloads import figure1_view_attributes, figure1_workflow


def main() -> None:
    report = Report("provenance-views quickstart (Figure 1 of the paper)")

    # 1. Build the workflow and look at its provenance relation.
    workflow = figure1_workflow()
    relation = workflow.provenance_relation()
    report.add_text(
        "Workflow executions (the provenance relation R of Figure 1b):\n"
        + relation.to_text()
    )

    # 2. Standalone privacy of m1 under the Figure-1d view.
    m1 = workflow.module("m1")
    visible = figure1_view_attributes()
    report.add_table(
        "Standalone privacy of m1 (Examples 2-3)",
        ["visible attributes", "privacy level", "worlds"],
        [
            [
                "{a1, a3, a5}",
                standalone_privacy_level(m1, visible),
                count_standalone_worlds(m1, visible),
            ],
            [
                "{a3, a4, a5} (inputs hidden)",
                standalone_privacy_level(m1, {"a3", "a4", "a5"}),
                count_standalone_worlds(m1, {"a3", "a4", "a5"}),
            ],
        ],
    )

    # 3. Hand the workflow to the engine: one Planner, three solvers.
    #    Requirement derivation happens once and is shared by every solve.
    gamma = 2
    planner = Planner(workflow, gamma, kind="set")
    report.add_text(
        "Solvers applicable to this instance (auto picks "
        f"{planner.resolve('auto').name!r}): "
        + ", ".join(spec.name for spec in planner.solvers())
    )
    rows = []
    for solver in ("exact", "set_lp", "greedy"):
        result = planner.solve(solver=solver)
        rows.append(
            [
                solver,
                ", ".join(sorted(result.hidden_attributes)),
                f"{result.cost:.1f}",
                result.guarantee,
            ]
        )
    stats = planner.cache.stats()
    report.add_table(
        f"Secure-View solutions for Γ = {gamma} "
        f"(requirement derivations: {stats.derivation_misses})",
        ["solver", "hidden attributes", "cost", "guarantee"],
        rows,
    )

    # 4. Persist the derivations.  A store-backed Planner writes every
    #    derived artifact to a content-addressed on-disk store — since
    #    store format v2 the pack and relation tiers are *binary*: JSON
    #    metadata pointing at little-endian `.npy` code sidecars that
    #    warm loads memory-map back zero-copy, so co-located processes
    #    share one page-cache copy of every hot pack.  `meta.json`
    #    carries a `format_version` stamp; a pre-v2 store upgrades in
    #    place with `repro store migrate DIR` (atomic, idempotent),
    #    and `repro store stats DIR` reports versions and per-tier sizes.
    import shutil
    import tempfile
    from pathlib import Path

    from repro.engine import DerivationStore

    store_dir = Path(tempfile.mkdtemp(prefix="repro-quickstart-store-"))
    try:
        Planner(workflow, gamma, kind="set", store=DerivationStore(store_dir)).solve(
            solver="exact", verify=True
        )
        warm = Planner(workflow, gamma, kind="set", store=DerivationStore(store_dir))
        warm.solve(solver="exact", verify=True)
        # The stored result satisfied the solve outright; touch the packed
        # kernel tables too so the zero-copy load shows in the counters.
        warm.cache.compiled_workflow(workflow)
        warm_stats = warm.cache.stats()
        disk = DerivationStore(store_dir).disk_stats()
        report.add_text(
            "Store-backed warm solve (second process would behave the same): "
            f"{warm_stats.store_hits} store hit(s), "
            f"{warm_stats.derivation_misses} derivation(s), "
            f"{warm_stats.mmap_packs} pack(s) mmap'd zero-copy "
            f"({warm_stats.mmap_bytes} bytes shared)\n"
            f"On disk: store format v{disk['format_version']}, "
            f"{disk['workflow_entries']} workflow + {disk['module_entries']} "
            f"module entries, {disk['bytes']} bytes"
        )
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    # 5. The same solve over the wire: start the long-lived solve service
    #    in-process, submit through the thin client, and read the serving
    #    counters.  (`repro serve --port 8080` runs the identical server as
    #    a standalone process; `repro submit FILE --url ...` is this
    #    client.)  Identical concurrent requests would coalesce into one
    #    computation — examples/service_demo.py shows that live.
    from repro.service import ServiceClient, ServiceServer, SolveService

    server = ServiceServer(SolveService(workers=2), port=0).start()
    try:
        client = ServiceClient(server.url)
        served = client.solve(workflow=workflow, gamma=gamma, kind="set",
                              solver="exact")
        metrics = client.metrics()
        report.add_text(
            f"Service solve over HTTP ({server.url}): cost {served['cost']:.1f}, "
            f"solver {served['resolved_solver']!r}\n"
            f"/metrics after one request: {metrics['requests']['solve']} solve "
            f"request(s), {metrics['coalesced']} coalesced, cache delta "
            f"{metrics['cache']['derivation_misses']} derivation(s)"
        )

        # A whole grid, asynchronously: POST /jobs/sweep answers with a
        # job handle immediately; the cells run in the background while
        # the client polls progress.  (`repro submit FILE --async
        # [--watch]` is the CLI spelling.)
        handle = client.sweep_async(
            workflows=[workflow], gammas=[gamma], kinds=["set"],
            solvers=["exact", "set_lp", "greedy"],
        )
        job = client.wait_job(handle["job"], timeout=60)
        report.add_text(
            f"Async sweep job {handle['job']}: handle returned before any of "
            f"the {handle['cells']} cells ran; final state {job['state']!r} "
            f"with {job['completed']} completed record(s) in "
            f"{job['seconds']:.3f}s"
        )
    finally:
        server.stop(drain_timeout=10)

    # The thread pool above timeslices one core behind the GIL.  To use
    # real cores for K *distinct* concurrent requests, dispatch leader
    # computations onto the persistent process execution tier instead:
    #
    #     repro serve --exec processes --exec-workers 4 --store DIR
    #
    # (in code: ``SolveService(exec_mode="processes", exec_workers=4)``).
    # Coalescing, caches and drain behave identically; `/metrics` gains
    # an ``exec`` block (dispatched, busy, worker_restarts, merged worker
    # cache deltas) — examples/service_demo.py runs one live.
    #
    # And to scale *out* on one machine, put a replica fleet on the store:
    #
    #     repro fleet --replicas 4 --store DIR --port 8080
    #
    # supervises four full `repro serve` processes behind a health-aware
    # /v1 front (round-robin routing, budgeted respawns, `repro fleet
    # restart` for zero-downtime rolling restarts); identical requests
    # across replicas still derive once, through the shared store's
    # result tier — service_demo.py walks a two-replica fleet live.

    # 6. Verify the optimal view really is Γ-private, both through the
    #    engine's certificate and by the brute-force possible-worlds check.
    optimal = planner.solve(solver="exact", verify=True)
    verified = is_gamma_private_workflow(
        workflow, optimal.solution.visible_attributes, gamma
    )
    view = ProvenanceView(workflow, optimal.solution.visible_attributes)
    report.add_text(
        f"Engine certificate for the optimal view: ok={optimal.certificate.ok}, "
        f"per-module levels {dict(optimal.certificate.module_levels)}\n"
        f"Brute-force verification that the optimal view is {gamma}-private: {verified}\n\n"
        "The provenance view shown to users (hidden attributes projected away):\n"
        + view.relation().to_text()
    )

    print(report.render())


if __name__ == "__main__":
    main()
