"""Quickstart: the Figure-1 workflow from the paper, end to end.

Run with::

    python examples/quickstart.py

The script builds the running example of the paper (three boolean modules
over attributes a1..a7), materializes its provenance relation, checks
Γ-privacy of the top module for the view of Figure 1d, derives requirement
lists from standalone analysis, and solves the Secure-View problem with the
exact solver and two approximation algorithms.
"""

from __future__ import annotations

from repro.analysis import Report, format_table
from repro.core import (
    ProvenanceView,
    SecureViewProblem,
    count_standalone_worlds,
    is_gamma_private_workflow,
    standalone_privacy_level,
)
from repro.optim import solve_exact_ip, solve_greedy, solve_set_lp
from repro.workloads import figure1_view_attributes, figure1_workflow


def main() -> None:
    report = Report("provenance-views quickstart (Figure 1 of the paper)")

    # 1. Build the workflow and look at its provenance relation.
    workflow = figure1_workflow()
    relation = workflow.provenance_relation()
    report.add_text(
        "Workflow executions (the provenance relation R of Figure 1b):\n"
        + relation.to_text()
    )

    # 2. Standalone privacy of m1 under the Figure-1d view.
    m1 = workflow.module("m1")
    visible = figure1_view_attributes()
    report.add_table(
        "Standalone privacy of m1 (Examples 2-3)",
        ["visible attributes", "privacy level", "worlds"],
        [
            [
                "{a1, a3, a5}",
                standalone_privacy_level(m1, visible),
                count_standalone_worlds(m1, visible),
            ],
            [
                "{a3, a4, a5} (inputs hidden)",
                standalone_privacy_level(m1, {"a3", "a4", "a5"}),
                count_standalone_worlds(m1, {"a3", "a4", "a5"}),
            ],
        ],
    )

    # 3. Derive a Secure-View instance for Γ = 2 and solve it three ways.
    gamma = 2
    problem = SecureViewProblem.from_standalone_analysis(workflow, gamma, kind="set")
    rows = []
    for label, solver in (
        ("exact IP", solve_exact_ip),
        ("lp rounding (l_max approx)", solve_set_lp),
        ("greedy (gamma+1 approx)", solve_greedy),
    ):
        solution = solver(problem)
        rows.append(
            [
                label,
                ", ".join(sorted(solution.hidden_attributes)),
                f"{solution.cost():.1f}",
            ]
        )
    report.add_table(
        f"Secure-View solutions for Γ = {gamma}", ["solver", "hidden attributes", "cost"], rows
    )

    # 4. Verify the optimal view really is Γ-private by brute force, and show it.
    optimal = solve_exact_ip(problem)
    verified = is_gamma_private_workflow(workflow, optimal.visible_attributes, gamma)
    view = ProvenanceView(workflow, optimal.visible_attributes)
    report.add_text(
        f"Brute-force verification that the optimal view is {gamma}-private: {verified}\n\n"
        "The provenance view shown to users (hidden attributes projected away):\n"
        + view.relation().to_text()
    )

    print(report.render())


if __name__ == "__main__":
    main()
