"""Incremental re-solve: evolve a workflow one edit at a time.

Run with::

    python examples/incremental_edit.py [--store DIR]

Since PR 4 every requirement derivation is keyed by *module* content
fingerprint, so an edited workflow re-derives only the modules whose
content actually changed.  This script builds a small workflow family — an
edit-chain in which each variant re-rolls one module of the previous one —
and walks it with :meth:`repro.engine.Planner.evolve`, printing the reuse
counters (``reused_modules`` / ``rederived_modules``) after every step.

With ``--store DIR`` the per-module artifacts persist on disk under the
store's shared ``modules/`` tier: run the script twice and the second run
re-derives nothing at all.
"""

from __future__ import annotations

import sys

from repro.engine import Planner
from repro.workloads import module_fingerprint, workflow_family


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    store = argv[argv.index("--store") + 1] if "--store" in argv else None

    # An edit-chain: base plus three variants, each re-rolling one module.
    family = workflow_family(n_variants=3, seed=7, n_modules=5, topology="chain")
    base = family[0]
    print(f"family of {len(family)} workflows over {len(base)} modules each\n")

    planner = Planner(base, gamma=2, kind="set", store=store)
    result = planner.solve()
    stats = planner.cache.stats()
    print(
        f"base solve        : cost={result.cost:.3f}  "
        f"rederived={stats.rederived_modules}  reused={stats.reused_modules}"
    )

    for step, variant in enumerate(family[1:], start=1):
        # Which modules changed?  Diff the content fingerprints.
        old = {m.name: module_fingerprint(m) for m in planner.workflow.modules}
        edited = {
            m.name: m
            for m in variant.modules
            if module_fingerprint(m) != old[m.name]
        }
        before = planner.cache.stats()
        planner = planner.evolve(replace=edited)
        result = planner.solve()
        delta = planner.cache.stats().delta(before)
        print(
            f"edit {step} ({', '.join(sorted(edited))})      : "
            f"cost={result.cost:.3f}  rederived={delta.rederived_modules}  "
            f"reused={delta.reused_modules}"
        )

    totals = planner.cache.stats()
    print(
        f"\ntotal: {totals.rederived_modules} module derivations for "
        f"{len(family)} workflows x {len(base)} modules "
        f"({totals.reused_modules} lookups served from the shared tier)"
    )
    if store:
        print(f"store: {store} (re-run to serve everything from disk)")


if __name__ == "__main__":
    main()
