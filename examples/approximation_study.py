"""Approximation study: how close the paper's algorithms get to the optimum.

Sweeps random all-private workflows of increasing size and compares the exact
IP optimum against the three approximation algorithms studied in the paper:

* Algorithm 1 (LP relaxation + randomized rounding) for cardinality
  constraints — O(log n) guarantee (Theorem 5),
* threshold rounding of the set-constraint LP — ℓ_max guarantee (Theorem 6),
* the per-module greedy — (γ+1) guarantee under bounded data sharing
  (Theorem 7), which doubles as the Example-5 "union of standalone optima"
  baseline.

Run with::

    python examples/approximation_study.py
"""

from __future__ import annotations

from repro.analysis import Report, summarize_ratios
from repro.optim import (
    solve_cardinality_rounding,
    solve_exact_ip,
    solve_greedy,
    solve_set_lp,
)
from repro.workloads import example5_problem, random_problem


def cardinality_sweep(report: Report, sizes=(10, 20, 30), seeds=range(3)) -> None:
    rows = []
    for n_modules in sizes:
        rounding_ratios, greedy_ratios = [], []
        for seed in seeds:
            problem = random_problem(
                n_modules=n_modules, kind="cardinality", seed=seed * 100 + n_modules
            )
            optimum = solve_exact_ip(problem).cost()
            rounding_ratios.append(
                solve_cardinality_rounding(problem, seed=seed).cost() / optimum
            )
            greedy_ratios.append(solve_greedy(problem).cost() / optimum)
        rows.append(
            [
                n_modules,
                f"{summarize_ratios(rounding_ratios).mean:.2f}",
                f"{summarize_ratios(rounding_ratios).maximum:.2f}",
                f"{summarize_ratios(greedy_ratios).mean:.2f}",
            ]
        )
    report.add_table(
        "Cardinality constraints (Theorem 5): ratio to optimum",
        ["modules", "lp rounding mean", "lp rounding max", "greedy mean"],
        rows,
    )


def set_sweep(report: Report, sizes=(10, 20, 30), seeds=range(3)) -> None:
    rows = []
    for n_modules in sizes:
        ratios = []
        lmax = 0
        for seed in seeds:
            problem = random_problem(
                n_modules=n_modules, kind="set", seed=seed * 100 + n_modules
            )
            lmax = max(lmax, problem.lmax)
            optimum = solve_exact_ip(problem).cost()
            ratios.append(solve_set_lp(problem).cost() / optimum)
        summary = summarize_ratios(ratios)
        rows.append([n_modules, f"{summary.mean:.2f}", f"{summary.maximum:.2f}", lmax])
    report.add_table(
        "Set constraints (Theorem 6): ratio to optimum vs the l_max guarantee",
        ["modules", "mean ratio", "max ratio", "l_max"],
        rows,
    )


def example5_sweep(report: Report, sizes=(4, 8, 16, 32)) -> None:
    rows = []
    for n in sizes:
        problem = example5_problem(n)
        optimum = solve_exact_ip(problem).cost()
        baseline = solve_greedy(problem).cost()
        rows.append([n, f"{baseline:.1f}", f"{optimum:.1f}", f"{baseline / optimum:.1f}"])
    report.add_table(
        "Example 5: union of standalone optima vs workflow optimum (Ω(n) gap)",
        ["n middle modules", "baseline cost", "optimum cost", "gap"],
        rows,
    )


def main() -> None:
    report = Report("Approximation study: Secure-View algorithms vs exact optima")
    cardinality_sweep(report)
    set_sweep(report)
    example5_sweep(report)
    report.add_text(
        "Observations: the LP-based algorithms stay within a small constant of\n"
        "the optimum on random instances (far below their worst-case factors),\n"
        "while the per-module greedy degrades exactly on the data-sharing-heavy\n"
        "instances the paper's Example 5 predicts."
    )
    print(report.render())


if __name__ == "__main__":
    main()
