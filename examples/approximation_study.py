"""Approximation study: how close the paper's algorithms get to the optimum.

Sweeps random all-private workflows of increasing size and compares the exact
IP optimum against the three approximation algorithms studied in the paper:

* Algorithm 1 (LP relaxation + randomized rounding) for cardinality
  constraints — O(log n) guarantee (Theorem 5),
* threshold rounding of the set-constraint LP — ℓ_max guarantee (Theorem 6),
* the per-module greedy — (γ+1) guarantee under bounded data sharing
  (Theorem 7), which doubles as the Example-5 "union of standalone optima"
  baseline.

Every grid below goes through the parallel sweep API
(:func:`repro.analysis.sweep` on top of :func:`repro.engine.run_sweep`):
each (instance, solver) cell runs through the executor, ``--jobs N`` fans
the grid over worker processes, and ``--store DIR`` persists derivations
and results so a re-run of the study is served from the warm store.

Run with::

    python examples/approximation_study.py [--jobs N] [--store DIR]
"""

from __future__ import annotations

import argparse

from repro.analysis import Report, summarize_ratios, sweep
from repro.engine import default_jobs
from repro.workloads import example5_problem, random_problem


def _ratios_by_value(records, method: str) -> dict[object, list[float]]:
    """Group the sweep's approximation ratios by parameter value."""
    grouped: dict[object, list[float]] = {}
    for record in records:
        if record.get("method") == method and "ratio" in record:
            grouped.setdefault(record["param"], []).append(record["ratio"])
    return grouped


def cardinality_sweep(
    report: Report, sizes=(10, 20, 30), seeds=range(3), n_jobs=1, store=None
) -> None:
    values = [(n_modules, seed) for n_modules in sizes for seed in seeds]
    records = sweep(
        lambda value: random_problem(
            n_modules=value[0], kind="cardinality", seed=value[1] * 100 + value[0]
        ),
        values,
        methods=["lp_rounding", "greedy"],
        seeds=(0,),
        n_jobs=n_jobs,
        store=store,
    )
    rounding = _ratios_by_value(records, "lp_rounding")
    greedy = _ratios_by_value(records, "greedy")
    rows = []
    for n_modules in sizes:
        rounding_ratios = [
            ratio
            for (n, _seed), ratios in rounding.items()
            if n == n_modules
            for ratio in ratios
        ]
        greedy_ratios = [
            ratio
            for (n, _seed), ratios in greedy.items()
            if n == n_modules
            for ratio in ratios
        ]
        rows.append(
            [
                n_modules,
                f"{summarize_ratios(rounding_ratios).mean:.2f}",
                f"{summarize_ratios(rounding_ratios).maximum:.2f}",
                f"{summarize_ratios(greedy_ratios).mean:.2f}",
            ]
        )
    report.add_table(
        "Cardinality constraints (Theorem 5): ratio to optimum",
        ["modules", "lp rounding mean", "lp rounding max", "greedy mean"],
        rows,
    )


def set_sweep(
    report: Report, sizes=(10, 20, 30), seeds=range(3), n_jobs=1, store=None
) -> None:
    values = [(n_modules, seed) for n_modules in sizes for seed in seeds]
    records = sweep(
        lambda value: random_problem(
            n_modules=value[0], kind="set", seed=value[1] * 100 + value[0]
        ),
        values,
        methods=["set_lp"],
        n_jobs=n_jobs,
        store=store,
    )
    rows = []
    for n_modules in sizes:
        ratios, lmax = [], 0
        for record in records:
            if record["param"][0] != n_modules:
                continue
            lmax = max(lmax, int(record.get("lmax", 0)))
            if record.get("method") == "set_lp" and "ratio" in record:
                ratios.append(record["ratio"])
        summary = summarize_ratios(ratios)
        rows.append([n_modules, f"{summary.mean:.2f}", f"{summary.maximum:.2f}", lmax])
    report.add_table(
        "Set constraints (Theorem 6): ratio to optimum vs the l_max guarantee",
        ["modules", "mean ratio", "max ratio", "l_max"],
        rows,
    )


def example5_sweep(report: Report, sizes=(4, 8, 16, 32)) -> None:
    # Example-5 stars contain a module whose arity grows with n, so the
    # tabulated serialization the executor ships to workers is exponential:
    # this sweep deliberately stays on the in-process path (n_jobs=1).
    records = sweep(
        lambda n: example5_problem(int(n)),
        sizes,
        methods=["greedy"],
        parameter_name="n",
        n_jobs=1,
    )
    rows = []
    for n in sizes:
        per_value = [record for record in records if record["n"] == n]
        optimum = next(
            record["cost"] for record in per_value if record["method"] == "exact_ip"
        )
        baseline = next(
            record for record in per_value if record["method"] != "exact_ip"
        )
        rows.append(
            [n, f"{baseline['cost']:.1f}", f"{optimum:.1f}", f"{baseline['ratio']:.1f}"]
        )
    report.add_table(
        "Example 5: union of standalone optima vs workflow optimum (Ω(n) gap)",
        ["n middle modules", "baseline cost", "optimum cost", "gap"],
        rows,
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=default_jobs(),
        help="worker processes for the parallel sweeps",
    )
    parser.add_argument(
        "--store", default=None,
        help="persistent derivation store directory (re-runs are served warm)",
    )
    args = parser.parse_args(argv)
    report = Report("Approximation study: Secure-View algorithms vs exact optima")
    cardinality_sweep(report, n_jobs=args.jobs, store=args.store)
    set_sweep(report, n_jobs=args.jobs, store=args.store)
    example5_sweep(report)
    report.add_text(
        "Observations: the LP-based algorithms stay within a small constant of\n"
        "the optimum on random instances (far below their worst-case factors),\n"
        "while the per-module greedy degrades exactly on the data-sharing-heavy\n"
        "instances the paper's Example 5 predicts."
    )
    print(report.render())


if __name__ == "__main__":
    main()
