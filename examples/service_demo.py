"""The solve service live: coalescing, module reuse, graceful shutdown.

Run with::

    python examples/service_demo.py

The script starts a :class:`~repro.service.ServiceServer` in-process on an
ephemeral port (the same server ``repro serve`` runs standalone) and walks
through the three serving effects the service exists for:

1. **coalescing** — K identical requests fired concurrently attach to one
   computation; ``/metrics`` shows ``coalesced == K - 1`` and a single
   requirement derivation;
2. **module-tier reuse** — a *different* workflow sharing modules with the
   first reuses their derivations (``reused_modules``), so the serving win
   extends beyond byte-identical requests;
3. **async jobs** — a grid posted to ``/jobs/sweep`` answers with a job
   handle immediately; the client polls ``GET /jobs/<id>`` for progress
   and partial records while the cells run in the background;
4. **graceful shutdown** — ``POST /shutdown`` (or SIGTERM on ``repro
   serve``) drains in-flight work before the process exits;
5. **the process execution tier** — the same service with
   ``exec_mode="processes"`` (``repro serve --exec processes
   --exec-workers N``) dispatches leader computations onto long-lived
   worker processes, so distinct concurrent requests use real cores
   instead of timeslicing one behind the GIL.  ``/metrics`` gains an
   ``exec`` block and merges the workers' cache deltas;
6. **a replica fleet on one store** — ``repro fleet --replicas 2 --store
   DIR`` supervises two full ``repro serve`` processes sharing one store
   behind a health-aware ``/v1`` proxy front: identical requests spread
   over both replicas derive once fleet-wide (every repeat is a store
   result-tier hit), and a rolling restart cycles the replicas one at a
   time with zero failed requests.

Process mode spawns workers that re-import this module, so the
``if __name__ == "__main__"`` guard at the bottom is load-bearing —
exactly as with :mod:`concurrent.futures` process pools.
"""

from __future__ import annotations

import threading

from repro.core import Workflow
from repro.service import ServiceClient, ServiceServer, SolveService
from repro.workloads import random_total_module, workflow_to_dict

K = 5  # concurrent identical requests in the coalescing phase


def main() -> None:
    service = SolveService(workers=2, default_timeout=120.0)
    server = ServiceServer(service, port=0).start()
    client = ServiceClient(server.url)
    print(f"service up at {server.url} (healthz: {client.healthz()['status']})")

    modules = [random_total_module(40 + i, 5, 3, f"m{i}", f"s{i}_") for i in range(3)]
    base = Workflow(list(modules), name="demo-base")
    payload = workflow_to_dict(base)

    # -- 1. K identical concurrent requests, one computation -----------------
    records = []

    def submit() -> None:
        records.append(
            client.solve(workflow=payload, gamma=2, kind="cardinality")
        )

    threads = [threading.Thread(target=submit) for _ in range(K)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    metrics = client.metrics()
    print(
        f"\ncoalescing: {K} identical concurrent requests -> "
        f"{metrics['cache']['derivation_misses']} derivation(s), "
        f"{metrics['coalesced']} coalesced, "
        f"all costs {{{records[0]['cost']:.1f}}}"
    )

    # -- 2. an overlapping workflow reuses the module tier -------------------
    modules[0] = random_total_module(99, 5, 3, "m0", "s0_")  # re-roll one table
    edited = Workflow(list(modules), name="demo-edited")
    client.solve(workflow=workflow_to_dict(edited), gamma=2, kind="cardinality")
    metrics = client.metrics()
    print(
        "module reuse: the edited workflow re-derived "
        f"{metrics['cache']['rederived_modules'] - len(modules)} module(s) and "
        f"reused {metrics['cache']['reused_modules']} from the shared tier"
    )

    # -- 3. an async sweep job: handle now, records in the background --------
    handle = client.sweep_async(
        workflows=[payload, workflow_to_dict(edited)],
        gammas=[2],
        kinds=["cardinality"],
        solvers=["auto"],
        seeds=list(range(5)),
    )
    print(
        f"\nasync job {handle['job']}: submitted {handle['cells']} cells, "
        f"state {handle['state']!r} before any ran"
    )

    def show_progress(status: dict) -> None:
        landed = status["completed"] + status["failed"]
        print(f"  poll: {status['state']} {landed}/{status['cells']} cell(s)")

    final = client.wait_job(handle["job"], timeout=120, poll=0.05,
                            on_progress=show_progress)
    print(
        f"job finished {final['state']!r}: {final['completed']} completed / "
        f"{final['failed']} failed in {final['seconds']:.3f}s; "
        f"jobs metrics: {client.metrics()['jobs']}"
    )

    # -- 4. graceful shutdown ------------------------------------------------
    print(f"\nshutdown: {client.shutdown()['status']}")
    server._thread.join(timeout=30)
    print(f"server thread alive: {server._thread.is_alive()} (drained and closed)")

    # -- 5. the multi-core execution tier ------------------------------------
    # `repro serve --exec processes --exec-workers 2` is the CLI spelling.
    service = SolveService(workers=2, exec_mode="processes", exec_workers=2,
                           default_timeout=120.0)
    service.exec_tier.wait_ready(timeout=120)
    server = ServiceServer(service, port=0).start()
    try:
        client = ServiceClient(server.url)
        bodies = [payload, workflow_to_dict(edited)]
        threads = [
            threading.Thread(
                target=client.solve,
                kwargs={"workflow": body, "gamma": 2, "kind": "cardinality"},
            )
            for body in bodies
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        exec_metrics = client.metrics()["exec"]
        print(
            f"\nexecution tier: {len(bodies)} distinct concurrent requests on "
            f"exec={exec_metrics['mode']}:{exec_metrics['workers']} -> "
            f"{exec_metrics['dispatched']} dispatched, "
            f"{exec_metrics['completed']} completed on "
            f"{exec_metrics['alive']} live worker(s), healthy="
            f"{exec_metrics['healthy']}"
        )
    finally:
        print(f"shutdown: {client.shutdown()['status']}")
        server._thread.join(timeout=30)

    # -- 6. a two-replica fleet on one store ---------------------------------
    # `repro fleet --replicas 2 --store DIR --port 8080` is the CLI
    # spelling.  Each replica is a full `repro serve` subprocess; the front
    # proxies /v1 with round-robin routing, drops draining/unreachable
    # replicas from rotation, and respawns dead ones.  The replicas run
    # with no in-memory result cache so the cross-replica reuse below is
    # visibly the *shared store's* result tier at work.
    import shutil
    import tempfile

    from repro.service import FleetSupervisor

    store_dir = tempfile.mkdtemp(prefix="demo-fleet-store-")
    supervisor = FleetSupervisor(
        replicas=2, store=store_dir, port=0,
        serve_argv=["--workers", "2", "--result-cache-size", "0"],
    )
    supervisor.start()
    try:
        client = ServiceClient(supervisor.url)
        for _ in range(4):
            record = client.solve(workflow=payload, gamma=2, kind="cardinality")
        metrics = client.metrics()
        per_replica = {
            rid: block["requests"]["solve"]
            for rid, block in metrics["replicas"].items()
        }
        print(
            f"\nfleet: 4 identical requests over {metrics['fleet']['replicas']} "
            f"replicas ({per_replica} solves/replica) -> "
            f"{metrics['totals']['cache']['derivation_misses']} derivation "
            f"fleet-wide, {metrics['totals']['result_hits']['store']} store "
            f"result hit(s); last answer from_store={record['from_store']}"
        )

        summary = supervisor.rolling_restart(drain_timeout=60)
        health = client.healthz()
        print(
            f"rolling restart: cycled {summary['restarted']} one at a time "
            f"(drain -> respawn -> readmit); fleet now {health['status']!r} "
            f"with {health['in_rotation']} replica(s) in rotation"
        )
    finally:
        supervisor.stop(drain_timeout=60)
        shutil.rmtree(store_dir, ignore_errors=True)
    print("fleet drained and stopped")


if __name__ == "__main__":
    main()
