"""Hardness gallery: the paper's lower-bound constructions, executed.

Every hardness proof in the paper is a construction; this example builds one
instance of each and shows the property the proof relies on:

* Theorem 1 — Safe-View vs set disjointness (and the Ω(N) scan),
* Theorem 2 — Safe-View vs UNSAT,
* Theorem 3 — the adaptive oracle adversary and its cost gap,
* Theorem 5 / 9 — set cover inside Secure-View (all-private and general),
* Theorem 6 / 10 — label cover inside Secure-View,
* Theorem 7 — vertex cover inside Secure-View without data sharing.

Run with::

    python examples/hardness_gallery.py
"""

from __future__ import annotations

from repro.analysis import Report
from repro.core import minimum_cost_safe_subset
from repro.optim import solve_exact_ip
from repro.reductions import (
    AdversarialSafeViewOracle,
    CountingDataSupplier,
    brute_force_satisfiable,
    exact_label_cover,
    exact_set_cover,
    exact_vertex_cover,
    input_names,
    label_cover_to_set_secure_view,
    make_m1,
    make_m2,
    random_cnf,
    random_cubic_graph,
    random_disjointness_instance,
    random_label_cover,
    random_set_cover,
    safe_view_via_supplier,
    set_cover_to_general_secure_view,
    set_cover_to_secure_view,
    unsat_safe_view_decision,
    vertex_cover_to_secure_view,
)


def theorem1_section(report: Report) -> None:
    rows = []
    for force, label in ((False, "intersecting"), (True, "disjoint")):
        instance = random_disjointness_instance(64, force_disjoint=force, seed=7)
        supplier = CountingDataSupplier(instance)
        safe = safe_view_via_supplier(supplier)
        rows.append([label, safe, supplier.calls, supplier.n_rows])
    report.add_table(
        "Theorem 1: Safe-View = set disjointness (data-supplier calls)",
        ["instance", "view safe", "supplier calls", "relation size"],
        rows,
    )


def theorem2_section(report: Report) -> None:
    rows = []
    for seed in range(4):
        formula = random_cnf(5, 12, seed=seed)
        rows.append(
            [
                f"random 3-CNF #{seed}",
                brute_force_satisfiable(formula),
                unsat_safe_view_decision(formula),
            ]
        )
    report.add_table(
        "Theorem 2: Safe-View of the gadget = UNSAT",
        ["formula", "satisfiable", "view safe"],
        rows,
    )


def theorem3_section(report: Report) -> None:
    ell = 12
    oracle = AdversarialSafeViewOracle(ell)
    for subset in (["x1", "x2", "x3"], ["x1"], ["x4", "x5", "x6"]):
        oracle.is_safe(subset)
    m1_cost = minimum_cost_safe_subset(make_m1(8), 2, hidable=input_names(8)).cost
    m2_cost = minimum_cost_safe_subset(
        make_m2(8, input_names(8)[:4]), 2, hidable=input_names(8)
    ).cost
    report.add_table(
        "Theorem 3: the oracle adversary game",
        ["quantity", "value"],
        [
            ["candidate special sets (ℓ=12)", oracle.total_candidates],
            ["candidates still alive after 3 queries", oracle.remaining_candidates],
            ["query lower bound (4/3)^(ℓ/2)", f"{oracle.query_lower_bound():.1f}"],
            ["m1 cheapest safe hidden cost (ℓ=8)", m1_cost],
            ["m2 cheapest safe hidden cost (ℓ=8)", m2_cost],
        ],
    )


def covering_sections(report: Report) -> None:
    set_cover = random_set_cover(8, 6, seed=11)
    vertex_cover = random_cubic_graph(8, seed=11)
    label_cover = random_label_cover(2, 2, 2, seed=11)

    rows = [
        [
            "Theorem 5: set cover (all-private, cardinality)",
            len(exact_set_cover(set_cover)),
            solve_exact_ip(set_cover_to_secure_view(set_cover)).cost(),
        ],
        [
            "Theorem 9: set cover (general, privatization only)",
            len(exact_set_cover(set_cover)),
            solve_exact_ip(set_cover_to_general_secure_view(set_cover)).cost(),
        ],
        [
            "Theorem 7: vertex cover (|E| + K)",
            vertex_cover.n_edges + len(exact_vertex_cover(vertex_cover)),
            solve_exact_ip(vertex_cover_to_secure_view(vertex_cover)).cost(),
        ],
        [
            "Theorem 6: label cover (set constraints)",
            label_cover.cost(exact_label_cover(label_cover)),
            solve_exact_ip(label_cover_to_set_secure_view(label_cover)).cost(),
        ],
    ]
    report.add_table(
        "Covering reductions: source optimum vs Secure-View optimum",
        ["reduction", "source optimum", "secure-view optimum"],
        rows,
    )


def main() -> None:
    report = Report("Hardness gallery: the paper's lower-bound constructions")
    theorem1_section(report)
    theorem2_section(report)
    theorem3_section(report)
    covering_sections(report)
    print(report.render())


if __name__ == "__main__":
    main()
