"""Legacy shim for environments whose setuptools lacks PEP 660 support.

All package metadata lives in ``pyproject.toml``; this file only enables
``pip install -e .`` (via the legacy ``setup.py develop`` path) on
toolchains without the ``wheel`` package, e.g. offline containers.
"""
from setuptools import setup

setup()
