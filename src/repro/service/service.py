"""The long-lived solve service: hot cache, worker pool, coalescing.

A :class:`SolveService` is the process-resident core the HTTP layer
(:mod:`repro.service.server`) fronts.  It owns exactly one
:class:`~repro.engine.cache.DerivationCache` (optionally backed by a
persistent :class:`~repro.engine.store.DerivationStore`) and a thread pool,
and it keeps them **hot**: every request that reaches it reuses the same
compiled kernel packs, per-module requirement lists and planners, so the
amortized cost of a solve approaches the solver call itself — the
interpreter start-up, store attachment and kernel compilation a one-shot
CLI invocation pays per run are paid once per *process*.

Request flow for ``solve_payload``:

1. parse + canonicalize the body into a :class:`~repro.service.jobs.SolveJob`
   (its :attr:`~repro.service.jobs.SolveJob.key` is the coalescing key);
2. probe the bounded in-memory **result cache** — a repeat of a completed
   request is answered without touching the pool;
3. :meth:`~repro.service.coalescer.RequestCoalescer.join` — an identical
   in-flight request attaches to the running computation (``coalesced``);
4. a leader submits the computation to the worker pool; completion is
   published through a done-callback, so a leader whose *wait* times out
   still resolves its followers and still populates the caches;
5. inside the computation, the persistent store's result tier is probed
   first (sharing entries with ``repro sweep --store`` and warm CLI runs),
   then the planner solves through the shared thread-safe cache.

``sweep_payload`` expands a grid into per-cell jobs and pushes them all
through the *same* pipeline, so sweep cells coalesce with each other and
with concurrent ``/solve`` traffic, and overlapping workflows share the
module tier (``reused_modules`` in ``/metrics`` counts it).

Where a leader computation *burns CPU* is the execution tier
(``exec_mode``): ``"threads"`` runs it on the pool thread itself (one core,
GIL-bound), ``"processes"`` ships it to a persistent
:class:`~repro.service.exec_tier.ProcessExecTier` worker so K distinct
concurrent requests use K cores.  Either way the pool thread owns the
coalescer publication, so everything above this paragraph is
mode-independent.

Shutdown is graceful by construction: :meth:`SolveService.drain` stops
admitting new work (503), waits for every in-flight computation to publish
its result, then shuts the pool down.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Mapping

from ..engine import DerivationCache, Planner
from ..engine.store import DerivationStore, ResultKey
from .background import JobManager, MaintenanceScheduler
from .coalescer import RequestCoalescer
from .exec_tier import ProcessExecTier, TierUnavailable
from .jobs import (
    InstanceCache,
    ServiceError,
    ServiceTimeout,
    SolveJob,
    parse_solve_payload,
)

__all__ = ["SolveService"]

#: Default bounds on memoized planners and completed-result records (FIFO
#: eviction; override per service via ``planner_cache_size`` /
#: ``result_cache_size``).
STATE_LIMIT = 128
RESULT_LIMIT = 256


class SolveService:
    """Thread-safe solve core shared by every handler thread.

    Parameters
    ----------
    store:
        Persistent derivation store (instance or directory path) attached
        as the cache's back tier; omit for a purely in-memory service.
    workers:
        Worker threads executing solve computations.  Handler threads never
        compute — they coalesce, submit and wait — so the pool bounds
        concurrent solver work independently of connection count.
    registry:
        Solver registry for dispatch; defaults to the process-wide one.
    default_timeout:
        Per-request deadline (seconds) when the request does not set its
        own ``timeout``; ``None`` waits indefinitely.
    reuse_results:
        Serve repeated completed requests from the in-memory result cache
        and the store's result tier.  Note this applies to seeded *and*
        unseeded randomized solves alike (matching the sweep executor):
        clients wanting fresh randomness per call should vary ``seed``.
    result_cache_size / planner_cache_size:
        Bounds on the completed-result and planner memo tables (FIFO
        eviction past the bound).
    result_ttl:
        Seconds a completed result (and an idle planner) stays cached;
        ``None`` keeps entries until evicted by the size bound.  Enforced
        lazily on lookup and eagerly by the maintenance pass.
    job_ttl / max_jobs:
        Async-job table policy (see :class:`~repro.service.background.JobManager`):
        how long a *finished* job stays queryable, and how many jobs the
        table tracks before refusing submits with 429.
    store_max_bytes:
        Byte budget the maintenance pass GCs an attached store down to;
        ``None`` disables the GC task.
    warmup:
        Re-compile this many of the store's most-requested workflow
        fingerprints at construction (popularity persists in the store's
        meta tier), so a restarted service answers its first solves of
        popular instances from the hot cache.
    maintenance_interval:
        Seconds between background maintenance passes (jittered ±10%);
        ``0`` or ``None`` disables the thread (tasks still run on demand
        via ``service.maintenance.run_once()``).
    exec_mode:
        Where leader computations burn CPU: ``"threads"`` (default — the
        in-process pool; also the fallback when the process tier is
        unavailable) or ``"processes"`` (a persistent
        :class:`~repro.service.exec_tier.ProcessExecTier`; K *distinct*
        concurrent solves then use K cores instead of timeslicing the
        GIL).  Coalescing, result caches, metrics and drain semantics are
        identical in both modes.
    exec_workers:
        Worker processes for the process tier (defaults to ``workers``);
        only meaningful with ``exec_mode="processes"``.
    replica_id:
        Identity of this replica in a fleet (``repro fleet`` passes
        ``--replica-id r<i>`` to each ``repro serve`` it spawns); surfaced
        in ``/v1/healthz``, ``/v1/metrics`` and ``/v1/version`` so
        operators and the fleet front can tell which process answered.
        ``None`` (the default) means a standalone server.
    """

    def __init__(
        self,
        store: "DerivationStore | str | None" = None,
        workers: int = 4,
        registry: Any = None,
        default_timeout: float | None = 60.0,
        reuse_results: bool = True,
        result_cache_size: int = RESULT_LIMIT,
        planner_cache_size: int = STATE_LIMIT,
        result_ttl: float | None = None,
        job_ttl: float | None = 600.0,
        max_jobs: int = 256,
        store_max_bytes: int | None = None,
        warmup: int = 0,
        maintenance_interval: float | None = 30.0,
        exec_mode: str = "threads",
        exec_workers: int | None = None,
        replica_id: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        # 0 disables the in-memory result cache entirely: every repeat then
        # reads the store's result tier, which is what a fleet benchmark
        # measuring *cross-replica* reuse needs.
        if result_cache_size < 0:
            raise ValueError("result_cache_size must be >= 0")
        if planner_cache_size < 1:
            raise ValueError("planner_cache_size must be >= 1")
        if result_ttl is not None and result_ttl <= 0:
            raise ValueError("result_ttl must be positive (or None)")
        if job_ttl is not None and job_ttl <= 0:
            raise ValueError("job_ttl must be positive (or None)")
        if max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")
        if store_max_bytes is not None and store_max_bytes < 0:
            raise ValueError("store_max_bytes must be non-negative (or None)")
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        if maintenance_interval is not None and maintenance_interval < 0:
            raise ValueError("maintenance_interval must be non-negative")
        if exec_mode not in ("threads", "processes"):
            raise ValueError("exec_mode must be 'threads' or 'processes'")
        if exec_workers is not None and exec_workers < 1:
            raise ValueError("exec_workers must be >= 1 (or None)")
        if exec_workers is not None and exec_mode != "processes":
            raise ValueError("exec_workers requires exec_mode='processes'")
        if exec_mode == "processes" and registry is not None:
            raise ValueError(
                "a custom solver registry cannot cross the process boundary; "
                "use exec_mode='threads'"
            )
        if isinstance(store, (str,)) or hasattr(store, "__fspath__"):
            store = DerivationStore(store)
        self.cache = DerivationCache(store=store)
        self.registry = registry
        self.replica_id = replica_id
        self.workers = workers
        self.default_timeout = default_timeout
        self.reuse_results = reuse_results
        self.result_cache_size = result_cache_size
        self.planner_cache_size = planner_cache_size
        self.result_ttl = result_ttl
        self.pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-solve"
        )
        self.coalescer = RequestCoalescer()
        self.instances = InstanceCache()
        # Both memo tables stamp entries with their insertion time so the
        # TTL task (and lazy lookups) can expire them.
        self._planners: OrderedDict[tuple, tuple[Planner, float]] = OrderedDict()
        self._results: OrderedDict[tuple, tuple[dict[str, Any], float]] = OrderedDict()
        self._state = threading.Lock()
        self._idle = threading.Condition(self._state)
        self._in_flight = 0
        self._draining = False
        #: Pending popularity bumps (fingerprint -> requests), flushed to
        #: the store's meta tier by the maintenance pass and on drain.
        self._popularity: dict[str, int] = {}
        #: Set the moment a drain begins (before it waits) — lets callers
        #: and tests sequence "no new work admitted" without polling.
        self.drain_started = threading.Event()
        self._started_monotonic = time.monotonic()
        self._started_at = time.time()
        self._baseline = self.cache.stats()
        self.request_counts: dict[str, int] = {
            "solve": 0,
            "sweep": 0,
            "jobs": 0,
            "healthz": 0,
            "metrics": 0,
        }
        self.error_count = 0
        self.timeout_count = 0
        self.result_hits_memory = 0
        self.result_hits_store = 0
        self.exec_mode = exec_mode
        self.exec_inline_fallbacks = 0
        #: The process execution tier (``None`` in thread mode).  Spawning
        #: is asynchronous — workers announce readiness over their pipes —
        #: so construction does not block on interpreter start-up.
        self.exec_tier: ProcessExecTier | None = None
        if exec_mode == "processes":
            self.exec_tier = ProcessExecTier(
                workers=exec_workers or workers,
                store_path=str(store.root) if store is not None else None,
                reuse_results=reuse_results,
                warmup=warmup,
            )
        self.jobs = JobManager(self, job_ttl=job_ttl, max_jobs=max_jobs)
        self.maintenance = MaintenanceScheduler(
            self,
            interval=maintenance_interval,
            store_max_bytes=store_max_bytes,
            warmup=warmup,
        )
        if warmup:
            self.maintenance.warm_up(warmup)
        self.maintenance.start()

    # -- bookkeeping under the state lock ---------------------------------------
    def _count(self, counter: str) -> None:
        with self._state:
            self.request_counts[counter] += 1

    def _count_failure(self, exc: BaseException) -> None:
        with self._state:
            if isinstance(exc, ServiceTimeout):
                self.timeout_count += 1
            else:
                self.error_count += 1

    @property
    def draining(self) -> bool:
        with self._state:
            return self._draining

    @property
    def in_flight(self) -> int:
        """Computations currently queued or running in the pool."""
        with self._state:
            return self._in_flight

    # -- planner and result memoization -----------------------------------------
    def _planner_for(self, job: SolveJob) -> Planner:
        key = (job.source, job.fingerprint, job.gamma, job.kind, job.backend)
        with self._state:
            entry = self._planners.get(key)
            if entry is not None:
                return entry[0]
        if job.source == "workflow":
            planner = Planner(
                job.instance,
                job.gamma,
                kind=job.kind,
                cache=self.cache,
                registry=self.registry,
                backend=job.backend,
            )
        else:
            planner = Planner.from_problem(
                job.instance,
                cache=self.cache,
                registry=self.registry,
                backend=job.backend,
            )
        with self._state:
            # First construction wins so concurrent requests converge on one
            # planner (and therefore one identity-keyed cache entry set).
            existing = self._planners.get(key)
            if existing is not None:
                return existing[0]
            while len(self._planners) >= self.planner_cache_size:
                self._planners.popitem(last=False)
            self._planners[key] = (planner, time.monotonic())
            return planner

    def _remember_result(self, key: tuple, record: Mapping[str, Any]) -> None:
        if self.result_cache_size == 0:
            return
        with self._state:
            while len(self._results) >= self.result_cache_size:
                self._results.popitem(last=False)
            self._results[key] = (dict(record), time.monotonic())

    def _lookup_result(self, key: tuple) -> dict[str, Any] | None:
        if self.result_cache_size == 0:
            return None
        with self._state:
            entry = self._results.get(key)
            if entry is None:
                return None
            record, stamp = entry
            if (
                self.result_ttl is not None
                and time.monotonic() - stamp >= self.result_ttl
            ):
                del self._results[key]
                return None
            return dict(record)

    def expire_caches(self, now: float | None = None) -> int:
        """Drop result/planner entries older than ``result_ttl``; count dropped.

        The maintenance pass calls this periodically (``ttl_expired`` in
        ``/metrics``); ``now`` (a ``time.monotonic`` value) is injectable
        so tests can advance the clock without sleeping.  A no-op when no
        TTL is configured.
        """
        if self.result_ttl is None:
            return 0
        now = time.monotonic() if now is None else now
        dropped = 0
        with self._state:
            for table in (self._results, self._planners):
                stale = [
                    key
                    for key, (_, stamp) in table.items()
                    if now - stamp >= self.result_ttl
                ]
                for key in stale:
                    del table[key]
                dropped += len(stale)
        return dropped

    # -- popularity (persisted by maintenance into the store's meta tier) -------
    def _note_popularity(self, job: SolveJob) -> None:
        if job.source != "workflow":
            return
        with self._state:
            self._popularity[job.fingerprint] = (
                self._popularity.get(job.fingerprint, 0) + 1
            )

    def flush_popularity(self) -> int:
        """Persist pending popularity bumps to the store's meta tier.

        Returns the number of requests flushed.  Without a store the
        pending counts are discarded (nowhere durable to put them), so the
        table cannot grow without bound.
        """
        with self._state:
            pending, self._popularity = self._popularity, {}
        store = self.cache.store
        if store is None or not pending:
            return 0
        flushed = 0
        for fingerprint, count in pending.items():
            store.bump_popularity(fingerprint, count)
            flushed += count
        return flushed

    # -- the computation (runs on a pool thread) --------------------------------
    def _compute(self, job: SolveJob) -> dict[str, Any]:
        before = self.cache.stats()
        planner = self._planner_for(job)
        gamma = planner.gamma if job.gamma is None else job.gamma
        kind = planner.kind if job.kind is None else job.kind
        result_key = ResultKey(
            planner.backend, gamma, kind, job.solver, job.seed, job.verify
        )
        store = self.cache.store
        # Cost overrides are excluded from the persistent result tier: its
        # key has no cost dimension (by design — fingerprints exclude
        # costs), so persisting an override would alias the base solve.
        persistable = job.costs is None
        if store is not None and self.reuse_results and persistable:
            stored = store.load_result(job.fingerprint, result_key)
            if stored is not None:
                with self._state:
                    self.result_hits_store += 1
                if "error" in stored:
                    # The sweep executor persists derivation-time
                    # infeasibility as an error record (it is a pure
                    # function of workflow content).  A fresh solve of
                    # this request raises and maps to 422, so a
                    # store-served repeat must answer identically — never
                    # a 200 with cost Infinity (and never enter the
                    # memory result cache as a "success").
                    raise ServiceError(str(stored["error"]), status=422)
                record = dict(stored)
                record["workflow"] = job.label
                record["from_store"] = True
                record["fingerprint"] = job.fingerprint
                # Same schema as a fresh computation: a (near-zero) cache
                # delta, so clients never KeyError on which tier answered.
                record["cache"] = self.cache.stats().delta(before).as_dict()
                self._remember_result(job.key, record)
                return record
        result = planner.solve(
            solver=job.solver,
            seed=job.seed,
            verify=job.verify,
            costs=dict(job.costs) if job.costs else None,
        )
        # Per-record deltas are informational under concurrency (another
        # request may tick the shared counters in between); the /metrics
        # delta against the service baseline is the authoritative total.
        delta = result.cache_stats.delta(before)
        record: dict[str, Any] = {
            "workflow": job.label,
            "gamma": gamma,
            "kind": kind,
            "solver": job.solver,
            "resolved_solver": result.solver,
            "method": str(result.solution.meta.get("method", result.solver)),
            "seed": job.seed,
            "cost": result.cost,
            "hidden_attributes": sorted(result.hidden_attributes),
            "privatized_modules": sorted(result.privatized_modules),
            "guarantee": result.guarantee,
            "seconds": result.seconds,
        }
        if result.certificate is not None:
            record["verified"] = result.certificate.ok
        if store is not None and persistable:
            store.save_result(job.fingerprint, result_key, record)
        record["from_store"] = False
        record["fingerprint"] = job.fingerprint
        record["cache"] = delta.as_dict()
        self._remember_result(job.key, record)
        return record

    def _execute(self, job: SolveJob) -> dict[str, Any]:
        """Run one leader computation on the selected execution tier.

        Process mode ships the job to a tier worker and blocks this pool
        thread until the worker answers — in-flight accounting, drain
        ordering and coalescer publication stay byte-identical to thread
        mode.  A tier that cannot *accept* the job (dead/unrecoverable
        pool) falls back to inline execution (``exec.inline_fallbacks``);
        a failure *while computing* (including a worker crash) propagates
        to everyone attached to this leader, exactly like a thread-mode
        solver failure.
        """
        tier = self.exec_tier
        if tier is not None:
            try:
                task = tier.submit(job)
            except TierUnavailable:
                with self._state:
                    self.exec_inline_fallbacks += 1
            else:
                record = tier.wait(task)
                if record.get("from_store"):
                    with self._state:
                        self.result_hits_store += 1
                self._remember_result(job.key, record)
                return record
        return self._compute(job)

    # -- admission and coalescing -----------------------------------------------
    def _begin(self, job: SolveJob):
        """Join (or start) the computation for a job; ``(is_leader, entry)``."""
        leader, entry = self.coalescer.join(job.key)
        if not leader:
            return leader, entry
        with self._state:
            if self._draining:
                refusal = ServiceError("service is draining", status=503)
                self.coalescer.resolve(entry, error=refusal)
                return leader, entry
            self._in_flight += 1
        try:
            future = self.pool.submit(self._execute, job)
        except BaseException as exc:  # noqa: BLE001 - a lost submission must
            # still resolve the single-flight entry: followers attached to
            # this leader would otherwise wait forever on a future that
            # never existed (e.g. submit against a shut-down pool).
            with self._state:
                self._in_flight -= 1
                self._idle.notify_all()
            self.coalescer.resolve(
                entry,
                error=ServiceError(
                    f"could not start computation: {exc}", status=503
                ),
            )
            return leader, entry

        def _publish(fut) -> None:
            error = fut.exception()
            self.coalescer.resolve(
                entry,
                result=None if error is not None else fut.result(),
                error=error,
            )
            with self._state:
                self._in_flight -= 1
                self._idle.notify_all()

        future.add_done_callback(_publish)
        return leader, entry

    def _effective_timeout(self, job: SolveJob) -> float | None:
        return job.timeout if job.timeout is not None else self.default_timeout

    def submit(self, job: SolveJob) -> dict[str, Any]:
        """Run one job end to end (blocking); the solve record."""
        if self.draining:
            raise ServiceError("service is draining", status=503)
        self._note_popularity(job)
        if self.reuse_results:
            record = self._lookup_result(job.key)
            if record is not None:
                with self._state:
                    self.result_hits_memory += 1
                record["coalesced"] = False
                return record
        leader, entry = self._begin(job)
        record = dict(self.coalescer.wait(entry, self._effective_timeout(job)))
        record["coalesced"] = not leader
        return record

    # -- public endpoints --------------------------------------------------------
    def solve_payload(self, body: Any) -> dict[str, Any]:
        """``POST /solve``: parse, coalesce, compute, answer."""
        self._count("solve")
        try:
            job = parse_solve_payload(body, self.instances)
            return self.submit(job)
        except BaseException as exc:
            self._count_failure(exc)
            raise

    def sweep_payload(self, body: Any) -> dict[str, Any]:
        """``POST /sweep``: expand an inline grid through the solve pipeline.

        The grid mirrors the executor's: ``workflows`` / ``problems`` are
        arrays of *inline instance payloads* (the service reads no files),
        crossed with ``gammas`` × ``kinds`` × ``solvers`` × ``seeds``.
        Cells fan out concurrently, coalesce with each other and with
        ``/solve`` traffic, and fail in isolation: a solver error yields an
        error record, never a dead sweep.
        """
        self._count("sweep")
        try:
            jobs = self._expand_sweep(body)
        except BaseException as exc:
            self._count_failure(exc)
            raise
        started = time.perf_counter()
        before = self.cache.stats()
        coalesced_before = self.coalescer.coalesced
        # Same admission path as /solve: completed identical cells come
        # straight from the result cache; the rest join (or start) their
        # computation.  `begun` holds either a finished record or a
        # (leader, entry) pair to wait on.
        begun: list[Any] = []
        for job in jobs:
            self._note_popularity(job)
            record = self._lookup_result(job.key) if self.reuse_results else None
            if record is not None:
                with self._state:
                    self.result_hits_memory += 1
                record["coalesced"] = False
                begun.append(record)
            else:
                begun.append(self._begin(job))
        # One deadline for the whole request, shared by every cell wait —
        # not one full timeout per cell (a 20-cell grid is one request,
        # not 20 requests' worth of patience).
        timeout = (
            self.default_timeout if not jobs else self._effective_timeout(jobs[0])
        )
        deadline = None if timeout is None else time.monotonic() + timeout
        records: list[dict[str, Any]] = []
        for index, (job, outcome) in enumerate(zip(jobs, begun)):
            try:
                if isinstance(outcome, dict):
                    record = outcome
                else:
                    leader, entry = outcome
                    remaining = (
                        None if deadline is None
                        else max(0.0, deadline - time.monotonic())
                    )
                    record = dict(self.coalescer.wait(entry, remaining))
                    record["coalesced"] = not leader
            except BaseException as exc:
                self._count_failure(exc)
                record = {
                    "workflow": job.label,
                    "gamma": job.gamma,
                    "kind": job.kind,
                    "solver": job.solver,
                    "seed": job.seed,
                    "method": job.solver,
                    # null, not float("inf"): Infinity is not valid JSON
                    # and this report crosses the HTTP boundary.
                    "cost": None,
                    "error": str(exc),
                    # WorkerError forwards the original class name from the
                    # process tier, keeping reports mode-independent.
                    "error_type": getattr(
                        exc, "error_type", type(exc).__name__
                    ),
                    "from_store": False,
                }
            record["index"] = index
            records.append(record)
        delta = self.cache.stats().delta(before)
        return {
            "cells": len(records),
            "errors": sum(1 for record in records if "error" in record),
            "coalesced": self.coalescer.coalesced - coalesced_before,
            "seconds": time.perf_counter() - started,
            "stats": delta.as_dict(),
            "records": records,
        }

    def _expand_sweep(self, body: Any) -> list[SolveJob]:
        if not isinstance(body, Mapping):
            raise ServiceError("request body must be a JSON object")
        for axis in ("workflows", "problems", "gammas", "kinds", "solvers", "seeds"):
            value = body.get(axis)
            if value is not None and (
                isinstance(value, (str, Mapping))
                or not isinstance(value, (list, tuple))
            ):
                raise ServiceError(f"sweep key {axis!r} must be a JSON array")
        # An explicit JSON null is treated like an absent axis (the
        # validation above admits it, so it must not reach tuple(None)).
        sources = [("workflow", payload) for payload in body.get("workflows") or ()]
        sources += [("problem", payload) for payload in body.get("problems") or ()]
        if not sources:
            raise ServiceError("sweep names no 'workflows' or 'problems'")
        gammas = tuple(body.get("gammas") or (2,))
        kinds = tuple(body.get("kinds") or ("set",))
        solvers = tuple(body.get("solvers") or ("auto",))
        seeds = tuple(body.get("seeds") or (0,))
        shared = {
            key: body[key]
            for key in ("verify", "backend", "timeout")
            if key in body
        }
        jobs: list[SolveJob] = []
        for source, payload in sources:
            points = (
                [(None, None)]
                if source == "problem"
                else [(gamma, kind) for gamma in gammas for kind in kinds]
            )
            for gamma, kind in points:
                for solver in solvers:
                    for seed in seeds:
                        cell: dict[str, Any] = {
                            source: payload,
                            "solver": solver,
                            "seed": seed,
                            **shared,
                        }
                        if source == "workflow":
                            cell["gamma"] = gamma
                            cell["kind"] = kind
                        jobs.append(parse_solve_payload(cell, self.instances))
        return jobs

    def healthz(self) -> dict[str, Any]:
        """``GET /healthz``: liveness plus drain and execution-tier health.

        ``draining`` is an explicit boolean (the HTTP layer answers 503 on
        it) so load balancers and job pollers can tell "shutting down"
        from "dead" before the drain completes.  ``healthy`` goes false —
        and the HTTP layer likewise answers 503 — when the process tier's
        pool is dead and unrecoverable (requests still answer, via the
        inline fallback, but the box is degraded to one core).
        """
        self._count("healthz")
        tier = self.exec_tier
        healthy = tier is None or tier.healthy()
        with self._state:
            if self._draining:
                status = "draining"
            else:
                status = "ok" if healthy else "unhealthy"
            return {
                "status": status,
                "draining": self._draining,
                "healthy": healthy,
                "exec_mode": self.exec_mode,
                "in_flight": self._in_flight,
                "replica": self.replica_id,
                "uptime_seconds": time.monotonic() - self._started_monotonic,
            }

    def version(self) -> dict[str, Any]:
        """``GET /v1/version``: package + API version, store formats.

        A fleet operator rolling replicas forward reads this per replica to
        confirm which code and which on-disk store format each process
        speaks before readmitting it to rotation.
        """
        from .. import __version__
        from ..engine.store import FORMAT_VERSION, SUPPORTED_FORMAT_VERSIONS

        store = self.cache.store
        store_block = None
        if store is not None:
            store_block = {
                "root": str(store.root),
                "format_version": store.format_version,
                "supported_format_versions": list(SUPPORTED_FORMAT_VERSIONS),
            }
        return {
            "package": __version__,
            "api": "v1",
            "replica": self.replica_id,
            "default_format_version": FORMAT_VERSION,
            "store": store_block,
        }

    def metrics(self) -> dict[str, Any]:
        """``GET /metrics``: request counters, coalescing, cache/store deltas.

        ``cache`` is the :meth:`~repro.engine.cache.CacheStats.delta` of the
        shared cache against the service's start-time baseline, so
        ``reused_modules`` / ``store_hits`` there measure exactly what this
        process served without re-deriving.  In process mode the workers'
        per-task deltas are merged in — and reported separately under
        ``exec.cache`` — so "did the tier save work" reads the same in both
        modes.
        """
        self._count("metrics")
        cache_delta = self.cache.stats().delta(self._baseline)
        store = self.cache.store
        tier = self.exec_tier
        if tier is None:
            exec_block: dict[str, Any] = {
                "mode": "threads",
                "workers": self.workers,
                "alive": self.workers,
                "busy": 0,
                "queued": 0,
                "dispatched": 0,
                "completed": 0,
                "failed": 0,
                "worker_restarts": 0,
                "warmed_packs": 0,
                "healthy": True,
            }
            worker_cache: dict[str, int] = {}
        else:
            exec_block = tier.metrics()
            worker_cache = tier.worker_cache_totals()
        exec_block["cache"] = worker_cache
        with self._state:
            payload: dict[str, Any] = {
                "started_at": self._started_at,
                "uptime_seconds": time.monotonic() - self._started_monotonic,
                "replica": self.replica_id,
                "workers": self.workers,
                "draining": self._draining,
                "in_flight": self._in_flight,
                "requests": dict(self.request_counts),
                "errors": self.error_count,
                "timeouts": self.timeout_count,
                "coalesced": self.coalescer.coalesced,
                "leaders": self.coalescer.leaders,
                "result_hits": {
                    "memory": self.result_hits_memory,
                    "store": self.result_hits_store,
                },
                "cache": cache_delta.as_dict(),
            }
            exec_block["inline_fallbacks"] = self.exec_inline_fallbacks
        # Worker counters fold into the top-level cache totals: clients
        # (and the coalescing benchmark) read one number per counter no
        # matter which tier did the deriving.
        for key, value in worker_cache.items():
            payload["cache"][key] = payload["cache"].get(key, 0) + int(value)
        payload["exec"] = exec_block
        payload["store"] = store.stats() if store is not None else None
        payload["jobs"] = self.jobs.metrics()
        payload["maintenance"] = self.maintenance.metrics()
        return payload

    # -- lifecycle ---------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting work, wait for in-flight computations, stop the pool.

        Order matters: mark draining (new requests and job submits get
        503), cancel active jobs and stop the maintenance thread, wait for
        job runners to collect their in-flight cells, flush pending
        popularity to the store, wait out the pool, then stop the
        execution tier (its workers are idle by then — every in-flight
        pool thread was blocked on its tier task).  Idempotent.  Returns
        ``True`` when everything drained within ``timeout`` (``None``
        waits indefinitely); on ``False`` the pool is still shut down and
        the tier's workers are killed — which fails their tasks through
        the crash path and releases any pool thread still blocked on one.
        """
        deadline = None if timeout is None else time.monotonic() + timeout

        def _remaining() -> float | None:
            if deadline is None:
                return None
            return max(0.0, deadline - time.monotonic())

        with self._state:
            self._draining = True
            self.drain_started.set()
        self.jobs.cancel_all()
        self.maintenance.stop()
        self.jobs.join(_remaining())
        self.flush_popularity()
        with self._state:
            drained = self._idle.wait_for(
                lambda: self._in_flight == 0, _remaining()
            )
        self.pool.shutdown(wait=drained)
        if self.exec_tier is not None:
            self.exec_tier.shutdown(wait=drained, timeout=_remaining())
        return drained
