"""Async jobs and background maintenance for the solve service.

``POST /sweep`` answers when the last cell finishes — fine for a dozen
cells, hostile for a thousand: the client's connection (and its patience)
becomes the scheduler.  This module gives the service the two background
facilities a long-lived process needs:

:class:`JobManager`
    ``POST /jobs/sweep`` validates and expands the grid exactly like the
    synchronous endpoint, then returns a job id immediately.  A per-job
    runner thread pushes the cells through the *same* coalescing/solve
    pipeline as ``/solve`` and ``/sweep`` — async cells coalesce with
    synchronous traffic and share the result cache — dispatching at most
    ``workers`` cells at a time so one huge job cannot monopolize the
    pool's queue.  ``GET /jobs/<id>`` reports the state machine
    (``pending → running → done | failed | cancelled``), per-cell progress
    counters and the **partial records** collected so far, in cell-index
    order.  ``DELETE /jobs/<id>`` cancels: in-flight cells finish (worker
    threads cannot be interrupted, and their results are cached for
    whoever asks next), pending cells are dropped and counted.  Finished
    jobs expire after a TTL from a bounded table, so a service polled by
    crashing clients never leaks job state.

:class:`MaintenanceScheduler`
    One daemon thread owning periodic housekeeping, with jittered
    intervals (a fleet of services sharing one store must not GC in
    lockstep) and per-task failure isolation (a GC crash increments a
    counter; it never kills TTL expiry, and never the thread).  Tasks:
    result/planner-cache TTL expiry, job-table expiry, popularity
    flushing, and store GC to a byte budget.  On demand it also performs
    **warm-up**: after a restart over a warm store, re-compile the K
    most-requested workflow fingerprints (ranked by a popularity counter
    persisted in the store's meta tier) and preload their stored
    requirement points, so the first solve of a popular instance hits the
    hot cache instead of paying compilation.

Everything is observable through ``GET /metrics``: job gauges/counters
under ``jobs``, and ``maintenance.{gc_runs, gc_deleted_bytes,
ttl_expired, warmed_packs, ...}``.
"""

from __future__ import annotations

import random
import threading
import time
import uuid
from collections import OrderedDict, deque
from typing import TYPE_CHECKING, Any

from .jobs import TERMINAL_JOB_STATES, ServiceError, SolveJob

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .service import SolveService

__all__ = ["JobManager", "MaintenanceScheduler", "SweepJob"]


class SweepJob:
    """One asynchronous sweep: cells, progress counters, partial records.

    Mutable fields are guarded by the owning :class:`JobManager`'s lock;
    the runner thread is the only writer of ``records`` (append-only, in
    cell-index order), so a status snapshot is always a valid prefix of
    the final report.
    """

    __slots__ = (
        "id",
        "state",
        "cells",
        "total",
        "completed",
        "failed",
        "dropped",
        "records",
        "error",
        "created_at",
        "created_monotonic",
        "started_monotonic",
        "finished_monotonic",
        "cancel",
        "finished",
    )

    def __init__(self, job_id: str, cells: list[SolveJob]) -> None:
        self.id = job_id
        self.state = "pending"
        self.cells = cells
        self.total = len(cells)
        self.completed = 0
        self.failed = 0
        self.dropped = 0
        self.records: list[dict[str, Any]] = []
        self.error: str | None = None
        self.created_at = time.time()
        self.created_monotonic = time.monotonic()
        self.started_monotonic: float | None = None
        self.finished_monotonic: float | None = None
        #: Set by cancellation (or drain); the runner stops dispatching.
        self.cancel = threading.Event()
        #: Set exactly once, when the job enters a terminal state.
        self.finished = threading.Event()

    def seconds(self) -> float | None:
        """Run time so far (or total, once finished); ``None`` if pending."""
        if self.started_monotonic is None:
            return None
        end = self.finished_monotonic
        return (time.monotonic() if end is None else end) - self.started_monotonic

    def as_dict(self, with_records: bool = True) -> dict[str, Any]:
        """A status snapshot (caller holds the manager lock)."""
        payload: dict[str, Any] = {
            "job": self.id,
            "state": self.state,
            "cells": self.total,
            "completed": self.completed,
            "failed": self.failed,
            "dropped": self.dropped,
            "pending": self.total - self.completed - self.failed - self.dropped,
            "created_at": self.created_at,
            "seconds": self.seconds(),
        }
        if self.error is not None:
            payload["error"] = self.error
        if with_records:
            payload["records"] = list(self.records)
        return payload


class JobManager:
    """Bounded table of asynchronous sweeps, each driven by a runner thread.

    Parameters
    ----------
    service:
        The owning :class:`~repro.service.service.SolveService`; cells are
        admitted through its coalescer and worker pool.
    job_ttl:
        Seconds a *finished* job stays queryable before :meth:`expire`
        removes it; ``None`` keeps finished jobs until evicted by the
        table bound.
    max_jobs:
        Bound on tracked jobs.  A submit against a full table first
        expires stale jobs, then evicts the oldest finished one; if every
        slot holds an active job the submit is refused with 429.
    """

    def __init__(
        self,
        service: "SolveService",
        job_ttl: float | None = 600.0,
        max_jobs: int = 256,
    ) -> None:
        self.service = service
        self.job_ttl = job_ttl
        self.max_jobs = max_jobs
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._jobs: "OrderedDict[str, SweepJob]" = OrderedDict()
        self._threads: dict[str, threading.Thread] = {}
        self.submitted = 0
        self.finished_counts = {state: 0 for state in TERMINAL_JOB_STATES}
        self.expired = 0
        self.cells_completed = 0
        self.cells_failed = 0
        self.cells_dropped = 0

    # -- public endpoints --------------------------------------------------------
    def submit(self, body: Any) -> dict[str, Any]:
        """``POST /jobs/sweep``: validate, register, start; the job handle.

        Validation is synchronous (a malformed grid is a 400 on the
        submit, never a failed job), execution is not: the returned
        ``{"job": id, "state": ..., "cells": n}`` arrives before any cell
        runs.
        """
        self.service._count("jobs")
        if self.service.draining:
            raise ServiceError("service is draining", status=503)
        cells = self.service._expand_sweep(body)
        job = SweepJob(uuid.uuid4().hex[:12], cells)
        runner = threading.Thread(
            target=self._run, args=(job,), name=f"repro-job-{job.id}", daemon=True
        )
        with self._changed:
            self._expire_locked()
            if len(self._jobs) >= self.max_jobs and not self._evict_finished_locked():
                raise ServiceError(
                    f"job table is full ({self.max_jobs} active jobs); retry later",
                    status=429,
                )
            self._jobs[job.id] = job
            self._threads[job.id] = runner
            self.submitted += 1
        runner.start()
        return {"job": job.id, "state": job.state, "cells": job.total}

    def status(self, job_id: str, with_records: bool = True) -> dict[str, Any]:
        """``GET /jobs/<id>``: the state snapshot (404 on unknown/expired)."""
        self.service._count("jobs")
        with self._lock:
            return self._get_locked(job_id).as_dict(with_records)

    def list_jobs(self) -> list[dict[str, Any]]:
        """``GET /jobs``: summaries (no records), oldest submission first."""
        self.service._count("jobs")
        with self._lock:
            return [job.as_dict(with_records=False) for job in self._jobs.values()]

    def cancel(self, job_id: str) -> dict[str, Any]:
        """``DELETE /jobs/<id>``: stop dispatching; drop pending cells.

        In-flight cells finish (their results land in the shared caches);
        the job reaches ``cancelled`` once the runner has collected them.
        Cancelling a finished job is a no-op that reports the final state.
        """
        self.service._count("jobs")
        with self._changed:
            job = self._get_locked(job_id)
            if job.state not in TERMINAL_JOB_STATES:
                job.cancel.set()
            self._changed.notify_all()
            payload = job.as_dict(with_records=False)
        payload["cancel_requested"] = True
        return payload

    # -- synchronization helpers -------------------------------------------------
    def wait(self, job_id: str, timeout: float | None = None) -> dict[str, Any]:
        """Block until the job finishes; its final status (with records)."""
        with self._lock:
            job = self._get_locked(job_id)
        if not job.finished.wait(timeout):
            raise ServiceError(
                f"job {job_id!r} did not finish within {timeout}s", status=504
            )
        with self._lock:
            return job.as_dict()

    def await_progress(
        self, job_id: str, count: int, timeout: float | None = None
    ) -> bool:
        """Block until ``job_id`` holds at least ``count`` records.

        Condition-based (no polling); lets tests sequence "some cells
        landed, more to come" deterministically.  Returns ``False`` on
        timeout; a job reaching a terminal state satisfies the wait.
        """
        with self._changed:
            return self._changed.wait_for(
                lambda: (
                    (job := self._jobs.get(job_id)) is not None
                    and (
                        len(job.records) >= count
                        or job.state in TERMINAL_JOB_STATES
                    )
                ),
                timeout,
            )

    # -- table maintenance -------------------------------------------------------
    def expire(self, now: float | None = None) -> int:
        """Drop finished jobs older than ``job_ttl``; the number dropped.

        ``now`` (a ``time.monotonic`` value) is injectable so tests can
        advance the clock without sleeping.
        """
        with self._changed:
            return self._expire_locked(now)

    def _expire_locked(self, now: float | None = None) -> int:
        if self.job_ttl is None:
            return 0
        now = time.monotonic() if now is None else now
        stale = [
            job_id
            for job_id, job in self._jobs.items()
            if job.state in TERMINAL_JOB_STATES
            and job.finished_monotonic is not None
            and now - job.finished_monotonic >= self.job_ttl
        ]
        for job_id in stale:
            del self._jobs[job_id]
        self.expired += len(stale)
        if stale:
            self._changed.notify_all()
        return len(stale)

    def _evict_finished_locked(self) -> bool:
        for job_id, job in self._jobs.items():
            if job.state in TERMINAL_JOB_STATES:
                del self._jobs[job_id]
                return True
        return False

    def _get_locked(self, job_id: str) -> SweepJob:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"no such job {job_id!r}", status=404)
        return job

    # -- shutdown ----------------------------------------------------------------
    def cancel_all(self) -> int:
        """Cancel every active job (drain calls this); the number cancelled."""
        with self._changed:
            cancelled = 0
            for job in self._jobs.values():
                if job.state not in TERMINAL_JOB_STATES:
                    job.cancel.set()
                    cancelled += 1
            self._changed.notify_all()
        return cancelled

    def join(self, timeout: float | None = None) -> bool:
        """Wait for every runner thread to exit; ``True`` when all did."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            runners = list(self._threads.values())
        alive = False
        for runner in runners:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            runner.join(remaining)
            alive = alive or runner.is_alive()
        return not alive

    # -- observability -----------------------------------------------------------
    def metrics(self) -> dict[str, Any]:
        with self._lock:
            active = sum(
                1
                for job in self._jobs.values()
                if job.state not in TERMINAL_JOB_STATES
            )
            return {
                "submitted": self.submitted,
                "active": active,
                "tracked": len(self._jobs),
                "done": self.finished_counts["done"],
                "failed": self.finished_counts["failed"],
                "cancelled": self.finished_counts["cancelled"],
                "expired": self.expired,
                "cells": {
                    "completed": self.cells_completed,
                    "failed": self.cells_failed,
                    "dropped": self.cells_dropped,
                },
            }

    # -- the runner (one daemon thread per job) ----------------------------------
    def _run(self, job: SweepJob) -> None:
        service = self.service
        # At most `workers` cells dispatched at once: the job makes full
        # use of the pool without flooding its queue, so concurrent /solve
        # traffic still gets slots at worker-pool granularity.
        window = max(1, service.workers)
        try:
            with self._changed:
                if job.cancel.is_set():
                    self._finish_locked(job, "cancelled")
                    return
                job.state = "running"
                job.started_monotonic = time.monotonic()
                self._changed.notify_all()
            pending = deque(enumerate(job.cells))
            active: "deque[tuple[int, SolveJob, Any]]" = deque()
            while pending or active:
                while pending and len(active) < window and not job.cancel.is_set():
                    index, cell = pending.popleft()
                    active.append((index, cell, self._dispatch(cell)))
                if not active:
                    break  # cancelled with nothing left in flight
                # Collect in dispatch (= cell-index) order, so `records`
                # is always a prefix of the final report and progress
                # counters are monotone.
                index, cell, outcome = active.popleft()
                record = self._collect(cell, outcome)
                record["index"] = index
                with self._changed:
                    job.records.append(record)
                    if "error" in record:
                        job.failed += 1
                        self.cells_failed += 1
                    else:
                        job.completed += 1
                        self.cells_completed += 1
                    self._changed.notify_all()
            with self._changed:
                if job.cancel.is_set():
                    job.dropped = job.total - len(job.records)
                    self.cells_dropped += job.dropped
                    self._finish_locked(job, "cancelled")
                else:
                    self._finish_locked(job, "done")
        except BaseException as exc:  # noqa: BLE001 - runner must record, not die
            with self._changed:
                job.error = f"{type(exc).__name__}: {exc}"
                job.dropped = job.total - len(job.records)
                self.cells_dropped += job.dropped
                self._finish_locked(job, "failed")

    def _dispatch(self, cell: SolveJob) -> Any:
        """Admit one cell; a finished record (cache hit) or a wait handle.

        Never called from a pool thread: a runner waiting on pool work
        from inside the pool would consume the very slot the computation
        needs.
        """
        service = self.service
        service._note_popularity(cell)
        if service.reuse_results:
            record = service._lookup_result(cell.key)
            if record is not None:
                with service._state:
                    service.result_hits_memory += 1
                record["coalesced"] = False
                return record
        return service._begin(cell)

    def _collect(self, cell: SolveJob, outcome: Any) -> dict[str, Any]:
        service = self.service
        try:
            if isinstance(outcome, dict):
                return outcome
            leader, entry = outcome
            record = dict(
                service.coalescer.wait(entry, service._effective_timeout(cell))
            )
            record["coalesced"] = not leader
            return record
        except BaseException as exc:  # per-cell isolation, like /sweep
            service._count_failure(exc)
            return {
                "workflow": cell.label,
                "gamma": cell.gamma,
                "kind": cell.kind,
                "solver": cell.solver,
                "seed": cell.seed,
                "method": cell.solver,
                "cost": None,
                "error": str(exc),
                # WorkerError forwards the original class name from the
                # process tier, keeping job records mode-independent.
                "error_type": getattr(exc, "error_type", type(exc).__name__),
                "from_store": False,
            }

    def _finish_locked(self, job: SweepJob, state: str) -> None:
        job.state = state
        job.finished_monotonic = time.monotonic()
        self.finished_counts[state] += 1
        self._threads.pop(job.id, None)
        job.finished.set()
        self._changed.notify_all()


class MaintenanceScheduler:
    """Periodic housekeeping on one daemon thread, plus on-demand warm-up.

    Parameters
    ----------
    service:
        The owning service; tasks reach its caches, job table and store.
    interval:
        Seconds between maintenance passes; ``None`` or ``0`` disables the
        thread (``run_once`` still works for tests and manual calls).
    store_max_bytes:
        Byte budget the store is GC'd down to each pass; ``None`` disables
        the GC task.
    warmup:
        Popular packs the ``warm_workers`` task asks the execution tier's
        idle workers to preload each pass (0, or thread mode, disables
        it).  Workers skip packs they already hold, so steady-state passes
        are no-ops; the task exists for respawned workers and for
        popularity that shifted since spawn.
    jitter:
        Fractional spread on the interval (default ±10%), so replicas
        sharing a store do not run GC in lockstep.
    seed:
        Seed for the jitter RNG (deterministic scheduling in tests).
    """

    #: Periodic tasks, in execution order; each failure-isolated.
    TASKS = (
        "expire_results",
        "expire_jobs",
        "flush_popularity",
        "gc_store",
        "warm_workers",
    )

    def __init__(
        self,
        service: "SolveService",
        interval: float | None = 30.0,
        store_max_bytes: int | None = None,
        warmup: int = 0,
        jitter: float = 0.1,
        seed: int | None = None,
    ) -> None:
        self.service = service
        self.interval = interval
        self.store_max_bytes = store_max_bytes
        self.warmup = warmup
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        # Serializes passes (the thread vs. a manual run_once) without
        # blocking metrics reads.
        self._run_lock = threading.Lock()
        self.runs = 0
        self.gc_runs = 0
        self.gc_deleted_bytes = 0
        self.ttl_expired = 0
        self.expired_jobs = 0
        self.warmed_packs = 0
        self.popularity_flushes = 0
        self.task_failures = {name: 0 for name in self.TASKS + ("warm_up",)}

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> "MaintenanceScheduler":
        with self._lock:
            if self._thread is not None or not self.interval:
                return self
            self._thread = threading.Thread(
                target=self._loop, name="repro-maintenance", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float | None = 5.0) -> None:
        """Stop the thread (idempotent); waits for an in-progress pass."""
        self._stop.set()
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout)

    def _delay(self) -> float:
        spread = float(self.interval) * self.jitter
        return max(0.05, float(self.interval) + self._rng.uniform(-spread, spread))

    def _loop(self) -> None:
        while not self._stop.wait(self._delay()):
            self.run_once()

    # -- one maintenance pass ----------------------------------------------------
    def run_once(self) -> dict[str, Any]:
        """Run every task once, each in isolation; a per-task summary.

        A task that raises increments ``task_failures[name]`` and leaves
        the rest of the pass (and the thread) untouched — one bad disk
        must not stop TTL expiry.
        """
        summary: dict[str, Any] = {}
        with self._run_lock:
            for name in self.TASKS:
                try:
                    summary[name] = getattr(self, f"_task_{name}")()
                except Exception as exc:  # noqa: BLE001 - isolation by design
                    with self._lock:
                        self.task_failures[name] += 1
                    summary[name] = f"{type(exc).__name__}: {exc}"
            with self._lock:
                self.runs += 1
        return summary

    def _task_expire_results(self) -> int:
        expired = self.service.expire_caches()
        if expired:
            with self._lock:
                self.ttl_expired += expired
        return expired

    def _task_expire_jobs(self) -> int:
        expired = self.service.jobs.expire()
        if expired:
            with self._lock:
                self.expired_jobs += expired
        return expired

    def _task_flush_popularity(self) -> int:
        flushed = self.service.flush_popularity()
        if flushed:
            with self._lock:
                self.popularity_flushes += 1
        return flushed

    def _task_gc_store(self) -> dict[str, int] | None:
        store = self.service.cache.store
        if store is None or self.store_max_bytes is None:
            return None
        result = store.gc(self.store_max_bytes)
        with self._lock:
            self.gc_runs += 1
            self.gc_deleted_bytes += result["freed_bytes"]
        return result

    def _task_warm_workers(self) -> int | None:
        """Keep execution-tier workers warm across respawns and passes.

        Runs *after* ``flush_popularity`` so workers rank against current
        traffic.  A worker spawned mid-flight (crash recovery) missed the
        spawn-time warm-up of whatever became popular since; this pass
        catches it up.  ``None`` when there is nothing to do (thread mode,
        no store, warm-up disabled).
        """
        tier = self.service.exec_tier
        if tier is None or self.warmup <= 0 or self.service.cache.store is None:
            return None
        return tier.warm_workers(self.warmup)

    # -- warm-up -----------------------------------------------------------------
    def warm_up(self, k: int) -> int:
        """Preload the ``k`` most-requested stored workflows into the hot cache.

        For each: rebuild the instance from the meta tier's serialized
        payload (through the service's :class:`InstanceCache`, so client
        requests for the same content map onto the *same object* and hit
        the identity-keyed tables), compile its kernel pack, and load
        every stored requirement point.  After a restart the first solve
        of a popular fingerprint then reports ``compile_hits > 0`` instead
        of paying compilation on the request path.  Returns the number of
        workflows warmed; per-workflow failures are isolated and counted.
        """
        service = self.service
        store = service.cache.store
        if store is None or k <= 0:
            return 0
        warmed = 0
        for fingerprint, _count, payload in store.popular_workflows(k):
            try:
                workflow, resolved = service.instances.resolve("workflow", payload)
                if resolved != fingerprint:
                    raise ValueError(
                        f"stored payload for {fingerprint[:12]} re-fingerprints "
                        f"to {resolved[:12]}"
                    )
                service.cache.compiled_workflow(workflow)
                for gamma, kind, backend in store.stored_requirement_points(
                    fingerprint
                ):
                    service.cache.requirements(workflow, gamma, kind, backend=backend)
                warmed += 1
            except Exception:  # noqa: BLE001 - isolation by design
                with self._lock:
                    self.task_failures["warm_up"] += 1
        with self._lock:
            self.warmed_packs += warmed
        return warmed

    # -- observability -----------------------------------------------------------
    def metrics(self) -> dict[str, Any]:
        with self._lock:
            return {
                "interval": self.interval,
                "runs": self.runs,
                "gc_runs": self.gc_runs,
                "gc_deleted_bytes": self.gc_deleted_bytes,
                "ttl_expired": self.ttl_expired,
                "expired_jobs": self.expired_jobs,
                "warmed_packs": self.warmed_packs,
                "popularity_flushes": self.popularity_flushes,
                "task_failures": dict(self.task_failures),
            }
