"""A replica fleet on one store, behind one ``/v1`` front.

``repro fleet --replicas N --store DIR --port P`` spawns N ``repro serve``
processes that share a single derivation-store directory, and runs a
stdlib HTTP front that proxies the versioned ``/v1`` API across them:

* **health-aware routing** — requests round-robin over the replicas whose
  ``/v1/healthz`` answers 200; a replica that reports 503 (draining, or a
  dead execution tier) leaves rotation until it recovers, and a request
  that lands on a replica mid-drain is transparently retried on the next
  one, so rolling restarts lose zero requests;
* **supervision** — a replica process that dies unexpectedly is respawned
  up to a per-replica restart budget (``--restart-budget``); beyond that
  it is marked failed and the fleet keeps serving degraded;
* **warm-up coordination** — every replica attaches the same store, so
  the popularity counts each drain flushes into the store's meta tier
  rank the warm-up (``--warmup K``) of every *future* replica: a rolling
  restart's successor preloads exactly the packs its predecessor's
  traffic voted for;
* **rolling restarts** — ``repro fleet restart`` (or SIGHUP, or ``POST
  /v1/fleet/restart``) cycles one replica at a time: leave rotation →
  drain (its in-flight requests complete; popularity flushes) → wait for
  exit → respawn → wait healthy → readmit — then the next replica.

The front answers the fleet-level API itself:

``GET /v1/healthz``
    Fleet liveness: 503 while stopping or with zero replicas in rotation;
    the body lists per-replica state, rotation membership and respawns.
``GET /v1/metrics``
    ``totals`` (every numeric counter summed across replicas — one number
    per counter for "did the fleet reuse work"), ``replicas`` (each
    replica's full ``/v1/metrics``) and ``fleet`` (routing counters,
    failovers, respawns, rolling restarts).
``GET /v1/version`` / ``GET /v1/fleet``
    Package + API version with per-replica versions / supervision status.
``POST /v1/fleet/restart``
    Ack 202 and run a rolling restart in the background.
``POST /v1/shutdown``
    Ack 202, drain every replica, stop the front (SIGTERM does the same).

Everything else under ``/v1/`` — ``/solve``, ``/sweep``, ``/jobs/...`` —
is proxied.  Jobs are replica-local state, so the fleet namespaces their
ids: a handle from ``POST /v1/jobs/sweep`` comes back as ``r2.<id>`` and
later ``GET /v1/jobs/r2.<id>`` routes to the owning replica; ``GET
/v1/jobs`` fans out and merges.  Unprefixed legacy paths answer with a
``Deprecation`` header, exactly like a single replica.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import socket
import subprocess
import sys
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Sequence

from .jobs import error_envelope
from .server import encode_json, normalize_path

__all__ = ["FleetSupervisor", "Replica"]

#: ``repro serve`` announces its (possibly ephemeral) address with this
#: flushed banner line; the supervisor parses it to learn each replica's
#: port.
_BANNER = re.compile(r"listening on (http://[^\s]+)")

#: Cap on request bodies accepted at the front (mirrors the replica cap).
_MAX_BODY_BYTES = 64 * 1024 * 1024


class Replica:
    """Supervision state for one ``repro serve`` process."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.replica_id = f"r{index}"
        self.process: subprocess.Popen | None = None
        self.url: str | None = None
        self.host: str | None = None
        self.port: int | None = None
        #: Set once the banner announced this generation's address.
        self.url_ready = threading.Event()
        #: Whether the router may send traffic here (health loop + restart
        #: logic own it).
        self.in_rotation = False
        #: False while a rolling restart owns the replica, so the health
        #: loop neither readmits nor respawns it mid-cycle.
        self.admittable = True
        #: True while an exit is intentional (restart/shutdown) — the
        #: supervisor must not burn restart budget on it.
        self.expected_exit = False
        #: Unexpected-death respawns performed (bounded by the budget).
        self.restarts = 0
        self.spawned_at: float | None = None
        #: Budget exhausted: left down, fleet serves degraded.
        self.failed = False

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def state(self) -> str:
        if self.failed:
            return "failed"
        if not self.alive():
            return "down"
        if not self.url_ready.is_set():
            return "starting"
        return "up" if self.in_rotation else "out-of-rotation"


class _FleetHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-fleet"
    fleet: "FleetSupervisor"
    quiet: bool = True

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)

    def setup(self) -> None:
        super().setup()
        self.fleet._track(self.connection)

    def finish(self) -> None:
        try:
            super().finish()
        finally:
            self.fleet._untrack(self.connection)

    def _respond(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if getattr(self, "_legacy_path", None):
            self.send_header("Deprecation", "true")
            self.send_header(
                "Link", f"</v1{self._legacy_path}>; rel=\"successor-version\""
            )
        if self.fleet.closing:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _read_body(self) -> bytes:
        length = self.headers.get("Content-Length")
        try:
            length = int(length) if length is not None else 0
        except ValueError:
            length = 0
        if length <= 0:
            return b""
        if length > _MAX_BODY_BYTES:
            # Unread body: its bytes would garble the next keep-alive read.
            self.close_connection = True
            raise ValueError("request body too large")
        return self.rfile.read(length)

    def _dispatch(self, method: str) -> None:
        route, legacy = normalize_path(self.path)
        self._legacy_path = route if legacy else None
        busy = self.fleet._mark_busy(self.connection)
        try:
            body = self._read_body() if method == "POST" else b""
            status, payload = self.fleet.dispatch(method, route, body)
            self._respond(status, payload)
        except Exception as exc:  # noqa: BLE001 - the front must always answer
            self._respond(
                500, encode_json(error_envelope(type(exc).__name__, str(exc), 500))
            )
        finally:
            if busy:
                self.fleet._mark_idle(self.connection)

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("DELETE")


class FleetSupervisor:
    """Spawn, supervise and front N ``repro serve`` replicas on one store.

    Parameters
    ----------
    replicas:
        Replica process count.
    store:
        Store directory every replica attaches (the shared result/module
        tiers are what make cross-replica reuse work); ``None`` runs
        store-less replicas (each a private cache — routing still works,
        reuse does not cross processes).
    host / port:
        Front bind address (``port=0`` picks a free port).
    serve_argv:
        Extra ``repro serve`` arguments appended to every replica's
        command line (``["--workers", "2", "--warmup", "8"]`` …) — and to
        every respawn, so a restarted replica comes back with identical
        configuration.
    restart_budget:
        Unexpected-death respawns allowed *per replica* before it is
        marked failed.
    health_interval:
        Seconds between supervision passes (liveness + healthz probes).
    request_timeout:
        Per-proxied-request deadline toward a replica.
    spawn_timeout:
        Seconds a (re)spawned replica gets to announce its port and
        answer healthz 200.
    """

    def __init__(
        self,
        replicas: int = 2,
        store: str | os.PathLike | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        serve_argv: Sequence[str] = (),
        restart_budget: int = 3,
        health_interval: float = 0.5,
        request_timeout: float = 330.0,
        spawn_timeout: float = 60.0,
        quiet: bool = True,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if restart_budget < 0:
            raise ValueError("restart_budget must be >= 0")
        self.store = os.fspath(store) if store is not None else None
        self.serve_argv = list(serve_argv)
        self.restart_budget = restart_budget
        self.health_interval = health_interval
        self.request_timeout = request_timeout
        self.spawn_timeout = spawn_timeout
        self.quiet = quiet
        self.replicas = [Replica(index) for index in range(replicas)]
        handler = type("_BoundFleetHandler", (_FleetHandler,),
                       {"fleet": self, "quiet": quiet, "timeout": 30})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = False
        self._lock = threading.Lock()
        self._conn_lock = threading.Lock()
        self._connections: dict[socket.socket, bool] = {}
        self._restart_lock = threading.Lock()
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._thread: threading.Thread | None = None
        self._health_thread: threading.Thread | None = None
        self._rr = 0
        self._started_monotonic = time.monotonic()
        self.proxied = {"solve": 0, "sweep": 0, "jobs": 0}
        self.failovers = 0
        self.rolling_restarts = 0

    # -- front address -----------------------------------------------------------
    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def closing(self) -> bool:
        return self._stopping.is_set()

    # -- keep-alive connection tracking (same contract as ServiceServer) --------
    def _track(self, conn: socket.socket) -> None:
        with self._conn_lock:
            self._connections[conn] = False

    def _untrack(self, conn: socket.socket) -> None:
        with self._conn_lock:
            self._connections.pop(conn, None)

    def _mark_busy(self, conn: socket.socket) -> bool:
        with self._conn_lock:
            if conn in self._connections:
                self._connections[conn] = True
                return True
        return False

    def _mark_idle(self, conn: socket.socket) -> None:
        with self._conn_lock:
            if conn in self._connections:
                self._connections[conn] = False

    def _close_idle_connections(self) -> None:
        with self._conn_lock:
            for conn, busy in list(self._connections.items()):
                if busy:
                    continue
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass

    # -- replica lifecycle -------------------------------------------------------
    def _spawn_command(self, replica: Replica) -> list[str]:
        command = [
            sys.executable, "-m", "repro.cli", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--replica-id", replica.replica_id,
        ]
        if self.store is not None:
            command += ["--store", self.store]
        command += self.serve_argv
        return command

    def _spawn(self, replica: Replica) -> None:
        replica.url_ready.clear()
        replica.url = replica.host = replica.port = None
        # The replica imports `repro` from the same tree this supervisor
        # runs from, wherever the operator's PYTHONPATH points.
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if src_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                src_root + (os.pathsep + existing if existing else "")
            )
        replica.process = subprocess.Popen(
            self._spawn_command(replica),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        replica.spawned_at = time.monotonic()
        threading.Thread(
            target=self._pump_output,
            args=(replica, replica.process),
            name=f"repro-fleet-{replica.replica_id}-out",
            daemon=True,
        ).start()

    def _pump_output(self, replica: Replica, process: subprocess.Popen) -> None:
        """Parse the serve banner for the port; keep the pipe drained."""
        stdout = process.stdout
        if stdout is None:
            return
        for line in stdout:
            if not replica.url_ready.is_set():
                match = _BANNER.search(line)
                if match is not None:
                    parsed = urllib.parse.urlsplit(match.group(1))
                    replica.url = match.group(1)
                    replica.host = parsed.hostname
                    replica.port = parsed.port
                    replica.url_ready.set()
            if not self.quiet:
                print(f"[{replica.replica_id}] {line}", end="", flush=True)

    def _await_ready(self, replica: Replica, deadline: float) -> bool:
        """Banner parsed and healthz 200 before ``deadline``; admit or not."""
        if not replica.url_ready.wait(max(0.0, deadline - time.monotonic())):
            return False
        while time.monotonic() < deadline:
            if not replica.alive():
                return False
            try:
                status, _ = self._forward(replica, "GET", "/v1/healthz", b"")
            except (OSError, http.client.HTTPException):
                status = 0
            if status == 200:
                return True
            time.sleep(0.05)
        return False

    # -- serving -----------------------------------------------------------------
    def start(self) -> "FleetSupervisor":
        """Spawn every replica, wait for health, start front + supervisor."""
        for replica in self.replicas:
            self._spawn(replica)
        deadline = time.monotonic() + self.spawn_timeout
        failed = [
            replica.replica_id
            for replica in self.replicas
            if not self._await_ready(replica, deadline)
        ]
        if failed:
            self.stop(drain_timeout=5.0)
            raise RuntimeError(
                f"replica(s) {', '.join(failed)} failed to become healthy "
                f"within {self.spawn_timeout}s"
            )
        for replica in self.replicas:
            replica.in_rotation = True
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-fleet", daemon=True
        )
        self._thread.start()
        self._health_thread = threading.Thread(
            target=self._health_loop, name="repro-fleet-health", daemon=True
        )
        self._health_thread.start()
        return self

    def serve_forever(self) -> None:
        try:
            self.httpd.serve_forever(poll_interval=0.1)
        finally:
            self.httpd.server_close()

    def _health_loop(self) -> None:
        """Respawn dead replicas (budgeted); keep rotation = the healthy set."""
        while not self._stopping.wait(self.health_interval):
            for replica in self.replicas:
                if not replica.admittable or self._stopping.is_set():
                    continue
                if not replica.alive():
                    replica.in_rotation = False
                    if replica.expected_exit or replica.failed:
                        continue
                    if replica.restarts >= self.restart_budget:
                        replica.failed = True
                        continue
                    replica.restarts += 1
                    self._spawn(replica)
                    continue
                if not replica.url_ready.is_set():
                    continue
                try:
                    status, _ = self._forward(
                        replica, "GET", "/v1/healthz", b"",
                        timeout=min(5.0, self.request_timeout),
                    )
                except (OSError, http.client.HTTPException):
                    status = 0
                replica.in_rotation = status == 200

    # -- routing -----------------------------------------------------------------
    def _routing_order(self) -> list[Replica]:
        """In-rotation replicas, rotated round-robin per call."""
        with self._lock:
            candidates = [
                replica
                for replica in self.replicas
                if replica.in_rotation and replica.url_ready.is_set()
            ]
            if not candidates:
                return []
            self._rr = (self._rr + 1) % len(candidates)
            offset = self._rr
        return candidates[offset:] + candidates[:offset]

    def _forward(
        self,
        replica: Replica,
        method: str,
        path: str,
        body: bytes,
        timeout: float | None = None,
    ) -> tuple[int, bytes]:
        """One raw exchange with a replica; (status, body bytes)."""
        connection = http.client.HTTPConnection(
            replica.host, replica.port, timeout=timeout or self.request_timeout
        )
        try:
            headers = {"Accept": "application/json"}
            if body:
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body or None, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def _proxy(
        self, method: str, route: str, body: bytes
    ) -> tuple[Replica | None, int, bytes]:
        """Health-aware proxying with failover.

        Connection-level failures (the replica died mid-flight) and 503s
        (it started draining after routing chose it) both retry on the
        next in-rotation replica — the seam that makes a rolling restart
        invisible to clients.
        """
        last: tuple[int, bytes] | None = None
        for replica in self._routing_order():
            try:
                status, data = self._forward(replica, method, "/v1" + route, body)
            except (OSError, http.client.HTTPException):
                with self._lock:
                    self.failovers += 1
                replica.in_rotation = False  # health loop readmits on recovery
                continue
            if status == 503:
                with self._lock:
                    self.failovers += 1
                last = (status, data)
                continue
            return replica, status, data
        if last is not None:
            return None, last[0], last[1]
        return None, 503, encode_json(
            error_envelope("ServiceError", "no replica in rotation", 503)
        )

    # -- the fleet API -----------------------------------------------------------
    def dispatch(self, method: str, route: str, body: bytes) -> tuple[int, bytes]:
        """Answer one front request; ``(status, body bytes)``."""
        if method == "GET":
            if route == "/healthz":
                return self._fleet_healthz()
            if route == "/metrics":
                return self._fleet_metrics()
            if route == "/version":
                return self._fleet_version()
            if route == "/fleet":
                return 200, encode_json(self.status())
            if route == "/jobs":
                return self._list_jobs()
            if route.startswith("/jobs/"):
                return self._job_route("GET", route)
        elif method == "POST":
            if route == "/solve":
                with self._lock:
                    self.proxied["solve"] += 1
                _, status, data = self._proxy("POST", route, body)
                return status, data
            if route == "/sweep":
                with self._lock:
                    self.proxied["sweep"] += 1
                _, status, data = self._proxy("POST", route, body)
                return status, data
            if route == "/jobs/sweep":
                return self._submit_job(body)
            if route == "/fleet/restart":
                threading.Thread(
                    target=self.rolling_restart,
                    name="repro-fleet-restart",
                    daemon=True,
                ).start()
                return 202, encode_json({"status": "rolling restart started"})
            if route == "/shutdown":
                self.stop_async()
                return 202, encode_json({"status": "shutting down"})
        elif method == "DELETE":
            if route.startswith("/jobs/"):
                return self._job_route("DELETE", route)
        return 404, encode_json(
            error_envelope("ServiceError", f"no such path {route!r}", 404)
        )

    def _fleet_healthz(self) -> tuple[int, bytes]:
        draining = self._stopping.is_set()
        states = {
            replica.replica_id: {
                "state": replica.state(),
                "in_rotation": replica.in_rotation,
                "restarts": replica.restarts,
                "url": replica.url,
            }
            for replica in self.replicas
        }
        in_rotation = sum(1 for replica in self.replicas if replica.in_rotation)
        if draining:
            status = "draining"
        elif in_rotation == len(self.replicas):
            status = "ok"
        elif in_rotation:
            status = "degraded"
        else:
            status = "unhealthy"
        payload = {
            "status": status,
            "fleet": True,
            "draining": draining,
            "healthy": in_rotation > 0,
            "in_rotation": in_rotation,
            "replica_count": len(self.replicas),
            "replicas": states,
            "uptime_seconds": time.monotonic() - self._started_monotonic,
        }
        unavailable = draining or in_rotation == 0
        return (503 if unavailable else 200), encode_json(payload)

    def _fleet_metrics(self) -> tuple[int, bytes]:
        per_replica: dict[str, Any] = {}
        totals: dict[str, Any] = {}
        for replica in self.replicas:
            if not (replica.alive() and replica.url_ready.is_set()):
                continue
            try:
                status, data = self._forward(replica, "GET", "/v1/metrics", b"")
            except (OSError, http.client.HTTPException):
                continue
            if status != 200:
                continue
            try:
                metrics = json.loads(data)
            except ValueError:
                continue
            per_replica[replica.replica_id] = metrics
            _merge_numeric(totals, metrics)
        with self._lock:
            fleet_block = {
                "replicas": len(self.replicas),
                "in_rotation": sum(
                    1 for replica in self.replicas if replica.in_rotation
                ),
                "proxied": dict(self.proxied),
                "failovers": self.failovers,
                "respawns": sum(replica.restarts for replica in self.replicas),
                "rolling_restarts": self.rolling_restarts,
                "uptime_seconds": time.monotonic() - self._started_monotonic,
            }
        return 200, encode_json(
            {"fleet": fleet_block, "totals": totals, "replicas": per_replica}
        )

    def _fleet_version(self) -> tuple[int, bytes]:
        from .. import __version__

        versions: dict[str, Any] = {}
        for replica in self.replicas:
            if not (replica.alive() and replica.url_ready.is_set()):
                versions[replica.replica_id] = None
                continue
            try:
                status, data = self._forward(replica, "GET", "/v1/version", b"")
                versions[replica.replica_id] = (
                    json.loads(data) if status == 200 else None
                )
            except (OSError, http.client.HTTPException, ValueError):
                versions[replica.replica_id] = None
        return 200, encode_json(
            {
                "package": __version__,
                "api": "v1",
                "fleet": True,
                "replicas": versions,
            }
        )

    def status(self) -> dict[str, Any]:
        """Supervision snapshot (``GET /v1/fleet``)."""
        return {
            "url": self.url,
            "store": self.store,
            "restart_budget": self.restart_budget,
            "rolling_restarts": self.rolling_restarts,
            "stopping": self._stopping.is_set(),
            "replicas": [
                {
                    "replica": replica.replica_id,
                    "state": replica.state(),
                    "in_rotation": replica.in_rotation,
                    "restarts": replica.restarts,
                    "pid": replica.process.pid if replica.process else None,
                    "url": replica.url,
                }
                for replica in self.replicas
            ],
        }

    # -- job namespacing ---------------------------------------------------------
    def _submit_job(self, body: bytes) -> tuple[int, bytes]:
        with self._lock:
            self.proxied["jobs"] += 1
        replica, status, data = self._proxy("POST", "/jobs/sweep", body)
        if replica is None or status != 202:
            return status, data
        return status, _prefix_job_ids(data, replica.replica_id)

    def _job_route(self, method: str, route: str) -> tuple[int, bytes]:
        with self._lock:
            self.proxied["jobs"] += 1
        reference = route[len("/jobs/"):]
        owner_id, sep, raw_id = reference.partition(".")
        replica = next(
            (r for r in self.replicas if r.replica_id == owner_id), None
        ) if sep else None
        if replica is None or not raw_id:
            return 404, encode_json(error_envelope(
                "ServiceError",
                f"no such job {reference!r} (fleet job ids are "
                "'<replica>.<id>')",
                404,
            ))
        if not (replica.alive() and replica.url_ready.is_set()):
            return 404, encode_json(error_envelope(
                "ServiceError",
                f"job {reference!r}: replica {owner_id} is gone "
                "(jobs are replica-local and do not survive restarts)",
                404,
            ))
        try:
            status, data = self._forward(
                replica, method, f"/v1/jobs/{raw_id}", b""
            )
        except (OSError, http.client.HTTPException):
            return 503, encode_json(error_envelope(
                "ServiceError", f"replica {owner_id} unreachable", 503
            ))
        return status, _prefix_job_ids(data, replica.replica_id)

    def _list_jobs(self) -> tuple[int, bytes]:
        with self._lock:
            self.proxied["jobs"] += 1
        merged: list[Any] = []
        for replica in self.replicas:
            if not (replica.alive() and replica.url_ready.is_set()):
                continue
            try:
                status, data = self._forward(replica, "GET", "/v1/jobs", b"")
            except (OSError, http.client.HTTPException):
                continue
            if status != 200:
                continue
            try:
                jobs = json.loads(data).get("jobs", [])
            except ValueError:
                continue
            for job in jobs:
                if isinstance(job, dict) and "job" in job:
                    job["job"] = f"{replica.replica_id}.{job['job']}"
                merged.append(job)
        return 200, encode_json({"jobs": merged})

    # -- rolling restart ---------------------------------------------------------
    def rolling_restart(self, drain_timeout: float = 60.0) -> dict[str, Any]:
        """Cycle every replica, one at a time, losing no requests.

        Per replica: leave rotation (the router stops sending work) →
        POST its ``/v1/shutdown`` (the replica's own drain completes
        in-flight responses and flushes popularity into the shared store)
        → wait for exit → respawn with the identical command line → wait
        for healthz 200 → readmit.  Serialized against concurrent restart
        requests; a fleet mid-stop skips the remaining replicas.
        """
        with self._restart_lock:
            restarted: list[str] = []
            failed: list[str] = []
            for replica in self.replicas:
                if self._stopping.is_set():
                    break
                if self._restart_one(replica, drain_timeout):
                    restarted.append(replica.replica_id)
                else:
                    failed.append(replica.replica_id)
            with self._lock:
                self.rolling_restarts += 1
        return {"restarted": restarted, "failed": failed}

    def _restart_one(self, replica: Replica, drain_timeout: float) -> bool:
        replica.admittable = False
        replica.in_rotation = False
        replica.expected_exit = True
        try:
            process = replica.process
            if process is not None and process.poll() is None:
                if replica.url_ready.is_set():
                    try:
                        self._forward(replica, "POST", "/v1/shutdown", b"{}")
                    except (OSError, http.client.HTTPException):
                        pass  # already dying — wait below either way
                try:
                    process.wait(timeout=drain_timeout)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()
            self._spawn(replica)
            ready = self._await_ready(
                replica, time.monotonic() + self.spawn_timeout
            )
            replica.failed = not ready
            replica.in_rotation = ready
            return ready
        finally:
            replica.expected_exit = False
            replica.admittable = True

    # -- shutdown ----------------------------------------------------------------
    def stop(self, drain_timeout: float | None = None) -> bool:
        """Drain every replica, then stop the front.  Idempotent.

        The stopping flag flips first (fleet healthz answers 503, every
        front response says ``Connection: close``), each replica gets a
        ``/v1/shutdown`` and is waited on — their drains complete any
        requests the front still has in flight — and only then does the
        front's accept loop stop and join its handler threads.
        """
        if self._stopped.is_set():
            return True
        self._stopped.set()
        self._stopping.set()
        per_replica_timeout = drain_timeout if drain_timeout is not None else 60.0

        def _stop_replica(replica: Replica) -> None:
            replica.in_rotation = False
            replica.expected_exit = True
            process = replica.process
            if process is None or process.poll() is not None:
                return
            if replica.url_ready.is_set():
                try:
                    self._forward(replica, "POST", "/v1/shutdown", b"{}")
                except (OSError, http.client.HTTPException):
                    pass
            try:
                process.wait(timeout=per_replica_timeout)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

        stoppers = [
            threading.Thread(target=_stop_replica, args=(replica,), daemon=True)
            for replica in self.replicas
        ]
        for thread in stoppers:
            thread.start()
        for thread in stoppers:
            thread.join()
        drained = all(
            replica.process is None or replica.process.returncode == 0
            for replica in self.replicas
        )
        self._close_idle_connections()
        self.httpd.shutdown()
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=5.0)
        if self._health_thread is not None:
            self._health_thread.join(timeout=5.0)
        return drained

    def stop_async(self) -> None:
        threading.Thread(
            target=self.stop, name="repro-fleet-stop", daemon=True
        ).start()


def _prefix_job_ids(data: bytes, replica_id: str) -> bytes:
    """Namespace a replica-local ``"job"`` id into the fleet's id space."""
    try:
        payload = json.loads(data)
    except ValueError:
        return data
    if isinstance(payload, dict) and "job" in payload:
        payload["job"] = f"{replica_id}.{payload['job']}"
        return encode_json(payload)
    return data


def _merge_numeric(total: dict[str, Any], block: Any) -> dict[str, Any]:
    """Sum every numeric leaf of ``block`` into ``total`` (recursively).

    Booleans and strings are identity, not quantity, and are skipped —
    what remains (request counts, cache hits, result-tier hits …) adds
    meaningfully across replicas.
    """
    if not isinstance(block, dict):
        return total
    for key, value in block.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            current = total.get(key, 0)
            if isinstance(current, (int, float)) and not isinstance(current, bool):
                total[key] = current + value
        elif isinstance(value, dict):
            nested = total.setdefault(key, {})
            if isinstance(nested, dict):
                _merge_numeric(nested, value)
    return total
