"""Request payload codec for the solve service.

A client talks to the service in plain JSON.  A solve request body names
exactly one instance — ``"workflow"`` (a
:func:`~repro.workloads.serialization.workflow_to_dict` payload, solved at
the request's ``gamma``/``kind``) or ``"problem"`` (a
:func:`~repro.workloads.serialization.problem_to_dict` payload with Γ, kind
and requirement lists baked in) — plus solve parameters::

    {"workflow": {...}, "gamma": 2, "kind": "set",
     "solver": "auto", "seed": null, "verify": false,
     "backend": null, "costs": {"a3": 10.0}, "timeout": 30.0}

Parsing produces a :class:`SolveJob`, whose :attr:`SolveJob.key` is the
**coalescing key**: ``(workflow_fingerprint, backend, gamma, kind, solver,
seed, verify)`` (plus the cost-override items when present).  The
fingerprint reuses the store's content canonicalization
(:func:`~repro.workloads.fingerprint.workflow_fingerprint`), so two clients
submitting the same workflow — regardless of module order, dict key order
or formatting — produce the same key, coalesce while in flight, and share
one persistent-store entry with every other surface (CLI, sweep executor).

Anything malformed raises :class:`ServiceError` with an HTTP status the
server maps onto the response; nothing here touches sockets, so the codec
is directly unit-testable.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..kernel import VALID_BACKENDS, resolve_backend

__all__ = [
    "InstanceCache",
    "JOB_STATES",
    "TERMINAL_JOB_STATES",
    "ServiceError",
    "ServiceTimeout",
    "SolveJob",
    "WorkerError",
    "error_envelope",
    "parse_solve_payload",
]

#: Requirement-list kinds a request may ask for (workflow instances only).
VALID_KINDS = ("set", "cardinality")

#: Lifecycle of an asynchronous job (see :mod:`repro.service.background`).
JOB_STATES = ("pending", "running", "done", "failed", "cancelled")

#: The subset of :data:`JOB_STATES` a job never leaves once entered.
TERMINAL_JOB_STATES = ("done", "failed", "cancelled")


def error_envelope(
    error_type: str, message: str, status: int
) -> dict[str, Any]:
    """The one wire shape every error answers with (v1 API contract)::

        {"error": {"type": ..., "message": ..., "status": ...}}

    ``type`` is the failing exception's class name (a worker forwards the
    original class across the process boundary), ``status`` duplicates the
    HTTP status so clients reading only the body lose nothing.
    """
    return {
        "error": {"type": error_type, "message": message, "status": status}
    }


class ServiceError(Exception):
    """A request-level failure, carrying the HTTP status to report."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status
        #: Class name reported in the envelope (:class:`WorkerError`
        #: overwrites it with the original class from the worker process).
        self.error_type = type(self).__name__

    def as_dict(self) -> dict[str, Any]:
        return error_envelope(self.error_type, str(self), self.status)


class ServiceTimeout(ServiceError):
    """The request's deadline passed before its computation finished.

    The computation itself keeps running (worker threads cannot be
    interrupted) and still lands in the cache and store, so a retry of the
    same request is typically served instantly.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message, status=504)


class WorkerError(ServiceError):
    """A failure forwarded from an execution-tier worker process.

    Exceptions cannot cross the process boundary faithfully (tracebacks and
    custom classes do not pickle portably), so the tier ships ``(message,
    status, error_type)`` and the parent re-raises this wrapper.
    ``error_type`` preserves the original class name for sweep error
    records, keeping ``error_type`` in a report identical between the
    thread and process tiers.
    """

    def __init__(
        self, message: str, status: int = 500, error_type: str | None = None
    ) -> None:
        super().__init__(message, status)
        self.error_type = error_type or "WorkerError"


@dataclass(frozen=True)
class SolveJob:
    """One parsed solve request, canonicalized for coalescing.

    ``instance`` is the rebuilt :class:`~repro.core.workflow.Workflow` or
    :class:`~repro.core.secure_view.SecureViewProblem` — the *same object*
    for every request with the same content fingerprint (see
    :class:`InstanceCache`), so the engine's identity-keyed memory tables
    hit across requests.
    """

    source: str  # "workflow" | "problem"
    instance: Any
    fingerprint: str
    label: str
    gamma: int | None
    kind: str | None
    solver: str
    seed: int | None
    verify: bool
    backend: str
    costs: tuple[tuple[str, float], ...] | None
    timeout: float | None
    #: The raw (JSON-shaped) instance payload the request carried.  Kept so
    #: the job can be re-encoded for the process execution tier
    #: (:meth:`to_wire`); excluded from equality — the fingerprint already
    #: canonicalizes content.
    payload: Mapping[str, Any] | None = field(default=None, compare=False)

    @property
    def key(self) -> tuple:
        """The coalescing identity of this request.

        Identical in-flight requests attach to one computation; the cost
        items ride along so a what-if override never aliases the base
        solve.
        """
        return (
            self.fingerprint,
            self.backend,
            self.gamma,
            self.kind,
            self.solver,
            self.seed,
            self.verify,
            self.costs,
        )

    def to_wire(self) -> dict[str, Any]:
        """Re-encode this job as a ``POST /solve`` body.

        This is how a solve crosses the process boundary to the execution
        tier: the *parsed* job holds a rebuilt workflow whose callables do
        not pickle, but the JSON body round-trips — the worker re-parses it
        through :func:`parse_solve_payload` and (by fingerprint) lands on
        the same coalescing identity.  ``timeout`` is deliberately dropped:
        deadlines are enforced parent-side by the coalescer wait.
        """
        if self.payload is None:
            raise ValueError("job carries no raw payload to re-encode")
        body: dict[str, Any] = {
            self.source: self.payload,
            "label": self.label,
            "solver": self.solver,
            "verify": self.verify,
            "backend": self.backend,
        }
        if self.source == "workflow":
            body["gamma"] = self.gamma
            body["kind"] = self.kind
        if self.seed is not None:
            body["seed"] = self.seed
        if self.costs is not None:
            body["costs"] = dict(self.costs)
        return body


class InstanceCache:
    """Rebuilt instances keyed by content, bounded FIFO.

    Two layers of deduplication: a raw-payload digest short-circuits exact
    byte-for-byte repeats without rebuilding anything, and the canonical
    content fingerprint maps semantically identical payloads (different
    module order, different dict order) to one live object.  Returning the
    *same* object matters because the engine's memory tables are keyed by
    object identity — a repeated request then hits the cache front instead
    of re-probing the store.
    """

    def __init__(self, max_entries: int = 64) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._by_digest: OrderedDict[str, tuple[Any, str]] = OrderedDict()
        self._by_fingerprint: OrderedDict[str, Any] = OrderedDict()

    def _remember(self, table: OrderedDict, key: str, value: Any) -> None:
        while len(table) >= self.max_entries:
            table.popitem(last=False)
        table[key] = value

    def resolve(self, source: str, payload: Mapping[str, Any]) -> tuple[Any, str]:
        """``(instance, fingerprint)`` for one request payload.

        Serialized under one lock: concurrent first requests for the same
        content must converge on a single rebuilt object, or the
        identity-keyed engine tables would treat them as distinct
        instances.  Rebuilding under the lock costs a few ms once per new
        instance — repeats are dictionary hits.
        """
        from ..workloads.fingerprint import payload_fingerprint, workflow_fingerprint
        from ..workloads.serialization import problem_from_dict, workflow_from_dict

        with self._lock:
            digest = payload_fingerprint({source: payload})
            cached = self._by_digest.get(digest)
            if cached is not None:
                return cached
            if source == "workflow":
                instance = workflow_from_dict(payload)
                fingerprint = workflow_fingerprint(instance)
            else:
                instance = problem_from_dict(payload)
                # Mirrors the sweep executor's problem keying, so service
                # and sweep share persistent-store result entries.
                fingerprint = payload_fingerprint({"problem": payload})
            existing = self._by_fingerprint.get(fingerprint)
            if existing is not None:
                instance = existing
            else:
                self._remember(self._by_fingerprint, fingerprint, instance)
            built = (instance, fingerprint)
            self._remember(self._by_digest, digest, built)
            return built


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ServiceError(message)


def _parse_seed(value: Any) -> int | None:
    if value is None:
        return None
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        "seed must be an integer or null",
    )
    return int(value)


def _parse_timeout(value: Any) -> float | None:
    if value is None:
        return None
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool) and value > 0,
        "timeout must be a positive number of seconds",
    )
    return float(value)


def _parse_costs(value: Any) -> tuple[tuple[str, float], ...] | None:
    if value is None:
        return None
    _require(isinstance(value, Mapping), "costs must be an object of attribute -> cost")
    items: list[tuple[str, float]] = []
    for name, cost in value.items():
        _require(
            isinstance(name, str)
            and isinstance(cost, (int, float))
            and not isinstance(cost, bool),
            "costs must map attribute names to numbers",
        )
        items.append((name, float(cost)))
    return tuple(sorted(items))


def parse_solve_payload(
    body: Any, instances: InstanceCache
) -> SolveJob:
    """Validate one ``POST /solve`` body and canonicalize it into a job.

    Raises :class:`ServiceError` (status 400) on anything malformed — an
    unknown field combination, a bad Γ, an unknown solver kind or backend,
    or an instance payload the serializer rejects.
    """
    _require(isinstance(body, Mapping), "request body must be a JSON object")
    has_workflow = "workflow" in body
    has_problem = "problem" in body
    _require(
        has_workflow != has_problem,
        "request must name exactly one of 'workflow' or 'problem'",
    )
    source = "workflow" if has_workflow else "problem"
    payload = body[source]
    _require(isinstance(payload, Mapping), f"'{source}' must be a JSON object")

    if has_workflow:
        gamma = body.get("gamma")
        _require(
            isinstance(gamma, int) and not isinstance(gamma, bool) and gamma >= 1,
            "workflow requests need an integer 'gamma' >= 1",
        )
        kind = body.get("kind", "set")
        _require(kind in VALID_KINDS, f"kind must be one of {VALID_KINDS}")
    else:
        _require(
            "gamma" not in body and "kind" not in body,
            "problem requests carry Γ and kind in the problem payload",
        )
        gamma = None
        kind = None

    solver = body.get("solver", "auto")
    _require(isinstance(solver, str) and bool(solver), "solver must be a name string")
    verify = body.get("verify", False)
    _require(isinstance(verify, bool), "verify must be a boolean")
    backend = body.get("backend")
    _require(
        backend is None or backend in VALID_BACKENDS,
        f"backend must be one of {sorted(VALID_BACKENDS)}",
    )

    try:
        instance, fingerprint = instances.resolve(source, payload)
    except ServiceError:
        raise
    except Exception as exc:  # serializer-level validation failures
        raise ServiceError(f"invalid {source} payload: {exc}") from exc

    label = body.get("label")
    if label is None:
        label = payload.get("name") or payload.get("workflow", {}).get("name") or source
    _require(isinstance(label, str), "label must be a string")

    return SolveJob(
        source=source,
        instance=instance,
        fingerprint=fingerprint,
        label=label,
        gamma=gamma,
        kind=kind,
        solver=solver,
        seed=_parse_seed(body.get("seed")),
        verify=verify,
        backend=resolve_backend(backend),
        costs=_parse_costs(body.get("costs")),
        timeout=_parse_timeout(body.get("timeout")),
        payload=payload,
    )
