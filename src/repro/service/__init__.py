"""Long-lived solve service over the Secure-View engine.

Every other surface in this repository — the CLI, ``run_sweep``, a script
holding a :class:`~repro.engine.Planner` — is a one-shot process: it pays
interpreter start-up, store attachment and kernel compilation per
invocation, then throws the hot state away.  This package keeps that state
resident and serves it over HTTP/JSON (stdlib only)::

    repro serve --store .repro-store --workers 4 --port 8080
    repro submit problem.json --url http://127.0.0.1:8080

Components
----------
:class:`SolveService`
    The process core: one hot thread-safe
    :class:`~repro.engine.cache.DerivationCache` (optionally store-backed),
    a solve worker pool, an in-memory result cache, and **request
    coalescing** — concurrent identical requests (same workflow
    fingerprint, backend, Γ, kind, solver, seed, verify) attach to one
    computation and all receive its result.
:class:`RequestCoalescer`
    The keyed single-flight table behind the coalescing, with
    leader/follower counters (``coalesced`` in ``/metrics``).
:class:`JobManager` / :class:`MaintenanceScheduler`
    The background subsystem: ``POST /jobs/sweep`` returns a job id
    immediately and the cells run through the same pipeline
    (``GET /jobs/<id>`` reports progress and partial records,
    ``DELETE /jobs/<id>`` cancels); a scheduler thread owns store GC to a
    byte budget, cache TTL expiry, popularity flushing and restart
    warm-up.
:class:`ServiceServer`
    The threaded HTTP front for one replica: ``POST /v1/solve``,
    ``POST /v1/sweep``, ``POST /v1/jobs/sweep``, ``GET /v1/jobs[/<id>]``,
    ``DELETE /v1/jobs/<id>``, ``GET /v1/healthz``, ``GET /v1/metrics``,
    ``GET /v1/version``, ``POST /v1/shutdown`` (unprefixed legacy aliases
    answer with a ``Deprecation`` header); keep-alive connections;
    graceful drain on stop.
:class:`FleetSupervisor`
    ``repro fleet``: N supervised ``repro serve`` replica processes on
    one shared store behind a health-aware ``/v1`` proxy front, with
    budgeted respawns and drain-aware rolling restarts.
:class:`ServiceClient`
    Stdlib client used by ``repro submit`` and scripts; keep-alive
    connections, versioned-API negotiation, envelope-aware errors.
:class:`SolveJob` / :func:`parse_solve_payload`
    The request codec; a job's ``key`` is the coalescing identity.
"""

from .background import JobManager, MaintenanceScheduler, SweepJob
from .client import ServiceClient, ServiceClientError
from .coalescer import InFlight, RequestCoalescer
from .exec_tier import ProcessExecTier, TierUnavailable
from .fleet import FleetSupervisor, Replica
from .jobs import (
    JOB_STATES,
    TERMINAL_JOB_STATES,
    InstanceCache,
    ServiceError,
    ServiceTimeout,
    SolveJob,
    WorkerError,
    parse_solve_payload,
)
from .server import ServiceServer
from .service import SolveService

__all__ = [
    "FleetSupervisor",
    "InFlight",
    "InstanceCache",
    "JOB_STATES",
    "JobManager",
    "MaintenanceScheduler",
    "ProcessExecTier",
    "Replica",
    "RequestCoalescer",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceServer",
    "ServiceTimeout",
    "SolveJob",
    "SolveService",
    "SweepJob",
    "TERMINAL_JOB_STATES",
    "TierUnavailable",
    "WorkerError",
    "parse_solve_payload",
]
