"""Long-lived solve service over the Secure-View engine.

Every other surface in this repository — the CLI, ``run_sweep``, a script
holding a :class:`~repro.engine.Planner` — is a one-shot process: it pays
interpreter start-up, store attachment and kernel compilation per
invocation, then throws the hot state away.  This package keeps that state
resident and serves it over HTTP/JSON (stdlib only)::

    repro serve --store .repro-store --workers 4 --port 8080
    repro submit problem.json --url http://127.0.0.1:8080

Components
----------
:class:`SolveService`
    The process core: one hot thread-safe
    :class:`~repro.engine.cache.DerivationCache` (optionally store-backed),
    a solve worker pool, an in-memory result cache, and **request
    coalescing** — concurrent identical requests (same workflow
    fingerprint, backend, Γ, kind, solver, seed, verify) attach to one
    computation and all receive its result.
:class:`RequestCoalescer`
    The keyed single-flight table behind the coalescing, with
    leader/follower counters (``coalesced`` in ``/metrics``).
:class:`ServiceServer`
    The threaded HTTP front: ``POST /solve``, ``POST /sweep``,
    ``GET /healthz``, ``GET /metrics``, ``POST /shutdown``; graceful
    drain on stop.
:class:`ServiceClient`
    Stdlib client used by ``repro submit`` and scripts.
:class:`SolveJob` / :func:`parse_solve_payload`
    The request codec; a job's ``key`` is the coalescing identity.
"""

from .client import ServiceClient, ServiceClientError
from .coalescer import InFlight, RequestCoalescer
from .jobs import (
    InstanceCache,
    ServiceError,
    ServiceTimeout,
    SolveJob,
    parse_solve_payload,
)
from .server import ServiceServer
from .service import SolveService

__all__ = [
    "InFlight",
    "InstanceCache",
    "RequestCoalescer",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceServer",
    "ServiceTimeout",
    "SolveJob",
    "SolveService",
    "parse_solve_payload",
]
