"""Request coalescing: identical in-flight requests share one computation.

The serving-side observation behind this module: under concurrent load the
same instance is asked for repeatedly (dashboards refreshing, retries, many
clients watching one workflow), and the expensive part of a Secure-View
solve — requirement derivation — is a pure function of the request key.  So
when a request arrives whose key is *already being computed*, the right
move is to attach it to the running computation instead of queueing a
duplicate.

The mechanics are a keyed single-flight table:

* the **first** request for a key becomes the *leader*: it registers an
  :class:`InFlight` entry (atomically, under one lock) and owns starting
  the computation;
* every **later** request for the same key, arriving while the entry is
  unresolved, becomes a *follower*: it increments the entry's waiter count
  and blocks on the entry's event (``coalesced`` counts these);
* whoever completes the computation calls :meth:`RequestCoalescer.resolve`,
  which removes the entry and wakes every waiter with one shared result (or
  one shared exception).

Because registration happens synchronously inside :meth:`join`, a batch of
K identical requests that all call ``join`` before the leader's computation
finishes performs **exactly one** computation and reports ``coalesced ==
K - 1`` — the property the service benchmark asserts.

Waiting is deadline-aware: a follower (or leader) whose timeout expires
stops waiting and gets a :class:`~repro.service.jobs.ServiceTimeout`, but
the entry stays alive until resolved, so the computation is never orphaned
and late followers can still attach.
"""

from __future__ import annotations

import threading
from typing import Any, Hashable

from .jobs import ServiceTimeout

__all__ = ["InFlight", "RequestCoalescer"]


class InFlight:
    """One running computation: its waiters, and eventually its outcome."""

    __slots__ = ("key", "event", "waiters", "result", "error")

    def __init__(self, key: Hashable) -> None:
        self.key = key
        self.event = threading.Event()
        self.waiters = 1  # the leader
        self.result: Any = None
        self.error: BaseException | None = None


class RequestCoalescer:
    """Keyed single-flight table with leader/follower accounting."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._inflight: dict[Hashable, InFlight] = {}
        self.leaders = 0
        self.coalesced = 0

    # -- attach -----------------------------------------------------------------
    def join(self, key: Hashable) -> tuple[bool, InFlight]:
        """Attach to the computation for ``key``; ``(is_leader, entry)``.

        Atomic: exactly one caller per in-flight window is the leader and
        must eventually :meth:`resolve` the entry (normally via a
        done-callback on the computation, so a leader that stops waiting
        early still resolves its followers).
        """
        with self._lock:
            entry = self._inflight.get(key)
            if entry is None:
                entry = InFlight(key)
                self._inflight[key] = entry
                self.leaders += 1
                self._changed.notify_all()
                return True, entry
            entry.waiters += 1
            self.coalesced += 1
            self._changed.notify_all()
            return False, entry

    # -- complete ---------------------------------------------------------------
    def resolve(
        self,
        entry: InFlight,
        result: Any = None,
        error: BaseException | None = None,
    ) -> None:
        """Publish the outcome and wake every waiter (exactly once)."""
        with self._lock:
            self._inflight.pop(entry.key, None)
            entry.result = result
            entry.error = error
            entry.event.set()
            self._changed.notify_all()

    def wait(self, entry: InFlight, timeout: float | None = None) -> Any:
        """Block until the entry resolves; the shared result or exception."""
        if not entry.event.wait(timeout):
            raise ServiceTimeout(
                f"request did not complete within {timeout:.3f}s "
                "(the computation keeps running; retry to pick up its result)"
            )
        if entry.error is not None:
            raise entry.error
        return entry.result

    # -- introspection ----------------------------------------------------------
    def in_flight(self) -> int:
        """Number of distinct computations currently running."""
        with self._lock:
            return len(self._inflight)

    def waiters(self, key: Hashable) -> int:
        """Requests currently attached to ``key`` (0 when not in flight)."""
        with self._lock:
            entry = self._inflight.get(key)
            return entry.waiters if entry is not None else 0

    def await_waiters(
        self, key: Hashable, count: int, timeout: float | None = None
    ) -> bool:
        """Block until ``key`` has at least ``count`` attached waiters.

        Condition-based (no polling); used by deterministic concurrency
        tests and the demo to sequence "all followers attached" without
        sleeps.
        """
        with self._changed:
            return self._changed.wait_for(
                lambda: (
                    self._inflight.get(key) is not None
                    and self._inflight[key].waiters >= count
                ),
                timeout,
            )

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "leaders": self.leaders,
                "coalesced": self.coalesced,
                "in_flight": len(self._inflight),
            }
