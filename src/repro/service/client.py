"""Thin stdlib client for the solve service.

:class:`ServiceClient` wraps ``urllib`` — no dependencies, usable from any
script or from ``repro submit``::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8080")
    record = client.solve(workflow, gamma=2, kind="set", verify=True)
    print(record["cost"], record["hidden_attributes"])
    print(client.metrics()["coalesced"])

``solve`` accepts a live :class:`~repro.core.workflow.Workflow` /
:class:`~repro.core.secure_view.SecureViewProblem` (serialized on the way
out) or an already-serialized payload mapping.  HTTP-level failures raise
:class:`ServiceClientError` carrying the status code and the server's error
payload, so callers can distinguish a malformed request (400) from a
timeout (504) from a draining server (503).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Mapping

__all__ = ["ServiceClient", "ServiceClientError"]

#: Job states after which polling can stop (mirrors ``JOB_STATES``).
_TERMINAL_JOB_STATES = ("done", "failed", "cancelled")


class ServiceClientError(Exception):
    """An HTTP error response from the service (status + server payload)."""

    def __init__(
        self, status: int, message: str, payload: Mapping[str, Any] | None = None
    ):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = dict(payload or {})


def _instance_payload(instance: Any) -> Mapping[str, Any]:
    """Serialize a live workflow/problem; pass mappings through untouched."""
    if isinstance(instance, Mapping):
        return instance
    from ..core.secure_view import SecureViewProblem
    from ..core.workflow import Workflow
    from ..workloads.serialization import problem_to_dict, workflow_to_dict

    if isinstance(instance, Workflow):
        return workflow_to_dict(instance)
    if isinstance(instance, SecureViewProblem):
        return problem_to_dict(instance)
    raise TypeError(f"cannot serialize {type(instance).__name__} for the service")


class ServiceClient:
    """HTTP client for one service endpoint (``http://host:port``)."""

    def __init__(self, url: str, timeout: float = 300.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- transport --------------------------------------------------------------
    def request(self, method: str, path: str, payload: Any = None) -> dict[str, Any]:
        """One JSON round trip; raises :class:`ServiceClientError` on 4xx/5xx."""
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload, default=str).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.url}{path}", data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                error_payload = json.loads(exc.read().decode("utf-8"))
            except Exception:  # non-JSON error body
                error_payload = {}
            message = error_payload.get("error", exc.reason)
            raise ServiceClientError(
                exc.code, str(message), error_payload
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceClientError(
                0, f"cannot reach {self.url}: {exc.reason}"
            ) from exc
        except (TimeoutError, OSError) as exc:
            # Socket-level read timeouts (and connection resets mid-read)
            # surface as bare OSError/TimeoutError, not URLError; fold them
            # into the same controlled error so callers never see a raw
            # socket traceback.
            raise ServiceClientError(
                0, f"request to {self.url} failed: {str(exc) or type(exc).__name__}"
            ) from exc

    # -- endpoints --------------------------------------------------------------
    def submit(self, body: Mapping[str, Any]) -> dict[str, Any]:
        """POST a raw, already-assembled ``/solve`` body."""
        return self.request("POST", "/solve", body)

    def solve(
        self,
        workflow: Any = None,
        problem: Any = None,
        *,
        gamma: int | None = None,
        kind: str | None = None,
        solver: str = "auto",
        seed: int | None = None,
        verify: bool = False,
        backend: str | None = None,
        costs: Mapping[str, float] | None = None,
        timeout: float | None = None,
        label: str | None = None,
    ) -> dict[str, Any]:
        """Solve one instance on the server; the solve record."""
        if (workflow is None) == (problem is None):
            raise ValueError("pass exactly one of workflow= or problem=")
        body: dict[str, Any] = {"solver": solver, "seed": seed, "verify": verify}
        if workflow is not None:
            body["workflow"] = _instance_payload(workflow)
            body["gamma"] = gamma
            body["kind"] = kind if kind is not None else "set"
        else:
            body["problem"] = _instance_payload(problem)
        if backend is not None:
            body["backend"] = backend
        if costs is not None:
            body["costs"] = dict(costs)
        if timeout is not None:
            body["timeout"] = timeout
        if label is not None:
            body["label"] = label
        return self.submit(body)

    def sweep(
        self,
        *,
        workflows: tuple | list = (),
        problems: tuple | list = (),
        gammas: tuple | list = (2,),
        kinds: tuple | list = ("set",),
        solvers: tuple | list = ("auto",),
        seeds: tuple | list = (0,),
        verify: bool = False,
        backend: str | None = None,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Run an inline grid on the server; the sweep report."""
        body: dict[str, Any] = {
            "workflows": [_instance_payload(w) for w in workflows],
            "problems": [_instance_payload(p) for p in problems],
            "gammas": list(gammas),
            "kinds": list(kinds),
            "solvers": list(solvers),
            "seeds": list(seeds),
            "verify": verify,
        }
        if backend is not None:
            body["backend"] = backend
        if timeout is not None:
            body["timeout"] = timeout
        return self.request("POST", "/sweep", body)

    # -- async jobs --------------------------------------------------------------
    def submit_sweep_job(self, body: Mapping[str, Any]) -> dict[str, Any]:
        """POST a raw, already-assembled grid to ``/jobs/sweep``; the handle."""
        return self.request("POST", "/jobs/sweep", body)

    def sweep_async(
        self,
        *,
        workflows: tuple | list = (),
        problems: tuple | list = (),
        gammas: tuple | list = (2,),
        kinds: tuple | list = ("set",),
        solvers: tuple | list = ("auto",),
        seeds: tuple | list = (0,),
        verify: bool = False,
        backend: str | None = None,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Submit an inline grid as an async job; ``{"job": id, ...}``.

        Returns immediately; poll with :meth:`job` or block with
        :meth:`wait_job`.
        """
        body: dict[str, Any] = {
            "workflows": [_instance_payload(w) for w in workflows],
            "problems": [_instance_payload(p) for p in problems],
            "gammas": list(gammas),
            "kinds": list(kinds),
            "solvers": list(solvers),
            "seeds": list(seeds),
            "verify": verify,
        }
        if backend is not None:
            body["backend"] = backend
        if timeout is not None:
            body["timeout"] = timeout
        return self.submit_sweep_job(body)

    def job(self, job_id: str) -> dict[str, Any]:
        """``GET /jobs/<id>``: state, progress counters, partial records."""
        return self.request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        """``GET /jobs``: summaries of every tracked job."""
        return self.request("GET", "/jobs")["jobs"]

    def cancel_job(self, job_id: str) -> dict[str, Any]:
        """``DELETE /jobs/<id>``: stop pending cells; the job summary."""
        return self.request("DELETE", f"/jobs/{job_id}")

    def wait_job(
        self,
        job_id: str,
        timeout: float | None = None,
        poll: float = 0.2,
        on_progress: "Callable[[dict[str, Any]], None] | None" = None,
    ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; its final status.

        ``on_progress`` (if given) sees every polled snapshot — partial
        records included — which is how ``repro submit --watch`` renders a
        live progress line.  Raises :class:`ServiceClientError` (status 0)
        if ``timeout`` elapses first; the job keeps running server-side.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if on_progress is not None:
                on_progress(status)
            if status.get("state") in _TERMINAL_JOB_STATES:
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceClientError(
                    0,
                    f"job {job_id} still {status.get('state')!r} "
                    f"after {timeout}s (it keeps running server-side)",
                    status,
                )
            time.sleep(poll)

    def healthz(self) -> dict[str, Any]:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        return self.request("GET", "/metrics")

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to drain and exit (202 acknowledged)."""
        return self.request("POST", "/shutdown", {})
