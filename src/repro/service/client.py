"""Thin stdlib client for the solve service.

:class:`ServiceClient` wraps ``http.client`` — no dependencies, usable from
any script or from ``repro submit``::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8080")
    record = client.solve(workflow, gamma=2, kind="set", verify=True)
    print(record["cost"], record["hidden_attributes"])
    print(client.metrics()["coalesced"])

``solve`` accepts a live :class:`~repro.core.workflow.Workflow` /
:class:`~repro.core.secure_view.SecureViewProblem` (serialized on the way
out) or an already-serialized payload mapping.  HTTP-level failures raise
:class:`ServiceClientError` carrying the status code, the error ``type``
from the server's envelope, and the full payload, so callers can
distinguish a malformed request (400) from a timeout (504) from a draining
server (503).

Two transport behaviours matter operationally:

* **keep-alive** — one persistent connection per calling thread, reused
  across requests (a stale socket the server closed between requests is
  retried once on a fresh one), instead of a TCP handshake per call;
* **base-path negotiation** — the client speaks the versioned ``/v1`` API
  and probes once per client: a server answering 404 on ``/v1/healthz``
  is pre-v1, and the client falls back to the deprecated unprefixed
  routes so old servers keep working during a fleet upgrade.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse
from typing import Any, Callable, Mapping

__all__ = ["ServiceClient", "ServiceClientError"]

#: Job states after which polling can stop (mirrors ``JOB_STATES``).
_TERMINAL_JOB_STATES = ("done", "failed", "cancelled")

#: The API prefix this client speaks natively.
_API_PREFIX = "/v1"

#: Connection failures that mean "the server closed our parked keep-alive
#: socket": safe to retry exactly once on a fresh connection, because no
#: response byte arrived so the server cannot have acted on the request.
_STALE_CONNECTION_ERRORS = (
    http.client.RemoteDisconnected,
    http.client.CannotSendRequest,
    BrokenPipeError,
    ConnectionResetError,
)


class ServiceClientError(Exception):
    """An HTTP error response from the service (status + server payload)."""

    def __init__(
        self,
        status: int,
        message: str,
        payload: Mapping[str, Any] | None = None,
        error_type: str | None = None,
    ):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = dict(payload or {})
        #: The server-side exception class from the v1 error envelope
        #: (``None`` for transport failures and legacy flat bodies).
        self.error_type = error_type


def _error_details(payload: Any, fallback: str) -> tuple[str, str | None]:
    """``(message, type)`` from an error body, envelope or legacy flat."""
    error = payload.get("error") if isinstance(payload, Mapping) else None
    if isinstance(error, Mapping):  # v1 envelope
        return str(error.get("message", fallback)), error.get("type")
    if error is not None:  # pre-v1 flat body: {"error": "...", "status": N}
        return str(error), None
    return fallback, None


def _instance_payload(instance: Any) -> Mapping[str, Any]:
    """Serialize a live workflow/problem; pass mappings through untouched."""
    if isinstance(instance, Mapping):
        return instance
    from ..core.secure_view import SecureViewProblem
    from ..core.workflow import Workflow
    from ..workloads.serialization import problem_to_dict, workflow_to_dict

    if isinstance(instance, Workflow):
        return workflow_to_dict(instance)
    if isinstance(instance, SecureViewProblem):
        return problem_to_dict(instance)
    raise TypeError(f"cannot serialize {type(instance).__name__} for the service")


class ServiceClient:
    """HTTP client for one service endpoint (``http://host:port``)."""

    def __init__(self, url: str, timeout: float = 300.0) -> None:
        self.url = url.rstrip("/")
        parsed = urllib.parse.urlsplit(self.url)
        if parsed.hostname is None:
            raise ValueError(f"cannot parse service url {url!r}")
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self.timeout = timeout
        # One keep-alive connection per calling thread (http.client
        # connections are not thread-safe to share).
        self._local = threading.local()
        #: Negotiated base path: ``"/v1"`` against a current server, ``""``
        #: against a pre-v1 one.  ``None`` until the first request probes.
        self._base_path: str | None = None

    # -- transport --------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            )
            self._local.conn = conn
        return conn

    def close(self) -> None:
        """Close this thread's keep-alive connection (idempotent)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            self._local.conn = None
            conn.close()

    def _roundtrip(self, method: str, path: str, payload: Any) -> dict[str, Any]:
        """One JSON exchange on the thread's keep-alive connection.

        A server is free to close a parked keep-alive socket at any time
        (draining, idle timeout); when the failure proves no response byte
        arrived, the request is replayed once on a fresh connection.
        """
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload, default=str).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            for attempt in (0, 1):
                conn = self._connection()
                fresh = conn.sock is None
                try:
                    conn.request(method, path, body=body, headers=headers)
                    response = conn.getresponse()
                    data = response.read()
                except _STALE_CONNECTION_ERRORS:
                    self.close()
                    if fresh or attempt:
                        raise
                    continue  # stale reused socket: replay once
                if response.will_close:
                    self.close()
                break
        except (TimeoutError, OSError, http.client.HTTPException) as exc:
            # Socket-level failures (refused, reset, read timeout) fold
            # into the same controlled error so callers never see a raw
            # socket traceback.
            self.close()
            raise ServiceClientError(
                0,
                f"request to {self.url} failed: {str(exc) or type(exc).__name__}",
            ) from exc
        try:
            parsed = json.loads(data.decode("utf-8")) if data else {}
        except ValueError:
            parsed = {}
        if response.status >= 400:
            message, error_type = _error_details(parsed, response.reason)
            raise ServiceClientError(
                response.status, message, parsed, error_type=error_type
            )
        return parsed

    def _negotiated_base(self) -> str:
        """Probe the server's API surface once; ``"/v1"`` or ``""``.

        ``/v1/version`` is the probe: it answers even mid-drain, and it
        does not perturb the server's request counters the way a healthz
        or metrics probe would.
        """
        if self._base_path is None:
            try:
                self._roundtrip("GET", f"{_API_PREFIX}/version", None)
            except ServiceClientError as exc:
                if exc.status == 404:
                    self._base_path = ""  # pre-v1 server: legacy routes
                elif exc.status == 0:
                    raise  # unreachable: report, renegotiate next call
                else:
                    # Any real HTTP answer (503 draining included) proves
                    # the /v1 surface exists.
                    self._base_path = _API_PREFIX
            else:
                self._base_path = _API_PREFIX
        return self._base_path

    def request(self, method: str, path: str, payload: Any = None) -> dict[str, Any]:
        """One JSON round trip; raises :class:`ServiceClientError` on 4xx/5xx.

        ``path`` is the un-versioned route (``"/solve"``); the negotiated
        base path (``/v1`` unless the server predates it) is prepended.
        """
        return self._roundtrip(method, f"{self._negotiated_base()}{path}", payload)

    # -- endpoints --------------------------------------------------------------
    def submit(self, body: Mapping[str, Any]) -> dict[str, Any]:
        """POST a raw, already-assembled ``/solve`` body.

        Deprecated for everyday use: prefer :meth:`solve`, which builds
        the body from typed arguments (``repro submit`` goes through it).
        """
        return self.request("POST", "/solve", body)

    def solve(
        self,
        workflow: Any = None,
        problem: Any = None,
        *,
        gamma: int | None = None,
        kind: str | None = None,
        solver: str = "auto",
        seed: int | None = None,
        verify: bool = False,
        backend: str | None = None,
        costs: Mapping[str, float] | None = None,
        timeout: float | None = None,
        label: str | None = None,
    ) -> dict[str, Any]:
        """Solve one instance on the server; the solve record."""
        if (workflow is None) == (problem is None):
            raise ValueError("pass exactly one of workflow= or problem=")
        body: dict[str, Any] = {"solver": solver, "seed": seed, "verify": verify}
        if workflow is not None:
            body["workflow"] = _instance_payload(workflow)
            body["gamma"] = gamma
            body["kind"] = kind if kind is not None else "set"
        else:
            body["problem"] = _instance_payload(problem)
        if backend is not None:
            body["backend"] = backend
        if costs is not None:
            body["costs"] = dict(costs)
        if timeout is not None:
            body["timeout"] = timeout
        if label is not None:
            body["label"] = label
        return self.submit(body)

    def sweep(
        self,
        *,
        workflows: tuple | list = (),
        problems: tuple | list = (),
        gammas: tuple | list = (2,),
        kinds: tuple | list = ("set",),
        solvers: tuple | list = ("auto",),
        seeds: tuple | list = (0,),
        verify: bool = False,
        backend: str | None = None,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Run an inline grid on the server; the sweep report."""
        body = self._grid_body(
            workflows, problems, gammas, kinds, solvers, seeds, verify,
            backend, timeout,
        )
        return self.request("POST", "/sweep", body)

    def _grid_body(
        self,
        workflows: tuple | list,
        problems: tuple | list,
        gammas: tuple | list,
        kinds: tuple | list,
        solvers: tuple | list,
        seeds: tuple | list,
        verify: bool,
        backend: str | None,
        timeout: float | None,
    ) -> dict[str, Any]:
        body: dict[str, Any] = {
            "workflows": [_instance_payload(w) for w in workflows],
            "problems": [_instance_payload(p) for p in problems],
            "gammas": list(gammas),
            "kinds": list(kinds),
            "solvers": list(solvers),
            "seeds": list(seeds),
            "verify": verify,
        }
        if backend is not None:
            body["backend"] = backend
        if timeout is not None:
            body["timeout"] = timeout
        return body

    # -- async jobs --------------------------------------------------------------
    def submit_sweep_job(self, body: Mapping[str, Any]) -> dict[str, Any]:
        """POST a raw, already-assembled grid to ``/jobs/sweep``; the handle.

        Deprecated for everyday use: prefer :meth:`sweep_async`.
        """
        return self.request("POST", "/jobs/sweep", body)

    def sweep_async(
        self,
        *,
        workflows: tuple | list = (),
        problems: tuple | list = (),
        gammas: tuple | list = (2,),
        kinds: tuple | list = ("set",),
        solvers: tuple | list = ("auto",),
        seeds: tuple | list = (0,),
        verify: bool = False,
        backend: str | None = None,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Submit an inline grid as an async job; ``{"job": id, ...}``.

        Returns immediately; poll with :meth:`job` or block with
        :meth:`wait_job`.
        """
        body = self._grid_body(
            workflows, problems, gammas, kinds, solvers, seeds, verify,
            backend, timeout,
        )
        return self.submit_sweep_job(body)

    def job(self, job_id: str) -> dict[str, Any]:
        """``GET /jobs/<id>``: state, progress counters, partial records."""
        return self.request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        """``GET /jobs``: summaries of every tracked job."""
        return self.request("GET", "/jobs")["jobs"]

    def cancel_job(self, job_id: str) -> dict[str, Any]:
        """``DELETE /jobs/<id>``: stop pending cells; the job summary."""
        return self.request("DELETE", f"/jobs/{job_id}")

    def wait_job(
        self,
        job_id: str,
        timeout: float | None = None,
        poll: float = 0.2,
        on_progress: "Callable[[dict[str, Any]], None] | None" = None,
    ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; its final status.

        ``on_progress`` (if given) sees every polled snapshot — partial
        records included — which is how ``repro submit --watch`` renders a
        live progress line.  Raises :class:`ServiceClientError` (status 0)
        if ``timeout`` elapses first; the job keeps running server-side.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if on_progress is not None:
                on_progress(status)
            if status.get("state") in _TERMINAL_JOB_STATES:
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceClientError(
                    0,
                    f"job {job_id} still {status.get('state')!r} "
                    f"after {timeout}s (it keeps running server-side)",
                    status,
                )
            time.sleep(poll)

    def healthz(self) -> dict[str, Any]:
        """``GET /healthz``: liveness, drain flag, exec-tier health."""
        return self.request("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        """``GET /metrics``: counters, cache deltas, replica identity."""
        return self.request("GET", "/metrics")

    def version(self) -> dict[str, Any]:
        """``GET /v1/version``: package + API version, store formats."""
        return self.request("GET", "/version")

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to drain and exit (202 acknowledged)."""
        return self.request("POST", "/shutdown", {})
