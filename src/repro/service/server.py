"""Threaded HTTP/JSON front for a :class:`~repro.service.service.SolveService`.

Stdlib only: a :class:`http.server.ThreadingHTTPServer` whose handler
threads parse JSON bodies, call the service, and serialize the answer.
Handler threads never compute — computation happens in the service's worker
pool — so slow solves occupy pool slots, not the accept loop.

Routes
------
``GET /healthz``
    Liveness: ``{"status": "ok" | "draining" | "unhealthy", "draining":
    bool, "healthy": bool, ...}``.  Answers **503** once a drain has
    started, and likewise when the process execution tier's worker pool is
    dead and unrecoverable (body still included either way), so load
    balancers can stop routing before SIGTERM completes — or route away
    from a degraded replica.
``GET /metrics``
    Request counts, in-flight gauge, coalescing counters, job and
    maintenance counters, and the shared cache's hit/miss delta since
    start (see ``SolveService.metrics``).
``POST /solve``
    One solve request (see :mod:`repro.service.jobs` for the body schema).
``POST /sweep``
    An inline grid fanned through the solve pipeline (blocks until done).
``POST /jobs/sweep``
    The same grid, asynchronously: answers 202 with a job id immediately
    (see :mod:`repro.service.background`).
``GET /jobs`` / ``GET /jobs/<id>``
    Job summaries / one job's state, progress counters and partial
    records.
``DELETE /jobs/<id>``
    Cancel: in-flight cells finish, pending cells are dropped.
``POST /shutdown``
    Ack with 202 and gracefully stop the server (drain, then exit the
    serve loop).  The CLI additionally wires SIGTERM/SIGINT to the same
    path, so ``kill -TERM`` on ``repro serve`` drains and exits 0.

Error mapping: malformed JSON or payloads → 400, unknown routes and job
ids → 404, request deadline passed → 504, draining → 503, a full job
table → 429, solver/domain failures → 422, anything unexpected → 500;
every error body is ``{"error": "...", "status": N}``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..exceptions import ProvenanceError
from .jobs import ServiceError
from .service import SolveService

__all__ = ["ServiceServer"]

#: Refuse request bodies larger than this (a serialized workflow payload is
#: typically a few hundred KB at the arities this library targets).
MAX_BODY_BYTES = 64 * 1024 * 1024


def _scrub_nonfinite(value: Any) -> Any:
    """Replace inf/nan floats with ``None`` anywhere in a JSON-able tree."""
    import math

    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _scrub_nonfinite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_scrub_nonfinite(item) for item in value]
    return value


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    #: Set by :class:`ServiceServer` on the handler subclass it builds.
    service: SolveService
    quiet: bool = True

    # -- plumbing ---------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)

    def _respond(self, status: int, payload: Any) -> None:
        try:
            text = json.dumps(payload, sort_keys=True, default=str, allow_nan=False)
        except ValueError:
            # Strict JSON on the wire: non-RFC-8259 floats (inf/nan) would
            # break every non-Python client, so scrub them to null rather
            # than emit the Python-only Infinity/NaN tokens.
            text = json.dumps(
                _scrub_nonfinite(payload), sort_keys=True, default=str, allow_nan=False
            )
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        # One request per connection keeps draining simple: no handler
        # thread ever idles on a keep-alive socket across the shutdown.
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass

    def _fail(self, exc: BaseException) -> None:
        if isinstance(exc, ServiceError):
            self._respond(exc.status, exc.as_dict())
        elif isinstance(exc, ProvenanceError):
            # Well-formed request, unsolvable instance (unknown solver,
            # infeasible requirements, work limits): the client's fault
            # semantically, but not a malformed message.
            self._respond(422, {"error": str(exc), "status": 422})
        else:
            self._respond(500, {"error": str(exc), "status": 500})

    def _read_body(self) -> Any:
        length = self.headers.get("Content-Length")
        try:
            length = int(length)
        except (TypeError, ValueError):
            raise ServiceError("Content-Length required", status=411)
        if length < 0 or length > MAX_BODY_BYTES:
            raise ServiceError("request body too large", status=413)
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc

    # -- routes -----------------------------------------------------------------
    def _job_id(self) -> str | None:
        """The ``<id>`` of a ``/jobs/<id>`` path (``None`` when malformed)."""
        job_id = self.path[len("/jobs/"):]
        return job_id if job_id and "/" not in job_id else None

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        try:
            if self.path == "/healthz":
                payload = self.service.healthz()
                # 503 while draining or with a dead execution tier: body
                # still answers, but balancers and pollers see "stop
                # routing here" at the status level.
                unavailable = payload["draining"] or not payload.get(
                    "healthy", True
                )
                self._respond(503 if unavailable else 200, payload)
            elif self.path == "/metrics":
                self._respond(200, self.service.metrics())
            elif self.path == "/jobs":
                self._respond(200, {"jobs": self.service.jobs.list_jobs()})
            elif self.path.startswith("/jobs/") and self._job_id():
                self._respond(200, self.service.jobs.status(self._job_id()))
            else:
                self._respond(
                    404, {"error": f"no such path {self.path!r}", "status": 404}
                )
        except Exception as exc:  # noqa: BLE001 - a handler must always answer
            self._fail(exc)

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        try:
            if self.path == "/solve":
                self._respond(200, self.service.solve_payload(self._read_body()))
            elif self.path == "/sweep":
                self._respond(200, self.service.sweep_payload(self._read_body()))
            elif self.path == "/jobs/sweep":
                # 202: accepted, not done — the body is the job handle.
                self._respond(202, self.service.jobs.submit(self._read_body()))
            elif self.path == "/shutdown":
                self._respond(202, {"status": "shutting down"})
                self.server.owner.stop_async()  # type: ignore[attr-defined]
            else:
                self._respond(
                    404, {"error": f"no such path {self.path!r}", "status": 404}
                )
        except Exception as exc:  # noqa: BLE001 - a handler must always answer
            self._fail(exc)

    def do_DELETE(self) -> None:  # noqa: N802 - http.server naming
        try:
            if self.path.startswith("/jobs/") and self._job_id():
                self._respond(200, self.service.jobs.cancel(self._job_id()))
            else:
                self._respond(
                    404, {"error": f"no such path {self.path!r}", "status": 404}
                )
        except Exception as exc:  # noqa: BLE001 - a handler must always answer
            self._fail(exc)


class ServiceServer:
    """Bind a :class:`SolveService` to a host/port and run the serve loop.

    The constructor binds the socket (so callers can read the ephemeral
    ``port`` before serving); :meth:`serve_forever` blocks until
    :meth:`stop` is called from another thread (or :meth:`start` runs the
    loop on a daemon thread for in-process use — tests, benchmarks, the
    demo).
    """

    def __init__(
        self,
        service: SolveService,
        host: str = "127.0.0.1",
        port: int = 8080,
        quiet: bool = True,
    ) -> None:
        self.service = service
        # A socket timeout bounds idle connections so joining handler
        # threads on close can never hang on a client that connected but
        # sent nothing.
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {"service": service, "quiet": quiet, "timeout": 30},
        )
        self.httpd = ThreadingHTTPServer((host, port), handler)
        # Non-daemon handler threads: server_close() joins them, so a
        # graceful stop only returns after every drained request's
        # response has actually been written — drain must never drop the
        # very response it waited for.
        self.httpd.daemon_threads = False
        self.httpd.owner = self  # type: ignore[attr-defined]
        self._stopped = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- serving ----------------------------------------------------------------
    def serve_forever(self) -> None:
        """Run the accept loop on the calling thread until :meth:`stop`."""
        try:
            self.httpd.serve_forever(poll_interval=0.1)
        finally:
            self.httpd.server_close()

    def start(self) -> "ServiceServer":
        """Run the serve loop on a daemon thread (in-process embedding)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    # -- shutdown ---------------------------------------------------------------
    def stop(self, drain_timeout: float | None = None) -> bool:
        """Drain the service, stop the accept loop, close the socket.

        Safe to call from any thread (including a signal handler's helper
        thread) and idempotent.  Returns whether the drain completed within
        ``drain_timeout``.
        """
        if self._stopped.is_set():
            return True
        self._stopped.set()
        drained = self.service.drain(drain_timeout)
        self.httpd.shutdown()
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=5.0)
        return drained

    def stop_async(self) -> None:
        """Trigger :meth:`stop` without blocking the calling (handler) thread."""
        threading.Thread(target=self.stop, name="repro-serve-stop", daemon=True).start()
