"""Threaded HTTP/JSON front for a :class:`~repro.service.service.SolveService`.

Stdlib only: a :class:`http.server.ThreadingHTTPServer` whose handler
threads parse JSON bodies, call the service, and serialize the answer.
Handler threads never compute — computation happens in the service's worker
pool — so slow solves occupy pool slots, not the accept loop.

Routes (v1 API)
---------------
Every endpoint is mounted under ``/v1/``; the unprefixed spellings from
before the API was versioned still answer identically, but carry a
``Deprecation: true`` header (plus a ``Link`` to the ``/v1`` successor) so
clients and fleets can migrate on their own schedule.

``GET /v1/healthz``
    Liveness: ``{"status": "ok" | "draining" | "unhealthy", "draining":
    bool, "healthy": bool, "replica": ..., ...}``.  Answers **503** once a
    drain has started, and likewise when the process execution tier's
    worker pool is dead and unrecoverable (body still included either
    way), so load balancers — including ``repro fleet`` — can stop routing
    before SIGTERM completes, or route away from a degraded replica.
``GET /v1/metrics``
    Request counts, in-flight gauge, coalescing counters, job and
    maintenance counters, replica identity, and the shared cache's
    hit/miss delta since start (see ``SolveService.metrics``).
``GET /v1/version``
    Package version, API version, replica identity and the attached
    store's on-disk format versions — what a rolling upgrade checks
    before readmitting a replica.
``POST /v1/solve``
    One solve request (see :mod:`repro.service.jobs` for the body schema).
``POST /v1/sweep``
    An inline grid fanned through the solve pipeline (blocks until done).
``POST /v1/jobs/sweep``
    The same grid, asynchronously: answers 202 with a job id immediately
    (see :mod:`repro.service.background`).
``GET /v1/jobs`` / ``GET /v1/jobs/<id>``
    Job summaries / one job's state, progress counters and partial
    records.
``DELETE /v1/jobs/<id>``
    Cancel: in-flight cells finish, pending cells are dropped.
``POST /v1/shutdown``
    Ack with 202 and gracefully stop the server (drain, then exit the
    serve loop).  The CLI additionally wires SIGTERM/SIGINT to the same
    path, so ``kill -TERM`` on ``repro serve`` drains and exits 0.

Error mapping: malformed JSON or payloads → 400, unknown routes and job
ids → 404, request deadline passed → 504, draining → 503, a full job
table → 429, solver/domain failures → 422, anything unexpected → 500;
every error body is the one envelope
``{"error": {"type": ..., "message": ..., "status": ...}}``.

Connections are keep-alive (HTTP/1.1 persistent): a client — or the fleet
front — reuses one socket across requests instead of paying a TCP
handshake each time.  Draining stays safe: once a stop begins, every
response carries ``Connection: close``, and sockets that are *idle*
between requests are shut down after the drain completes, so
``server_close()`` never waits on a parked keep-alive socket while no
in-flight response is ever cut off.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..exceptions import ProvenanceError
from .jobs import ServiceError, error_envelope
from .service import SolveService

__all__ = ["ServiceServer", "normalize_path"]

#: Refuse request bodies larger than this (a serialized workflow payload is
#: typically a few hundred KB at the arities this library targets).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: The one API version this server speaks (the ``/v1`` route prefix).
API_PREFIX = "/v1"


def normalize_path(path: str) -> tuple[str, bool]:
    """Map a request path onto the canonical route and a legacy flag.

    ``/v1/solve`` → ``("/solve", False)``; the deprecated unprefixed
    ``/solve`` → ``("/solve", True)``.  The fleet front shares this helper
    so both layers agree on what counts as a legacy spelling.
    """
    if path == API_PREFIX or path.startswith(API_PREFIX + "/"):
        return path[len(API_PREFIX):] or "/", False
    return path, True


def _scrub_nonfinite(value: Any) -> Any:
    """Replace inf/nan floats with ``None`` anywhere in a JSON-able tree."""
    import math

    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _scrub_nonfinite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_scrub_nonfinite(item) for item in value]
    return value


def encode_json(payload: Any) -> bytes:
    """Strict RFC-8259 JSON bytes (inf/nan scrubbed to null)."""
    try:
        text = json.dumps(payload, sort_keys=True, default=str, allow_nan=False)
    except ValueError:
        # Non-RFC-8259 floats (inf/nan) would break every non-Python
        # client, so scrub them to null rather than emit the Python-only
        # Infinity/NaN tokens.
        text = json.dumps(
            _scrub_nonfinite(payload), sort_keys=True, default=str, allow_nan=False
        )
    return text.encode("utf-8")


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    #: Set by :class:`ServiceServer` on the handler subclass it builds.
    service: SolveService
    quiet: bool = True

    # -- plumbing ---------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)

    def setup(self) -> None:
        super().setup()
        self.server.owner._track(self.connection)  # type: ignore[attr-defined]

    def finish(self) -> None:
        try:
            super().finish()
        finally:
            self.server.owner._untrack(self.connection)  # type: ignore[attr-defined]

    def _respond(self, status: int, payload: Any) -> None:
        body = encode_json(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if getattr(self, "_legacy_path", None):
            # The unversioned spelling still answers byte-identically, but
            # tells clients where the supported route lives.
            self.send_header("Deprecation", "true")
            self.send_header(
                "Link", f"<{API_PREFIX}{self._legacy_path}>; rel=\"successor-version\""
            )
        if self.server.owner.closing:  # type: ignore[attr-defined]
            # Draining: finish this exchange, then let the socket go so
            # server_close() never waits on a parked keep-alive connection.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass

    def _fail(self, exc: BaseException) -> None:
        if isinstance(exc, ServiceError):
            if exc.status in (411, 413):
                # The body was never consumed and its framing is unknown —
                # leftover bytes would be parsed as the next request line.
                self.close_connection = True
            self._respond(exc.status, exc.as_dict())
        elif isinstance(exc, ProvenanceError):
            # Well-formed request, unsolvable instance (unknown solver,
            # infeasible requirements, work limits): the client's fault
            # semantically, but not a malformed message.
            self._respond(422, error_envelope(type(exc).__name__, str(exc), 422))
        else:
            self._respond(500, error_envelope(type(exc).__name__, str(exc), 500))

    def _not_found(self) -> None:
        self._respond(
            404,
            error_envelope("ServiceError", f"no such path {self.path!r}", 404),
        )

    def _drain_body(self) -> None:
        """Discard a request body this route ignores.

        Keep-alive framing depends on it: unread body bytes would be parsed
        as the next request line on this connection.
        """
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except (TypeError, ValueError):
            length = 0
        if 0 < length <= MAX_BODY_BYTES:
            self.rfile.read(length)
        elif length > MAX_BODY_BYTES:
            self.close_connection = True

    def _read_body(self) -> Any:
        length = self.headers.get("Content-Length")
        try:
            length = int(length)
        except (TypeError, ValueError):
            raise ServiceError("Content-Length required", status=411)
        if length < 0 or length > MAX_BODY_BYTES:
            raise ServiceError("request body too large", status=413)
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc

    # -- routes -----------------------------------------------------------------
    def _route(self) -> str:
        """Canonical (un-versioned) route; flags legacy spellings."""
        route, legacy = normalize_path(self.path)
        self._legacy_path = route if legacy else None
        return route

    def _job_id(self, route: str) -> str | None:
        """The ``<id>`` of a ``/jobs/<id>`` route (``None`` when malformed)."""
        job_id = route[len("/jobs/"):]
        return job_id if job_id and "/" not in job_id else None

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        route = self._route()
        busy = self.server.owner._mark_busy(self.connection)  # type: ignore[attr-defined]
        try:
            if route == "/healthz":
                payload = self.service.healthz()
                # 503 while draining or with a dead execution tier: body
                # still answers, but balancers and pollers see "stop
                # routing here" at the status level.
                unavailable = payload["draining"] or not payload.get(
                    "healthy", True
                )
                self._respond(503 if unavailable else 200, payload)
            elif route == "/metrics":
                self._respond(200, self.service.metrics())
            elif route == "/version":
                self._respond(200, self.service.version())
            elif route == "/jobs":
                self._respond(200, {"jobs": self.service.jobs.list_jobs()})
            elif route.startswith("/jobs/") and self._job_id(route):
                self._respond(200, self.service.jobs.status(self._job_id(route)))
            else:
                self._not_found()
        except Exception as exc:  # noqa: BLE001 - a handler must always answer
            self._fail(exc)
        finally:
            if busy:
                self.server.owner._mark_idle(self.connection)  # type: ignore[attr-defined]

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        route = self._route()
        busy = self.server.owner._mark_busy(self.connection)  # type: ignore[attr-defined]
        try:
            if route == "/solve":
                self._respond(200, self.service.solve_payload(self._read_body()))
            elif route == "/sweep":
                self._respond(200, self.service.sweep_payload(self._read_body()))
            elif route == "/jobs/sweep":
                # 202: accepted, not done — the body is the job handle.
                self._respond(202, self.service.jobs.submit(self._read_body()))
            elif route == "/shutdown":
                self._drain_body()  # the (ignored) body must leave the socket
                self._respond(202, {"status": "shutting down"})
                self.server.owner.stop_async()  # type: ignore[attr-defined]
            else:
                self._drain_body()
                self._not_found()
        except Exception as exc:  # noqa: BLE001 - a handler must always answer
            self._fail(exc)
        finally:
            if busy:
                self.server.owner._mark_idle(self.connection)  # type: ignore[attr-defined]

    def do_DELETE(self) -> None:  # noqa: N802 - http.server naming
        route = self._route()
        busy = self.server.owner._mark_busy(self.connection)  # type: ignore[attr-defined]
        try:
            if route.startswith("/jobs/") and self._job_id(route):
                self._respond(200, self.service.jobs.cancel(self._job_id(route)))
            else:
                self._not_found()
        except Exception as exc:  # noqa: BLE001 - a handler must always answer
            self._fail(exc)
        finally:
            if busy:
                self.server.owner._mark_idle(self.connection)  # type: ignore[attr-defined]


class ServiceServer:
    """Bind a :class:`SolveService` to a host/port and run the serve loop.

    The constructor binds the socket (so callers can read the ephemeral
    ``port`` before serving); :meth:`serve_forever` blocks until
    :meth:`stop` is called from another thread (or :meth:`start` runs the
    loop on a daemon thread for in-process use — tests, benchmarks, the
    demo).
    """

    def __init__(
        self,
        service: SolveService,
        host: str = "127.0.0.1",
        port: int = 8080,
        quiet: bool = True,
    ) -> None:
        self.service = service
        # A socket timeout bounds idle connections so joining handler
        # threads on close can never hang on a client that connected but
        # sent nothing.
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {"service": service, "quiet": quiet, "timeout": 30},
        )
        self.httpd = ThreadingHTTPServer((host, port), handler)
        # Non-daemon handler threads: server_close() joins them, so a
        # graceful stop only returns after every drained request's
        # response has actually been written — drain must never drop the
        # very response it waited for.
        self.httpd.daemon_threads = False
        self.httpd.owner = self  # type: ignore[attr-defined]
        self._stopped = threading.Event()
        self._closing = threading.Event()
        # Keep-alive sockets and whether each is mid-request.  Guarded by
        # one lock so "mark busy" and "close every idle socket" are atomic
        # with respect to each other: a request that marked busy is never
        # closed under it, a parked socket is closed immediately.
        self._conn_lock = threading.Lock()
        self._connections: dict[socket.socket, bool] = {}
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def closing(self) -> bool:
        return self._closing.is_set()

    # -- connection tracking (keep-alive vs drain) -------------------------------
    def _track(self, conn: socket.socket) -> None:
        with self._conn_lock:
            self._connections[conn] = False

    def _untrack(self, conn: socket.socket) -> None:
        with self._conn_lock:
            self._connections.pop(conn, None)

    def _mark_busy(self, conn: socket.socket) -> bool:
        with self._conn_lock:
            if conn in self._connections:
                self._connections[conn] = True
                return True
        return False

    def _mark_idle(self, conn: socket.socket) -> None:
        with self._conn_lock:
            if conn in self._connections:
                self._connections[conn] = False
                # A handler that goes idle after the close-idle sweep already
                # ran (it was busy writing its response) would otherwise park
                # on the next keep-alive read and stall server_close().
                if self.closing:
                    try:
                        conn.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass

    def _close_idle_connections(self) -> int:
        """Shut down sockets parked between keep-alive requests; count them.

        Runs after the drain, so anything still marked busy is writing its
        (already computed) response and is left alone — it closes itself
        via the ``Connection: close`` every response carries by then.
        """
        closed = 0
        with self._conn_lock:
            for conn, busy in list(self._connections.items()):
                if busy:
                    continue
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass  # already dying; its handler will untrack it
                closed += 1
        return closed

    # -- serving ----------------------------------------------------------------
    def serve_forever(self) -> None:
        """Run the accept loop on the calling thread until :meth:`stop`."""
        try:
            self.httpd.serve_forever(poll_interval=0.1)
        finally:
            self.httpd.server_close()

    def start(self) -> "ServiceServer":
        """Run the serve loop on a daemon thread (in-process embedding)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    # -- shutdown ---------------------------------------------------------------
    def stop(self, drain_timeout: float | None = None) -> bool:
        """Drain the service, stop the accept loop, close the socket.

        Safe to call from any thread (including a signal handler's helper
        thread) and idempotent.  Returns whether the drain completed within
        ``drain_timeout``.
        """
        if self._stopped.is_set():
            return True
        self._stopped.set()
        # From here on every response says ``Connection: close``; the
        # drain below waits for in-flight work, then parked keep-alive
        # sockets are shut down so server_close() joins promptly.
        self._closing.set()
        drained = self.service.drain(drain_timeout)
        self._close_idle_connections()
        self.httpd.shutdown()
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=5.0)
        return drained

    def stop_async(self) -> None:
        """Trigger :meth:`stop` without blocking the calling (handler) thread."""
        threading.Thread(target=self.stop, name="repro-serve-stop", daemon=True).start()
