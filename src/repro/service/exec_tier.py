"""Multi-core execution tier: leader computations on a persistent process pool.

The solve service keeps its *front* — request parsing, coalescing, the
in-memory result cache, metrics — in the parent process, where shared
mutable state is cheap.  The *computation* is CPU-bound Python, so a
``ThreadPoolExecutor`` serializes K distinct concurrent solves behind the
GIL: a warm server beats a cold CLI by orders of magnitude, yet cannot use
a second core.  This module is the missing back half: a persistent pool of
**long-lived worker processes** the service dispatches leader computations
onto (``repro serve --exec processes --exec-workers N``).

Design
------
* **Workers are resident, not per-task.**  Each worker bootstraps a
  :func:`repro.engine.executor.worker_context` — the same per-process
  attachment the sweep executor proved out: its own
  :class:`~repro.engine.store.DerivationStore` handle over the shared
  directory, a hot module-granular
  :class:`~repro.engine.cache.DerivationCache` in front, and
  identity-preserving instance/planner memos.  At spawn a worker pre-warms
  the store's most popular workflow packs, so its first request pays a
  solve, not a recompilation.
* **Requests cross the boundary as JSON-shaped bodies.**  Parsed jobs hold
  rebuilt workflows whose callables do not pickle; the tier re-encodes each
  job via :meth:`~repro.service.jobs.SolveJob.to_wire` and the worker
  re-parses it with the same :func:`~repro.service.jobs.parse_solve_payload`
  codec the HTTP front uses.  Results come back as the picklable record
  dict (cost, hidden attributes, guarantee, certificate verdict, seconds)
  plus a :class:`~repro.engine.cache.CacheStats` delta the parent merges
  into ``/metrics`` — "did the tier save work" stays a counter read.
* **One collector thread multiplexes every worker.**  Each worker gets a
  duplex pipe; the collector blocks in
  :func:`multiprocessing.connection.wait` on all pipes *and all process
  sentinels*, so both results and worker deaths wake it.  A worker killed
  mid-solve (OOM, ``kill -9``) fails **only** the task attached to it —
  the parent resolves that leader's coalescer entry with a 500-mapped
  :class:`~repro.service.jobs.WorkerError` — and is respawned
  (``exec.worker_restarts`` counts it).  Followers are never wedged.
* **One task per worker at a time.**  Dispatch assigns a queued task to an
  idle ready worker; the coalescer already collapsed identical requests,
  so tasks are distinct solves and fairness is trivial FIFO.  A worker that
  is computing is never sent anything (its pipe is not being read), which
  keeps sends non-blocking by construction.

The service keeps the thread pool in *both* modes: in process mode a pool
thread submits to the tier and blocks until the worker answers, so drain
ordering, in-flight accounting and coalescer publication are identical
across modes — the tier only changes where the CPU burns.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import sys
import threading
from collections import deque
from multiprocessing import connection
from typing import TYPE_CHECKING, Any, Mapping

from ..engine.store import ResultKey
from ..exceptions import ProvenanceError
from .jobs import InstanceCache, ServiceError, WorkerError, parse_solve_payload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .jobs import SolveJob

__all__ = ["ProcessExecTier", "TierUnavailable"]

#: A request label that makes a worker die mid-solve (``os._exit``).  The
#: crash-recovery tests (and nothing else) submit it: labels ride along the
#: wire but are excluded from the coalescing key, so a poisoned request
#: still coalesces — exactly the "leader's future is lost" scenario the
#: robustness fix must survive deterministically, without timing games.
CRASH_LABEL = "__exec-tier-crash__"


class TierUnavailable(ServiceError):
    """The tier cannot accept work (shut down, or every worker is dead).

    Raised at *submission* time only; the service maps it onto the inline
    fallback (compute on the parent's pool thread) rather than failing the
    request.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message, status=503)


def _mp_context(start_method: str | None = None) -> Any:
    """A multiprocessing context safe to use from a threaded parent.

    ``fork`` from a process already running pool/collector threads is
    undefined behaviour waiting to happen, so the tier prefers
    ``forkserver`` (cheap spawns after a one-time server start; the repro
    package is preloaded so workers do not re-import it) and falls back to
    ``spawn``.  ``REPRO_EXEC_START_METHOD`` overrides for debugging.
    """
    method = start_method or os.environ.get("REPRO_EXEC_START_METHOD")
    if method:
        return multiprocessing.get_context(method)
    try:
        context = multiprocessing.get_context("forkserver")
        context.set_forkserver_preload(["repro.service.exec_tier"])
        return context
    except ValueError:  # pragma: no cover - platform without forkserver
        return multiprocessing.get_context("spawn")


# ---------------------------------------------------------------------------
# Worker side (runs in the child process)
# ---------------------------------------------------------------------------

def _status_of(exc: BaseException) -> int:
    if isinstance(exc, ServiceError):
        return exc.status
    if isinstance(exc, ProvenanceError):
        return 422
    return 500


class _WorkerState:
    """Everything one worker process keeps hot between tasks."""

    def __init__(self, context: Any, reuse_results: bool) -> None:
        self.context = context  # engine.executor.WorkerContext
        self.reuse_results = reuse_results
        self.instances = InstanceCache()
        self._planners: dict[tuple, Any] = {}
        self._warmed: set[str] = set()

    def _planner_for(self, job: "SolveJob") -> Any:
        from ..engine import Planner

        key = (job.source, job.fingerprint, job.gamma, job.kind, job.backend)
        planner = self._planners.get(key)
        if planner is None:
            if job.source == "workflow":
                planner = Planner(
                    job.instance,
                    job.gamma,
                    kind=job.kind,
                    cache=self.context.cache,
                    backend=job.backend,
                )
            else:
                planner = Planner.from_problem(
                    job.instance, cache=self.context.cache, backend=job.backend
                )
            self._planners[key] = planner
        return planner

    def compute(self, wire: Mapping[str, Any]) -> dict[str, Any]:
        """One solve, mirroring ``SolveService._compute`` semantics exactly:

        probe the store's result tier first (a persisted *error* record
        re-raises as a 422, same as a fresh infeasible solve), otherwise
        solve through the hot cache and persist the record (cost overrides
        excluded — the result tier's key has no cost dimension).
        """
        job = parse_solve_payload(wire, self.instances)
        before = self.context.cache.stats()
        planner = self._planner_for(job)
        gamma = planner.gamma if job.gamma is None else job.gamma
        kind = planner.kind if job.kind is None else job.kind
        result_key = ResultKey(
            planner.backend, gamma, kind, job.solver, job.seed, job.verify
        )
        store = self.context.store
        persistable = job.costs is None
        if store is not None and self.reuse_results and persistable:
            stored = store.load_result(job.fingerprint, result_key)
            if stored is not None:
                if "error" in stored:
                    raise ServiceError(str(stored["error"]), status=422)
                record = dict(stored)
                record["workflow"] = job.label
                record["from_store"] = True
                record["fingerprint"] = job.fingerprint
                record["cache"] = self.context.cache.stats().delta(before).as_dict()
                return record
        result = planner.solve(
            solver=job.solver,
            seed=job.seed,
            verify=job.verify,
            costs=dict(job.costs) if job.costs else None,
        )
        delta = result.cache_stats.delta(before)
        record: dict[str, Any] = {
            "workflow": job.label,
            "gamma": gamma,
            "kind": kind,
            "solver": job.solver,
            "resolved_solver": result.solver,
            "method": str(result.solution.meta.get("method", result.solver)),
            "seed": job.seed,
            "cost": result.cost,
            "hidden_attributes": sorted(result.hidden_attributes),
            "privatized_modules": sorted(result.privatized_modules),
            "guarantee": result.guarantee,
            "seconds": result.seconds,
        }
        if result.certificate is not None:
            record["verified"] = result.certificate.ok
        if store is not None and persistable:
            store.save_result(job.fingerprint, result_key, record)
        record["from_store"] = False
        record["fingerprint"] = job.fingerprint
        record["cache"] = delta.as_dict()
        return record

    def warm(self, k: int) -> int:
        """Preload the k most-popular stored packs (idempotent per pack)."""
        store, cache = self.context.store, self.context.cache
        if store is None or k <= 0:
            return 0
        warmed = 0
        for fingerprint, _count, payload in store.popular_workflows(k):
            if fingerprint in self._warmed:
                continue
            try:
                workflow, resolved = self.instances.resolve("workflow", payload)
                if resolved != fingerprint:
                    continue
                cache.compiled_workflow(workflow)
                for gamma, kind, backend in store.stored_requirement_points(
                    fingerprint
                ):
                    cache.requirements(workflow, gamma, kind, backend=backend)
                self._warmed.add(fingerprint)
                warmed += 1
            except Exception:  # noqa: BLE001 - warm-up is best-effort
                continue
        return warmed


def _worker_main(
    conn: Any, store_path: str | None, reuse_results: bool, warmup: int
) -> None:
    """The worker loop: bootstrap, announce readiness, answer until exit.

    Protocol (tuples over the duplex pipe):
    parent → worker: ``("solve", id, wire)`` | ``("warm", k)`` | ``("exit",)``
    worker → parent: ``("ready", info)`` | ``("done", id, record, delta)`` |
    ``("error", id, message, status, error_type, delta)`` | ``("warmed", n)``
    """
    from ..engine.executor import worker_context

    state = _WorkerState(worker_context(store_path), reuse_results)
    try:
        warmed = state.warm(warmup)
        # Format-v2 stores serve pre-warmed packs as memory-mapped sidecars;
        # report how much of this worker's warm set is shared mappings so
        # the parent's /metrics can show the per-worker memory win.
        stats = state.context.cache.stats()
        conn.send(
            (
                "ready",
                {
                    "pid": os.getpid(),
                    "warmed": warmed,
                    "mmap_packs": stats.mmap_packs,
                    "mmap_bytes": stats.mmap_bytes,
                },
            )
        )
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):  # parent went away
                break
            op = message[0]
            if op == "exit":
                break
            if op == "warm":
                conn.send(("warmed", state.warm(int(message[1]))))
                continue
            if op != "solve":  # pragma: no cover - future-proofing
                continue
            task_id, wire = message[1], message[2]
            if isinstance(wire, Mapping) and wire.get("label") == CRASH_LABEL:
                os._exit(70)  # the deterministic mid-solve death (tests)
            before = state.context.cache.stats()
            try:
                record = state.compute(wire)
            except BaseException as exc:  # noqa: BLE001 - forwarded, not fatal
                delta = state.context.cache.stats().delta(before).as_dict()
                conn.send(
                    (
                        "error",
                        task_id,
                        str(exc),
                        _status_of(exc),
                        type(exc).__name__,
                        delta,
                    )
                )
            else:
                conn.send(("done", task_id, record, record.get("cache", {})))
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

class _Task:
    """One dispatched leader computation; resolved via its event."""

    __slots__ = ("id", "wire", "done", "record", "error", "worker")

    def __init__(self, task_id: int, wire: dict[str, Any]) -> None:
        self.id = task_id
        self.wire = wire
        self.done = threading.Event()
        self.record: dict[str, Any] | None = None
        self.error: BaseException | None = None
        self.worker: int | None = None  # index while assigned


class _Worker:
    """Parent-side handle on one worker process."""

    __slots__ = ("index", "process", "conn", "task", "ready", "alive")

    def __init__(self, index: int, process: Any, conn: Any) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.task: _Task | None = None
        self.ready = False  # set when the worker announces its bootstrap
        self.alive = True


class ProcessExecTier:
    """A persistent pool of solve worker processes with crash isolation.

    Parameters
    ----------
    workers:
        Worker processes to keep resident.
    store_path:
        Directory of the shared :class:`~repro.engine.store.DerivationStore`;
        each worker attaches its own handle.  ``None`` gives workers
        cache-only contexts (``--exec processes`` without ``--store``).
    reuse_results:
        Mirror of the service flag: workers probe the store's result tier
        before solving.
    warmup:
        Popular packs each worker pre-warms at spawn (and on
        :meth:`warm_workers`, which maintenance triggers periodically so
        respawned workers and shifting popularity stay covered).
    max_restarts:
        Total worker respawns before the tier declares itself
        unrecoverable (``healthy() == False``; ``/healthz`` turns 503 and
        the service falls back to inline execution).
    start_method:
        Multiprocessing start method override (default: forkserver, then
        spawn — never fork; the parent is threaded).
    """

    def __init__(
        self,
        workers: int = 2,
        store_path: str | None = None,
        reuse_results: bool = True,
        warmup: int = 0,
        max_restarts: int = 16,
        start_method: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        if max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        self.workers = workers
        self.store_path = store_path
        self.reuse_results = reuse_results
        self.warmup = warmup
        self.max_restarts = max_restarts
        self._mp = _mp_context(start_method)
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._queue: "deque[_Task]" = deque()
        self._tasks: dict[int, _Task] = {}
        self._ids = itertools.count(1)
        self._closing = False
        self._paused = False
        self.dispatched = 0
        self.completed = 0
        self.failed = 0
        self.worker_restarts = 0
        self.workers_warmed = 0
        self.workers_mmap_packs = 0
        self.workers_mmap_bytes = 0
        self._worker_cache: dict[str, int] = {}
        self._workers = [self._spawn(index) for index in range(workers)]
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-exec-collector", daemon=True
        )
        self._collector.start()

    # -- spawning ----------------------------------------------------------------
    def _spawn(self, index: int) -> _Worker:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=_worker_main,
            args=(child_conn, self.store_path, self.reuse_results, self.warmup),
            name=f"repro-exec-{index}",
            daemon=True,
        )
        # Non-fork start methods replay the parent's ``__main__`` in the
        # child.  A parent whose main is not a real file (stdin scripts,
        # heredocs) would kill every worker at bootstrap — hide the phantom
        # path for the duration of the start; workers only ever import
        # ``repro``, never the caller's main.
        main = sys.modules.get("__main__")
        main_file = getattr(main, "__file__", None)
        patched = main_file is not None and not os.path.exists(main_file)
        if patched:
            del main.__file__
        try:
            process.start()
        finally:
            if patched:
                main.__file__ = main_file
        child_conn.close()  # parent's copy; EOF must propagate on child death
        return _Worker(index, process, parent_conn)

    # -- the collector (one thread, results + deaths) ----------------------------
    def _collect_loop(self) -> None:
        while True:
            with self._lock:
                live = [worker for worker in self._workers if worker.alive]
                if self._closing and not live:
                    return
                waitables: list[Any] = []
                owners: dict[Any, _Worker] = {}
                for worker in live:
                    waitables.append(worker.conn)
                    owners[worker.conn] = worker
                    waitables.append(worker.process.sentinel)
                    owners[worker.process.sentinel] = worker
            if not waitables:
                # Unrecoverable (nothing alive, not closing): nothing to
                # multiplex; idle until shutdown wakes us.
                with self._changed:
                    if self._closing:
                        return
                    self._changed.wait(0.2)
                continue
            for item in connection.wait(waitables, timeout=0.2):
                worker = owners[item]
                if item is worker.conn:
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        self._on_worker_death(worker)
                        continue
                    self._on_message(worker, message)
                else:
                    self._on_worker_death(worker)

    def _on_message(self, worker: _Worker, message: tuple) -> None:
        op = message[0]
        with self._changed:
            if op == "ready":
                worker.ready = True
                self.workers_warmed += int(message[1].get("warmed", 0))
                self.workers_mmap_packs += int(message[1].get("mmap_packs", 0))
                self.workers_mmap_bytes += int(message[1].get("mmap_bytes", 0))
                self._dispatch_locked()
            elif op == "warmed":
                self.workers_warmed += int(message[1])
            elif op in ("done", "error"):
                task = self._tasks.pop(message[1], None)
                if worker.task is task:
                    worker.task = None
                if op == "done":
                    record, delta = message[2], message[3]
                    if task is not None:
                        task.record = record
                        self.completed += 1
                else:
                    _, text, status, error_type, delta = message[1:]
                    if task is not None:
                        task.error = WorkerError(
                            str(text), status=int(status), error_type=str(error_type)
                        )
                        self.failed += 1
                # Merge the worker's cache delta even when the task was
                # dropped (shutdown race): the counters measure work done.
                for key, value in dict(delta).items():
                    self._worker_cache[key] = (
                        self._worker_cache.get(key, 0) + int(value)
                    )
                if task is not None:
                    task.done.set()
                self._dispatch_locked()
            self._changed.notify_all()

    def _on_worker_death(self, worker: _Worker) -> None:
        # A worker that answered and *then* died may have its final message
        # buffered ahead of the EOF; drain it before declaring the death so
        # a completed task is never failed retroactively.
        try:
            while worker.conn.poll():
                self._on_message(worker, worker.conn.recv())
        except (EOFError, OSError):
            pass
        with self._changed:
            if not worker.alive:
                return
            worker.alive = False
            worker.ready = False
            task, worker.task = worker.task, None
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            worker.process.join(timeout=0)  # reap; the sentinel already fired
            if task is not None:
                self._tasks.pop(task.id, None)
                task.error = WorkerError(
                    f"execution worker {worker.index} "
                    f"(pid {worker.process.pid}) died mid-solve "
                    f"(exit code {worker.process.exitcode}); "
                    "only the requests attached to this computation failed",
                    status=500,
                    error_type="WorkerCrash",
                )
                self.failed += 1
                task.done.set()
            if not self._closing and self.worker_restarts < self.max_restarts:
                try:
                    self._workers[worker.index] = self._spawn(worker.index)
                    self.worker_restarts += 1
                except Exception:  # noqa: BLE001 - spawn can fail under
                    # resource pressure; fall through to the liveness check,
                    # which declares the pool unrecoverable when it empties.
                    pass
            if not any(w.alive for w in self._workers):
                # Dead pool: nothing will ever run what is queued.
                self._fail_queued_locked(
                    "execution tier has no live workers", status=503
                )
            self._changed.notify_all()

    # -- dispatch (callers hold the lock) -----------------------------------------
    def _dispatch_locked(self) -> None:
        if self._paused or self._closing:
            return
        for worker in self._workers:
            if not self._queue:
                return
            if worker.alive and worker.ready and worker.task is None:
                task = self._queue.popleft()
                worker.task = task
                task.worker = worker.index
                self.dispatched += 1
                try:
                    worker.conn.send(("solve", task.id, task.wire))
                except (OSError, ValueError):
                    # The worker is dying; its sentinel will fire and the
                    # death handler fails this (now assigned) task.
                    pass

    def _fail_queued_locked(self, reason: str, status: int) -> None:
        while self._queue:
            task = self._queue.popleft()
            self._tasks.pop(task.id, None)
            task.error = WorkerError(
                reason, status=status, error_type="TierUnavailable"
            )
            self.failed += 1
            task.done.set()

    def _busy_locked(self) -> int:
        return sum(1 for worker in self._workers if worker.task is not None)

    # -- submission ---------------------------------------------------------------
    def submit(self, job: "SolveJob") -> _Task:
        """Queue one leader computation; raises :class:`TierUnavailable`
        when the tier cannot possibly run it (the service then computes
        inline instead of failing the request)."""
        wire = job.to_wire()
        with self._changed:
            if self._closing:
                raise TierUnavailable("execution tier is shut down")
            if not any(worker.alive for worker in self._workers):
                raise TierUnavailable("execution tier has no live workers")
            task = _Task(next(self._ids), wire)
            self._tasks[task.id] = task
            self._queue.append(task)
            self._dispatch_locked()
            self._changed.notify_all()
        return task

    def wait(self, task: _Task, timeout: float | None = None) -> dict[str, Any]:
        """Block until the task resolves; the record, or the forwarded error.

        Like the thread tier, the computation runs to completion regardless
        of caller patience — the service's coalescer wait owns deadlines.
        """
        if not task.done.wait(timeout):
            raise ServiceError(
                f"execution tier task did not complete within {timeout}s",
                status=504,
            )
        if task.error is not None:
            raise task.error
        assert task.record is not None
        return task.record

    def run(self, job: "SolveJob") -> dict[str, Any]:
        """``submit`` + ``wait`` (the service's pool threads call this)."""
        return self.wait(self.submit(job))

    # -- warm-up ------------------------------------------------------------------
    def warm_workers(self, k: int | None = None) -> int:
        """Ask every *idle* ready worker to pre-warm its top-k packs.

        Busy workers are skipped (they are not reading their pipe while
        solving; warming them would buffer sends behind a computation) —
        maintenance triggers this periodically, so they catch up on the
        next pass.  Returns the number of workers messaged.
        """
        k = self.warmup if k is None else k
        if k <= 0:
            return 0
        messaged = 0
        with self._lock:
            for worker in self._workers:
                if worker.alive and worker.ready and worker.task is None:
                    try:
                        worker.conn.send(("warm", int(k)))
                        messaged += 1
                    except (OSError, ValueError):  # pragma: no cover - dying
                        continue
        return messaged

    # -- test/ops sequencing hooks --------------------------------------------------
    def pause(self) -> None:
        """Hold queued tasks undetached (submits still accepted).

        With dispatch paused, followers can attach to a leader's coalescer
        entry with certainty — the deterministic-coalescing tests (and an
        operator wanting to quiesce workers) use this; :meth:`resume`
        releases the queue.
        """
        with self._changed:
            self._paused = True
            self._changed.notify_all()

    def resume(self) -> None:
        with self._changed:
            self._paused = False
            self._dispatch_locked()
            self._changed.notify_all()

    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until the pool settles: every live worker bootstrapped
        (``True``) or nothing is left alive (``False``, without waiting out
        the timeout)."""

        def _settled() -> bool:
            live = [w for w in self._workers if w.alive]
            return not live or all(w.ready for w in live)

        with self._changed:
            if not self._changed.wait_for(_settled, timeout):
                return False
            return any(w.alive for w in self._workers)

    def await_busy(self, count: int, timeout: float | None = None) -> bool:
        """Block until at least ``count`` workers hold an assigned task."""
        with self._changed:
            return self._changed.wait_for(
                lambda: self._busy_locked() >= count, timeout
            )

    def await_idle(self, timeout: float | None = None) -> bool:
        """Block until nothing is queued or assigned."""
        with self._changed:
            return self._changed.wait_for(
                lambda: not self._queue and self._busy_locked() == 0, timeout
            )

    # -- observability ------------------------------------------------------------
    def healthy(self) -> bool:
        """``False`` once the pool is dead/unrecoverable (or shut down)."""
        with self._lock:
            return not self._closing and any(w.alive for w in self._workers)

    def metrics(self) -> dict[str, Any]:
        with self._lock:
            return {
                "mode": "processes",
                "workers": self.workers,
                "alive": sum(1 for w in self._workers if w.alive),
                "busy": self._busy_locked(),
                "queued": len(self._queue),
                "dispatched": self.dispatched,
                "completed": self.completed,
                "failed": self.failed,
                "worker_restarts": self.worker_restarts,
                "warmed_packs": self.workers_warmed,
                "mapped_packs": self.workers_mmap_packs,
                "mapped_bytes": self.workers_mmap_bytes,
                "healthy": not self._closing and any(w.alive for w in self._workers),
            }

    def worker_cache_totals(self) -> dict[str, int]:
        """Summed cache-stat deltas of every task the workers answered."""
        with self._lock:
            return dict(self._worker_cache)

    # -- shutdown -----------------------------------------------------------------
    def shutdown(self, wait: bool = True, timeout: float | None = 10.0) -> None:
        """Stop the tier: optionally drain, then exit (or kill) the workers.

        With ``wait`` the tier first waits (up to ``timeout``) for assigned
        and queued tasks to finish; workers then exit on request.  Without
        it, workers are killed — their assigned tasks fail through the
        normal death path, so a caller blocked in :meth:`wait` is always
        released.  Idempotent.
        """
        with self._changed:
            if not self._closing:
                if wait:
                    self._changed.wait_for(
                        lambda: not self._queue and self._busy_locked() == 0,
                        timeout,
                    )
                self._closing = True
                self._fail_queued_locked("execution tier shut down", status=503)
                for worker in self._workers:
                    if worker.alive:
                        try:
                            worker.conn.send(("exit",))
                        except (OSError, ValueError):
                            pass
                self._changed.notify_all()
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=2.0)
        if self._collector.is_alive():
            self._collector.join(timeout=5.0)
