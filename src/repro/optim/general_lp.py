"""The Secure-View problem in general workflows (Section 5.2, Appendix C.4).

In workflows that mix private and public modules, a solution may also
*privatize* public modules (hide their identity) at cost ``c(m)``.  A public
module must be privatized whenever one of its input or output attributes is
hidden — otherwise its known functionality lets the adversary undo the
hiding (Example 7).

For set constraints the paper gives an ℓ_max-approximation via the LP
(19)–(23):

    minimize   Σ_b c_b x_b + Σ_{public i} c_i w_i
    subject to Σ_j r_ij >= 1                 for every private module i
               x_b >= r_ij                   for every b in I_i^j ∪ O_i^j
               w_i >= x_b                     for every public i, b in I_i ∪ O_i

and rounds with the ``1/ℓ_max`` threshold.  The same builder also supports
the cardinality variant (no approximation guarantee exists — Theorem 10
shows the problem is label-cover hard — so the rounding there is exposed as
a heuristic).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.requirements import SetRequirementList
from ..core.secure_view import SecureViewProblem
from ..core.view import SecureViewSolution
from ..exceptions import RequirementError, SolverError
from .cardinality_ip import w_var, x_var, r_var
from .cardinality_rounding import solve_cardinality_rounding
from .lp import LinearProgram, LPSolution

__all__ = [
    "GeneralProgram",
    "build_general_set_program",
    "solve_general_lp",
]


@dataclass
class GeneralProgram:
    """The general-workflow LP (19)–(23) and its problem instance."""

    problem: SecureViewProblem
    program: LinearProgram

    def solve_relaxation(self) -> LPSolution:
        return self.program.solve_relaxation()

    def solve_integer(self) -> LPSolution:
        return self.program.solve_integer()


def build_general_set_program(
    problem: SecureViewProblem, integral: bool = False
) -> GeneralProgram:
    """Build the LP (19)–(23) for set constraints with privatization."""
    if problem.constraint_kind != "set":
        raise RequirementError(
            "build_general_set_program requires set-constraint lists"
        )
    workflow = problem.workflow
    costs = problem.attribute_costs()
    hidable = set(problem.hidable_attributes)
    program = LinearProgram(name="general-set-constraints")

    for name in workflow.attribute_names:
        upper = 1.0 if name in hidable else 0.0
        program.add_variable(
            x_var(name), cost=costs[name], lower=0.0, upper=upper, integral=integral
        )
    for module in workflow.public_modules:
        program.add_variable(
            w_var(module.name), cost=module.privatization_cost, integral=integral
        )

    # Constraints (19)-(20): requirement coverage of private modules.
    for module_name, requirement in problem.requirements.items():
        assert isinstance(requirement, SetRequirementList)
        options = list(requirement)
        for j in range(len(options)):
            program.add_variable(r_var(module_name, j), integral=integral)
        program.add_constraint(
            {r_var(module_name, j): 1.0 for j in range(len(options))},
            ">=",
            1.0,
            name=f"select[{module_name}]",
        )
        for j, option in enumerate(options):
            for attribute in sorted(option.attributes):
                program.add_constraint(
                    {x_var(attribute): 1.0, r_var(module_name, j): -1.0},
                    ">=",
                    0.0,
                    name=f"cover[{module_name},{j},{attribute}]",
                )

    # Constraint (21): hiding an attribute of a public module privatizes it.
    for module in workflow.public_modules:
        for attribute in module.attribute_names:
            program.add_constraint(
                {w_var(module.name): 1.0, x_var(attribute): -1.0},
                ">=",
                0.0,
                name=f"privatize[{module.name},{attribute}]",
            )
    return GeneralProgram(problem=problem, program=program)


def solve_general_lp(
    problem: SecureViewProblem,
    seed: int | None = None,
    rng: random.Random | None = None,
) -> SecureViewSolution:
    """ℓ_max-approximation (set constraints) / heuristic (cardinality).

    For set constraints this is the rounding of Appendix C.4: hide every
    attribute with ``x_b >= 1/ℓ_max`` and privatize every public module with
    ``w_i >= 1/ℓ_max`` (equivalently, adjacent to a hidden attribute).  For
    cardinality constraints it falls back to Algorithm 1 on the Figure-3 LP
    augmented with privatization variables — a heuristic, as no approximation
    guarantee is possible in that regime (Theorem 10).
    """
    if not problem.allow_privatization and problem.workflow.public_modules:
        raise SolverError(
            "the general solver requires privatization to be allowed"
        )
    if problem.constraint_kind == "cardinality":
        return solve_cardinality_rounding(problem, seed=seed, rng=rng)

    built = build_general_set_program(problem, integral=False)
    lp_solution = built.solve_relaxation()
    if not lp_solution.optimal:
        raise SolverError("the general LP relaxation is infeasible")

    lmax = problem.lmax
    threshold = 1.0 / lmax
    hidden = {
        name
        for name in problem.hidable_attributes
        if lp_solution.values.get(x_var(name), 0.0) >= threshold - 1e-9
    }

    costs = problem.attribute_costs()
    repaired = []
    for module_name, requirement in problem.requirements.items():
        if not problem.requirement_satisfied(module_name, hidden):
            assert isinstance(requirement, SetRequirementList)
            option = requirement.cheapest_option(costs)
            hidden |= set(option.attributes)
            repaired.append(module_name)

    privatized = problem.required_privatizations(hidden)
    solution = SecureViewSolution(
        problem.workflow,
        frozenset(hidden),
        privatized,
        meta={
            "method": "general_lp",
            "lp_objective": lp_solution.objective,
            "lmax": lmax,
            "repaired_modules": repaired,
            "cost": problem.solution_cost(hidden, privatized),
        },
    )
    problem.validate_solution(solution)
    return solution
