"""ℓ_max-approximation for set constraints in all-private workflows.

This is the algorithm of Appendix B.5.1 (Theorem 6, upper bound): the LP

    minimize   Σ_b c_b x_b
    subject to Σ_j r_ij >= 1                        for every module i
               x_b >= r_ij  for every b in I_i^j ∪ O_i^j

is solved fractionally, and every attribute with ``x_b >= 1/ℓ_max`` is
hidden.  Since some option of each module has ``r_ij >= 1/ℓ_i >= 1/ℓ_max``,
all of that option's attributes are hidden, so the rounded solution is
feasible; its cost is at most ``ℓ_max`` times the LP value and hence at most
``ℓ_max`` times the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.requirements import SetRequirementList
from ..core.secure_view import SecureViewProblem
from ..core.view import SecureViewSolution
from ..exceptions import RequirementError, SolverError
from .lp import LinearProgram, LPSolution
from .cardinality_ip import r_var, x_var

__all__ = ["SetConstraintProgram", "build_set_program", "solve_set_lp"]


@dataclass
class SetConstraintProgram:
    """The LP (15)–(17) of Appendix B.5.1 and its problem instance."""

    problem: SecureViewProblem
    program: LinearProgram

    def solve_relaxation(self) -> LPSolution:
        return self.program.solve_relaxation()

    def solve_integer(self) -> LPSolution:
        return self.program.solve_integer()


def build_set_program(
    problem: SecureViewProblem, integral: bool = False
) -> SetConstraintProgram:
    """Build the set-constraint LP/IP for an all-private instance.

    Public modules are allowed in the workflow, but this program ignores
    privatization costs — use :mod:`repro.optim.general_lp` for the general
    problem of Section 5.2.
    """
    if problem.constraint_kind != "set":
        raise RequirementError("build_set_program requires set-constraint lists")

    workflow = problem.workflow
    costs = problem.attribute_costs()
    hidable = set(problem.hidable_attributes)
    program = LinearProgram(name="set-constraints")

    for name in workflow.attribute_names:
        upper = 1.0 if name in hidable else 0.0
        program.add_variable(
            x_var(name), cost=costs[name], lower=0.0, upper=upper, integral=integral
        )

    for module_name, requirement in problem.requirements.items():
        assert isinstance(requirement, SetRequirementList)
        options = list(requirement)
        for j in range(len(options)):
            program.add_variable(r_var(module_name, j), integral=integral)
        program.add_constraint(
            {r_var(module_name, j): 1.0 for j in range(len(options))},
            ">=",
            1.0,
            name=f"select[{module_name}]",
        )
        for j, option in enumerate(options):
            for attribute in sorted(option.attributes):
                program.add_constraint(
                    {x_var(attribute): 1.0, r_var(module_name, j): -1.0},
                    ">=",
                    0.0,
                    name=f"cover[{module_name},{j},{attribute}]",
                )
    return SetConstraintProgram(problem=problem, program=program)


def solve_set_lp(problem: SecureViewProblem) -> SecureViewSolution:
    """ℓ_max-approximation by LP rounding for set constraints (Theorem 6)."""
    built = build_set_program(problem, integral=False)
    lp_solution = built.solve_relaxation()
    if not lp_solution.optimal:
        raise SolverError("the set-constraint LP relaxation is infeasible")

    lmax = problem.lmax
    threshold = 1.0 / lmax
    hidden = {
        name
        for name in problem.hidable_attributes
        if lp_solution.values.get(x_var(name), 0.0) >= threshold - 1e-9
    }

    # The threshold argument guarantees feasibility; assert it defensively
    # and repair with the cheapest option if numerical noise intervenes.
    costs = problem.attribute_costs()
    repaired = []
    for module_name, requirement in problem.requirements.items():
        if not problem.requirement_satisfied(module_name, hidden):
            assert isinstance(requirement, SetRequirementList)
            option = requirement.cheapest_option(costs)
            hidden |= set(option.attributes)
            repaired.append(module_name)

    privatized = problem.required_privatizations(hidden)
    if privatized and not problem.allow_privatization:
        raise SolverError(
            "rounding hid attributes adjacent to public modules but "
            "privatization is disallowed for this instance"
        )
    solution = SecureViewSolution(
        problem.workflow,
        frozenset(hidden),
        privatized,
        meta={
            "method": "set_lp",
            "lp_objective": lp_solution.objective,
            "lmax": lmax,
            "repaired_modules": repaired,
            "cost": problem.solution_cost(hidden, privatized),
        },
    )
    problem.validate_solution(solution)
    return solution
