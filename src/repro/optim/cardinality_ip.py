"""The Figure-3 integer program for cardinality constraints.

The Secure-View problem with cardinality constraints is encoded exactly as
in Figure 3 of the paper:

* ``x_b``          — 1 iff attribute ``b`` is hidden,
* ``r_ij``         — 1 iff option ``j`` of module ``m_i`` is the one being
  satisfied,
* ``y_bij``/``z_bij`` — 1 iff attribute ``b`` contributes to the input
  (resp. output) requirement of option ``j`` of module ``m_i``.

Constraints (1)–(7) are reproduced verbatim.  The builder optionally emits
two *weakened* variants that the paper discusses in Appendix B.4 to
motivate the full formulation: dropping constraints (6)–(7) gives an
unbounded integrality gap, and dropping the summations in (4)–(5) gives an
Ω(n) gap.  Both are exposed for the ablation benchmark.

For general workflows (Section 5.2) the builder can also add privatization
variables ``w_m`` for public modules with the coupling constraint
``w_m >= x_b`` for every attribute ``b`` adjacent to ``m`` — the analogue of
constraint (21) of the set-constraint general LP.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.requirements import CardinalityRequirementList
from ..core.secure_view import SecureViewProblem
from ..exceptions import RequirementError, SolverError
from .lp import LinearProgram, LPSolution

__all__ = [
    "CardinalityProgram",
    "build_cardinality_program",
    "x_var",
    "r_var",
    "w_var",
]

#: LP strength levels for the integrality-gap ablation (Appendix B.4).
STRENGTH_FULL = "full"
STRENGTH_NO_CAP = "no_option_cap"  # drop constraints (6) and (7)
STRENGTH_NO_SUM = "no_summation"  # drop the sums in constraints (4) and (5)
_STRENGTHS = (STRENGTH_FULL, STRENGTH_NO_CAP, STRENGTH_NO_SUM)


def x_var(attribute: str) -> str:
    """LP variable name for "attribute is hidden"."""
    return f"x::{attribute}"


def r_var(module: str, option: int) -> str:
    """LP variable name for "option ``option`` of ``module`` is selected"."""
    return f"r::{module}::{option}"


def w_var(module: str) -> str:
    """LP variable name for "public module ``module`` is privatized"."""
    return f"w::{module}"


def _y_var(module: str, option: int, attribute: str) -> str:
    return f"y::{module}::{option}::{attribute}"


def _z_var(module: str, option: int, attribute: str) -> str:
    return f"z::{module}::{option}::{attribute}"


@dataclass
class CardinalityProgram:
    """A built Figure-3 program together with its problem instance."""

    problem: SecureViewProblem
    program: LinearProgram
    strength: str
    with_privatization: bool

    def solve_relaxation(self) -> LPSolution:
        return self.program.solve_relaxation()

    def solve_integer(self) -> LPSolution:
        return self.program.solve_integer()

    def hidden_from_solution(
        self, solution: LPSolution, threshold: float = 0.5
    ) -> set[str]:
        """Attributes whose ``x_b`` value is at least ``threshold``."""
        hidden = set()
        for name in self.problem.workflow.attribute_names:
            if solution.values.get(x_var(name), 0.0) >= threshold - 1e-9:
                hidden.add(name)
        return hidden

    def privatized_from_solution(
        self, solution: LPSolution, threshold: float = 0.5
    ) -> set[str]:
        """Public modules whose ``w_m`` value is at least ``threshold``."""
        if not self.with_privatization:
            return set()
        privatized = set()
        for module in self.problem.workflow.public_modules:
            if solution.values.get(w_var(module.name), 0.0) >= threshold - 1e-9:
                privatized.add(module.name)
        return privatized


def build_cardinality_program(
    problem: SecureViewProblem,
    integral: bool = False,
    strength: str = STRENGTH_FULL,
    with_privatization: bool | None = None,
) -> CardinalityProgram:
    """Build the Figure-3 LP/IP for a cardinality-constraint instance.

    Parameters
    ----------
    problem:
        The Secure-View instance; its requirement lists must be cardinality
        constraints.
    integral:
        When true, all variables are declared integral (the exact IP).
    strength:
        One of ``"full"``, ``"no_option_cap"``, ``"no_summation"`` — the
        latter two are the weakened LPs of Appendix B.4, used only in the
        ablation benchmark.
    with_privatization:
        Add ``w_m`` variables for public modules.  Defaults to true exactly
        when the workflow has public modules and the problem allows
        privatization.
    """
    if problem.constraint_kind != "cardinality":
        raise RequirementError(
            "build_cardinality_program requires cardinality-constraint lists"
        )
    if strength not in _STRENGTHS:
        raise SolverError(f"unknown LP strength {strength!r}")

    workflow = problem.workflow
    if with_privatization is None:
        with_privatization = (
            problem.allow_privatization and bool(workflow.public_modules)
        )

    costs = problem.attribute_costs()
    program = LinearProgram(name=f"cardinality[{strength}]")

    hidable = set(problem.hidable_attributes)
    for name in workflow.attribute_names:
        upper = 1.0 if name in hidable else 0.0
        program.add_variable(
            x_var(name), cost=costs[name], lower=0.0, upper=upper, integral=integral
        )

    if with_privatization:
        for module in workflow.public_modules:
            program.add_variable(
                w_var(module.name),
                cost=module.privatization_cost,
                integral=integral,
            )

    for module_name, requirement in problem.requirements.items():
        assert isinstance(requirement, CardinalityRequirementList)
        module = workflow.module(module_name)
        inputs = module.input_names
        outputs = module.output_names
        options = list(requirement)

        for j in range(len(options)):
            program.add_variable(r_var(module_name, j), integral=integral)
            for b in inputs:
                program.add_variable(_y_var(module_name, j, b), integral=integral)
            for b in outputs:
                program.add_variable(_z_var(module_name, j, b), integral=integral)

        # Constraint (1): some option must be selected.
        program.add_constraint(
            {r_var(module_name, j): 1.0 for j in range(len(options))},
            ">=",
            1.0,
            name=f"select[{module_name}]",
        )
        for j, option in enumerate(options):
            # Constraint (2): enough input attributes contribute.
            coeffs = {_y_var(module_name, j, b): 1.0 for b in inputs}
            coeffs[r_var(module_name, j)] = -float(option.alpha)
            program.add_constraint(coeffs, ">=", 0.0, name=f"in[{module_name},{j}]")

            # Constraint (3): enough output attributes contribute.
            coeffs = {_z_var(module_name, j, b): 1.0 for b in outputs}
            coeffs[r_var(module_name, j)] = -float(option.beta)
            program.add_constraint(coeffs, ">=", 0.0, name=f"out[{module_name},{j}]")

            if strength != STRENGTH_NO_CAP:
                # Constraints (6)/(7): contributions only when the option is selected.
                for b in inputs:
                    program.add_constraint(
                        {_y_var(module_name, j, b): 1.0, r_var(module_name, j): -1.0},
                        "<=",
                        0.0,
                        name=f"cap_in[{module_name},{j},{b}]",
                    )
                for b in outputs:
                    program.add_constraint(
                        {_z_var(module_name, j, b): 1.0, r_var(module_name, j): -1.0},
                        "<=",
                        0.0,
                        name=f"cap_out[{module_name},{j},{b}]",
                    )

        # Constraints (4)/(5): contributions require the attribute to be hidden.
        for b in inputs:
            if strength == STRENGTH_NO_SUM:
                for j in range(len(options)):
                    program.add_constraint(
                        {_y_var(module_name, j, b): 1.0, x_var(b): -1.0},
                        "<=",
                        0.0,
                        name=f"hide_in[{module_name},{j},{b}]",
                    )
            else:
                coeffs = {
                    _y_var(module_name, j, b): 1.0 for j in range(len(options))
                }
                coeffs[x_var(b)] = -1.0
                program.add_constraint(
                    coeffs, "<=", 0.0, name=f"hide_in[{module_name},{b}]"
                )
        for b in outputs:
            if strength == STRENGTH_NO_SUM:
                for j in range(len(options)):
                    program.add_constraint(
                        {_z_var(module_name, j, b): 1.0, x_var(b): -1.0},
                        "<=",
                        0.0,
                        name=f"hide_out[{module_name},{j},{b}]",
                    )
            else:
                coeffs = {
                    _z_var(module_name, j, b): 1.0 for j in range(len(options))
                }
                coeffs[x_var(b)] = -1.0
                program.add_constraint(
                    coeffs, "<=", 0.0, name=f"hide_out[{module_name},{b}]"
                )

    if with_privatization:
        # Analogue of constraint (21): hiding an attribute adjacent to a
        # public module forces that module to be privatized.
        for module in workflow.public_modules:
            for b in module.attribute_names:
                program.add_constraint(
                    {w_var(module.name): 1.0, x_var(b): -1.0},
                    ">=",
                    0.0,
                    name=f"privatize[{module.name},{b}]",
                )

    return CardinalityProgram(
        problem=problem,
        program=program,
        strength=strength,
        with_privatization=with_privatization,
    )
