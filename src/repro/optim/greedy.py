"""Greedy algorithms for the Secure-View problem.

Two greedy strategies appear in the paper:

* the **(γ+1)-approximation** for workflows with γ-bounded data sharing
  (Theorem 7): every module independently picks its cheapest requirement
  option and the hidden set is the union of the picks.  Because an attribute
  is produced by one module and consumed by at most γ modules, an optimal
  solution pays for each hidden attribute at most γ+1 times, giving the
  bound.
* the **union-of-standalone-optima** baseline of Example 5, which is the
  same computation but presented as a baseline: the example shows its cost
  can be Ω(n) times the workflow optimum once data sharing is unbounded.

The same function implements both; the baseline name is kept as an alias so
benchmark output reads like the paper.
"""

from __future__ import annotations

from ..core.requirements import CardinalityRequirementList, SetRequirementList
from ..core.secure_view import SecureViewProblem
from ..core.view import SecureViewSolution
from ..exceptions import RequirementError, SolverError

__all__ = ["solve_greedy", "union_of_standalone_optima", "greedy_guarantee"]


def _cheapest_option_attributes(
    problem: SecureViewProblem, module_name: str
) -> set[str]:
    """The cheapest hidden attribute set satisfying one module on its own."""
    requirement = problem.requirements[module_name]
    module = problem.workflow.module(module_name)
    costs = problem.attribute_costs()
    hidable = set(problem.hidable_attributes)

    if isinstance(requirement, SetRequirementList):
        best: tuple[float, set[str]] | None = None
        for option in requirement:
            attributes = set(option.attributes)
            if not attributes <= hidable:
                continue
            cost = sum(costs[name] for name in attributes)
            if best is None or cost < best[0]:
                best = (cost, attributes)
        if best is None:
            raise RequirementError(
                f"module {module_name!r} has no hidable set option"
            )
        return best[1]

    if isinstance(requirement, CardinalityRequirementList):
        inputs = sorted(
            (name for name in module.input_names if name in hidable),
            key=lambda name: costs[name],
        )
        outputs = sorted(
            (name for name in module.output_names if name in hidable),
            key=lambda name: costs[name],
        )
        best = None
        for option in requirement:
            if option.alpha > len(inputs) or option.beta > len(outputs):
                continue
            chosen = set(inputs[: option.alpha]) | set(outputs[: option.beta])
            cost = sum(costs[name] for name in chosen)
            if best is None or cost < best[0]:
                best = (cost, chosen)
        if best is None:
            raise RequirementError(
                f"module {module_name!r} has no realizable cardinality option"
            )
        return best[1]

    raise RequirementError(f"unsupported requirement type {type(requirement)!r}")


def solve_greedy(problem: SecureViewProblem) -> SecureViewSolution:
    """Per-module cheapest-option greedy; (γ+1)-approximate under bounded sharing."""
    hidden: set[str] = set()
    per_module: dict[str, list[str]] = {}
    for module_name in problem.requirements:
        chosen = _cheapest_option_attributes(problem, module_name)
        per_module[module_name] = sorted(chosen)
        hidden |= chosen

    privatized = problem.required_privatizations(hidden)
    if privatized and not problem.allow_privatization:
        raise SolverError(
            "the greedy choice hides attributes adjacent to public modules "
            "but privatization is disallowed for this instance"
        )
    solution = SecureViewSolution(
        problem.workflow,
        frozenset(hidden),
        privatized,
        meta={
            "method": "greedy",
            "per_module_choice": per_module,
            "gamma": problem.workflow.data_sharing_degree(),
            "guarantee": greedy_guarantee(problem),
            "cost": problem.solution_cost(hidden, privatized),
        },
    )
    problem.validate_solution(solution)
    return solution


def union_of_standalone_optima(problem: SecureViewProblem) -> SecureViewSolution:
    """The Example-5 baseline: union of each module's cheapest safe option.

    Identical to :func:`solve_greedy`; kept as a separate name so that
    benchmark tables can label the baseline the way the paper does.
    """
    solution = solve_greedy(problem)
    solution.meta["method"] = "union_of_standalone_optima"
    return solution


def greedy_guarantee(problem: SecureViewProblem) -> int:
    """The (γ+1) approximation factor Theorem 7 guarantees for this instance."""
    return problem.workflow.data_sharing_degree() + 1
