"""Optimization algorithms for the Secure-View problem.

The solvers mirror Sections 4–5 of the paper:

=====================  =============================================  ==========================
method name            algorithm                                      guarantee
=====================  =============================================  ==========================
``exact`` / ``exact_ip``  integral Figure-3 / (15)–(17) / (19)–(23)   optimal
``exact_enum``         enumeration over requirement options           optimal
``lp_rounding``        Algorithm 1 on the Figure-3 LP                 O(log n) (Theorem 5)
``set_lp``             ℓ_max threshold rounding                       ℓ_max (Theorem 6)
``greedy``             per-module cheapest option                     γ+1 (Theorem 7)
``general_lp``         LP (19)–(23) with privatization                ℓ_max (Section 5.2)
``hide_everything``    baseline                                        —
``hide_intermediate``  baseline                                        —
``random``             baseline                                        —
=====================  =============================================  ==========================

The ``SOLVERS`` table and :func:`solve_secure_view` remain as the stable
low-level dispatch; new code should go through :class:`repro.engine.Planner`,
which reaches every solver listed here by registry name while sharing the
expensive requirement derivation across invocations.
"""

from ..core.secure_view import SecureViewProblem
from ..core.view import SecureViewSolution
from ..exceptions import SolverError
from .baselines import hide_all_intermediate, hide_everything, random_feasible
from .cardinality_ip import (
    STRENGTH_FULL,
    STRENGTH_NO_CAP,
    STRENGTH_NO_SUM,
    CardinalityProgram,
    build_cardinality_program,
)
from .cardinality_rounding import (
    cheapest_fallback_set,
    expected_rounding_cost,
    solve_cardinality_rounding,
)
from .exact import exact_optimum_cost, solve_exact_enumeration, solve_exact_ip
from .general_lp import GeneralProgram, build_general_set_program, solve_general_lp
from .greedy import greedy_guarantee, solve_greedy, union_of_standalone_optima
from .local_search import (
    improve_solution,
    prune_solution,
    solve_with_local_search,
    swap_options,
)
from .lp import Constraint, LinearProgram, LPSolution, Variable
from .set_lp import SetConstraintProgram, build_set_program, solve_set_lp

__all__ = [
    "LinearProgram",
    "LPSolution",
    "Variable",
    "Constraint",
    "CardinalityProgram",
    "build_cardinality_program",
    "STRENGTH_FULL",
    "STRENGTH_NO_CAP",
    "STRENGTH_NO_SUM",
    "solve_cardinality_rounding",
    "cheapest_fallback_set",
    "expected_rounding_cost",
    "SetConstraintProgram",
    "build_set_program",
    "solve_set_lp",
    "GeneralProgram",
    "build_general_set_program",
    "solve_general_lp",
    "solve_greedy",
    "union_of_standalone_optima",
    "greedy_guarantee",
    "solve_exact_ip",
    "solve_exact_enumeration",
    "exact_optimum_cost",
    "hide_everything",
    "hide_all_intermediate",
    "random_feasible",
    "solve_secure_view",
    "filter_solver_kwargs",
    "SOLVERS",
    "improve_solution",
    "prune_solution",
    "swap_options",
    "solve_with_local_search",
]


def filter_solver_kwargs(target, kwargs, ambient=("seed", "rng")):
    """Restrict ``kwargs`` to what a solver callable's signature accepts.

    Ambient randomness parameters are dropped silently when the target does
    not take them (so one seed can be threaded through heterogeneous
    solvers); any other unsupported option raises :class:`SolverError`
    rather than degrading into a silent no-op.  Targets with ``**kwargs``
    accept everything.
    """
    import inspect

    params = inspect.signature(target).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return dict(kwargs)
    kept = {}
    for key, value in kwargs.items():
        if key in params:
            kept[key] = value
        elif key not in ambient:
            raise SolverError(
                f"solver {getattr(target, '__name__', target)!r} does not "
                f"accept option {key!r}"
            )
    return kept


def _solve_auto(problem: SecureViewProblem, **kwargs) -> SecureViewSolution:
    """Pick a sensible solver for the instance shape."""
    has_public = bool(problem.workflow.public_modules) and problem.allow_privatization
    if problem.constraint_kind == "cardinality":
        target = solve_cardinality_rounding
    elif has_public:
        target = solve_general_lp
    else:
        target = solve_set_lp
    return target(problem, **filter_solver_kwargs(target, kwargs))


SOLVERS = {
    "auto": _solve_auto,
    "exact": solve_exact_ip,
    "exact_ip": solve_exact_ip,
    "exact_enum": solve_exact_enumeration,
    "lp_rounding": solve_cardinality_rounding,
    "set_lp": solve_set_lp,
    "general_lp": solve_general_lp,
    "greedy": solve_greedy,
    "union_standalone": union_of_standalone_optima,
    "hide_everything": hide_everything,
    "hide_intermediate": hide_all_intermediate,
    "random": random_feasible,
    "local_search": solve_with_local_search,
}


def solve_secure_view(
    problem: SecureViewProblem, method: str = "auto", **kwargs
) -> SecureViewSolution:
    """Solve a Secure-View instance with the named method (see ``SOLVERS``)."""
    try:
        solver = SOLVERS[method]
    except KeyError as exc:
        raise SolverError(
            f"unknown solver {method!r}; available: {sorted(SOLVERS)}"
        ) from exc
    return solver(problem, **kwargs)
