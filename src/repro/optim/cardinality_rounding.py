"""Algorithm 1: randomized rounding of the Figure-3 LP relaxation.

This is the O(log n)-approximation of Theorem 5 for the Secure-View problem
with cardinality constraints:

1. solve the LP relaxation of the Figure-3 program,
2. hide every attribute ``b`` independently with probability
   ``min(1, scale * x_b * log n)`` (the paper uses ``scale = 16``),
3. for every module whose requirement is still unsatisfied, add the
   fall-back set ``B_i^min`` — the cheapest α inputs plus β outputs over the
   options of its list (this happens with probability at most ``2/n`` per
   module, so it does not affect the expected approximation factor),
4. for general workflows, privatize every public module adjacent to a hidden
   attribute.

The returned solution's ``meta`` records the LP objective, the rounding
seed, which modules needed the fall-back, and the final cost so that the
benchmarks can report approximation ratios against the exact optimum.
"""

from __future__ import annotations

import math
import random
from typing import Iterable

from ..core.requirements import CardinalityRequirementList
from ..core.secure_view import SecureViewProblem
from ..core.view import SecureViewSolution
from ..exceptions import RequirementError, SolverError
from .cardinality_ip import (
    STRENGTH_FULL,
    build_cardinality_program,
    x_var,
)

__all__ = ["cheapest_fallback_set", "solve_cardinality_rounding"]


def cheapest_fallback_set(
    problem: SecureViewProblem, module_name: str
) -> set[str]:
    """``B_i^min``: the cheapest attribute set satisfying one option directly.

    For each option ``(α, β)`` of the module's list, take the α cheapest
    input attributes and the β cheapest output attributes (restricted to the
    hidable attributes); return the cheapest such set over all options.
    """
    requirement = problem.requirements[module_name]
    if not isinstance(requirement, CardinalityRequirementList):
        raise RequirementError("cheapest_fallback_set needs cardinality constraints")
    module = problem.workflow.module(module_name)
    costs = problem.attribute_costs()
    hidable = set(problem.hidable_attributes)

    inputs = sorted(
        (name for name in module.input_names if name in hidable),
        key=lambda name: costs[name],
    )
    outputs = sorted(
        (name for name in module.output_names if name in hidable),
        key=lambda name: costs[name],
    )

    best: tuple[float, set[str]] | None = None
    for option in requirement:
        if option.alpha > len(inputs) or option.beta > len(outputs):
            continue  # option not realizable under the hidable restriction
        chosen = set(inputs[: option.alpha]) | set(outputs[: option.beta])
        cost = sum(costs[name] for name in chosen)
        if best is None or cost < best[0]:
            best = (cost, chosen)
    if best is None:
        raise RequirementError(
            f"module {module_name!r} has no realizable cardinality option"
        )
    return best[1]


def solve_cardinality_rounding(
    problem: SecureViewProblem,
    seed: int | None = None,
    scale: float = 16.0,
    strength: str = STRENGTH_FULL,
    rng: random.Random | None = None,
) -> SecureViewSolution:
    """Algorithm 1 end to end: LP relaxation + randomized rounding + repair.

    Parameters
    ----------
    problem:
        A cardinality-constraint Secure-View instance.
    seed:
        Seed of the rounding randomness (reproducible benchmarks).
    scale:
        The constant in the rounding probability ``min(1, scale*x_b*log n)``;
        the paper's analysis uses 16, but smaller constants behave well in
        practice and the benchmarks sweep this.
    strength:
        LP strength (see :mod:`repro.optim.cardinality_ip`); only the full
        LP carries the Theorem-5 guarantee.
    rng:
        Explicit random source; takes precedence over ``seed`` so callers
        (e.g. the engine) can thread one generator through a whole sweep.
    """
    if problem.constraint_kind != "cardinality":
        raise RequirementError(
            "solve_cardinality_rounding requires cardinality constraints"
        )
    built = build_cardinality_program(problem, integral=False, strength=strength)
    lp_solution = built.solve_relaxation()
    if not lp_solution.optimal:
        raise SolverError("the LP relaxation is infeasible")

    workflow = problem.workflow
    if rng is None:
        rng = random.Random(seed)
    n = max(len(workflow), 2)
    log_n = math.log(n)

    hidden: set[str] = set()
    for name in problem.hidable_attributes:
        x_value = lp_solution.values.get(x_var(name), 0.0)
        probability = min(1.0, scale * x_value * log_n)
        if rng.random() < probability:
            hidden.add(name)

    # Repair step: per-module fall-back for unsatisfied requirements.
    repaired: list[str] = []
    for module_name in problem.requirements:
        if not problem.requirement_satisfied(module_name, hidden):
            fallback = cheapest_fallback_set(problem, module_name)
            hidden |= fallback
            repaired.append(module_name)

    privatized = problem.required_privatizations(hidden)
    if privatized and not problem.allow_privatization:
        raise SolverError(
            "rounding hid attributes adjacent to public modules but "
            "privatization is disallowed for this instance"
        )

    solution = SecureViewSolution(
        workflow,
        frozenset(hidden),
        privatized,
        meta={
            "method": "lp_rounding",
            "lp_objective": lp_solution.objective,
            "seed": seed,
            "scale": scale,
            "strength": strength,
            "repaired_modules": repaired,
            "cost": problem.solution_cost(hidden, privatized),
        },
    )
    problem.validate_solution(solution)
    return solution


def expected_rounding_cost(
    problem: SecureViewProblem,
    seeds: Iterable[int],
    scale: float = 16.0,
) -> float:
    """Average rounded cost over several seeds (used by the benchmarks)."""
    seeds = list(seeds)
    if not seeds:
        raise SolverError("expected_rounding_cost needs at least one seed")
    total = 0.0
    for seed in seeds:
        solution = solve_cardinality_rounding(problem, seed=seed, scale=scale)
        total += solution.meta["cost"]
    return total / len(seeds)
