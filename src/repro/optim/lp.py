"""A thin linear/integer-programming layer on top of scipy.

The approximation algorithms of Sections 4–5 are all "write an LP relaxation,
solve it, round it".  :class:`LinearProgram` provides the small amount of
bookkeeping those algorithms need — named variables, named constraints, a
minimization objective — and solves either the continuous relaxation
(``scipy.optimize.linprog``/HiGHS) or the integer program itself
(``scipy.optimize.milp``), which the exact baseline uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np
    from scipy.optimize import Bounds, LinearConstraint, linprog, milp

    HAVE_SCIPY = True
except ImportError:  # modelling still works; solving raises SolverError
    np = None  # type: ignore[assignment]
    Bounds = LinearConstraint = linprog = milp = None
    HAVE_SCIPY = False

from ..exceptions import SolverError

__all__ = ["Variable", "Constraint", "LPSolution", "LinearProgram"]


@dataclass(frozen=True)
class Variable:
    """A decision variable with bounds, objective coefficient and integrality."""

    name: str
    index: int
    cost: float
    lower: float
    upper: float
    integral: bool


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``sum coeffs[v] * v  (sense)  rhs``."""

    name: str
    coefficients: Mapping[str, float]
    sense: str  # one of "<=", ">=", "=="
    rhs: float


@dataclass
class LPSolution:
    """Result of solving a :class:`LinearProgram`."""

    status: str
    objective: float
    values: dict[str, float] = field(default_factory=dict)

    @property
    def optimal(self) -> bool:
        return self.status == "optimal"

    def value(self, name: str) -> float:
        return self.values[name]


class LinearProgram:
    """A minimization LP/IP with named variables and constraints."""

    SENSES = ("<=", ">=", "==")

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._variables: dict[str, Variable] = {}
        self._constraints: list[Constraint] = []

    # -- construction -----------------------------------------------------------
    def add_variable(
        self,
        name: str,
        cost: float = 0.0,
        lower: float = 0.0,
        upper: float = 1.0,
        integral: bool = False,
    ) -> Variable:
        """Register a variable; re-registering the same name is an error."""
        if name in self._variables:
            raise SolverError(f"variable {name!r} already declared")
        variable = Variable(
            name=name,
            index=len(self._variables),
            cost=float(cost),
            lower=float(lower),
            upper=float(upper),
            integral=integral,
        )
        self._variables[name] = variable
        return variable

    def has_variable(self, name: str) -> bool:
        return name in self._variables

    def add_constraint(
        self,
        coefficients: Mapping[str, float],
        sense: str,
        rhs: float,
        name: str = "",
    ) -> Constraint:
        """Register a constraint over previously declared variables."""
        if sense not in self.SENSES:
            raise SolverError(f"unknown constraint sense {sense!r}")
        unknown = set(coefficients) - set(self._variables)
        if unknown:
            raise SolverError(
                f"constraint references unknown variables {sorted(unknown)!r}"
            )
        constraint = Constraint(
            name=name or f"c{len(self._constraints)}",
            coefficients=dict(coefficients),
            sense=sense,
            rhs=float(rhs),
        )
        self._constraints.append(constraint)
        return constraint

    # -- introspection -----------------------------------------------------------
    @property
    def variables(self) -> tuple[Variable, ...]:
        return tuple(self._variables.values())

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        return tuple(self._constraints)

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    # -- matrix assembly -----------------------------------------------------------
    def _objective_vector(self) -> np.ndarray:
        cost = np.zeros(len(self._variables))
        for variable in self._variables.values():
            cost[variable.index] = variable.cost
        return cost

    def _constraint_matrices(self):
        n = len(self._variables)
        a_ub: list[np.ndarray] = []
        b_ub: list[float] = []
        a_eq: list[np.ndarray] = []
        b_eq: list[float] = []
        for constraint in self._constraints:
            row = np.zeros(n)
            for var_name, coef in constraint.coefficients.items():
                row[self._variables[var_name].index] += coef
            if constraint.sense == "<=":
                a_ub.append(row)
                b_ub.append(constraint.rhs)
            elif constraint.sense == ">=":
                a_ub.append(-row)
                b_ub.append(-constraint.rhs)
            else:
                a_eq.append(row)
                b_eq.append(constraint.rhs)
        return a_ub, b_ub, a_eq, b_eq

    def _bounds(self) -> list[tuple[float, float]]:
        bounds = [(0.0, 1.0)] * len(self._variables)
        for variable in self._variables.values():
            bounds[variable.index] = (variable.lower, variable.upper)
        return bounds

    def _wrap_solution(
        self, status: str, objective: float, x: np.ndarray | None
    ) -> LPSolution:
        values: dict[str, float] = {}
        if x is not None:
            for variable in self._variables.values():
                values[variable.name] = float(x[variable.index])
        return LPSolution(status=status, objective=float(objective), values=values)

    # -- solving ----------------------------------------------------------------------
    def solve_relaxation(self) -> LPSolution:
        """Solve the continuous relaxation (all variables within their bounds)."""
        if not HAVE_SCIPY:
            raise SolverError("solving LPs requires numpy and scipy")
        if not self._variables:
            raise SolverError("cannot solve an LP with no variables")
        cost = self._objective_vector()
        a_ub, b_ub, a_eq, b_eq = self._constraint_matrices()
        result = linprog(
            cost,
            A_ub=np.array(a_ub) if a_ub else None,
            b_ub=np.array(b_ub) if b_ub else None,
            A_eq=np.array(a_eq) if a_eq else None,
            b_eq=np.array(b_eq) if b_eq else None,
            bounds=self._bounds(),
            method="highs",
        )
        if not result.success:
            return self._wrap_solution("infeasible", float("inf"), None)
        return self._wrap_solution("optimal", result.fun, result.x)

    def solve_integer(self) -> LPSolution:
        """Solve the (mixed-)integer program with scipy's HiGHS MILP backend."""
        if not HAVE_SCIPY:
            raise SolverError("solving IPs requires numpy and scipy")
        if not self._variables:
            raise SolverError("cannot solve an IP with no variables")
        cost = self._objective_vector()
        n = len(self._variables)
        constraints = []
        for constraint in self._constraints:
            row = np.zeros(n)
            for var_name, coef in constraint.coefficients.items():
                row[self._variables[var_name].index] += coef
            if constraint.sense == "<=":
                constraints.append(LinearConstraint(row, -np.inf, constraint.rhs))
            elif constraint.sense == ">=":
                constraints.append(LinearConstraint(row, constraint.rhs, np.inf))
            else:
                constraints.append(
                    LinearConstraint(row, constraint.rhs, constraint.rhs)
                )
        integrality = np.zeros(n)
        lower = np.zeros(n)
        upper = np.ones(n)
        for variable in self._variables.values():
            integrality[variable.index] = 1.0 if variable.integral else 0.0
            lower[variable.index] = variable.lower
            upper[variable.index] = variable.upper
        result = milp(
            c=cost,
            constraints=constraints,
            integrality=integrality,
            bounds=Bounds(lower, upper),
        )
        if not result.success or result.x is None:
            return self._wrap_solution("infeasible", float("inf"), None)
        return self._wrap_solution("optimal", result.fun, result.x)

    def solve(self, relaxation: bool = True) -> LPSolution:
        """Solve either the relaxation or the integer program."""
        return self.solve_relaxation() if relaxation else self.solve_integer()

    # -- reporting -------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable LP listing (used by examples and debugging)."""
        lines = [f"minimize  " + " + ".join(
            f"{v.cost:g}*{v.name}" for v in self._variables.values() if v.cost
        )]
        for constraint in self._constraints:
            terms = " + ".join(
                f"{coef:g}*{name}" for name, coef in constraint.coefficients.items()
            )
            lines.append(
                f"  {constraint.name}: {terms} {constraint.sense} {constraint.rhs:g}"
            )
        return "\n".join(lines)


def round_threshold(
    values: Mapping[str, float], threshold: float, names: Iterable[str]
) -> set[str]:
    """Names whose LP value is at least ``threshold`` (deterministic rounding)."""
    return {name for name in names if values.get(name, 0.0) >= threshold - 1e-9}
