"""Exact optima for Secure-View instances.

The paper's approximation factors are all relative to the exact optimum, so
the benchmarks need a trustworthy (if slow) exact solver.  Two are provided:

* :func:`solve_exact_ip` — solve the integral version of the same programs
  the approximation algorithms relax (Figure 3 for cardinality constraints,
  (15)–(17) for set constraints, (19)–(23) for general workflows) with
  scipy's HiGHS branch-and-bound.  This is the default exact baseline.
* :func:`solve_exact_enumeration` — enumerate feasible solutions directly
  (over requirement-option combinations, falling back to attribute subsets),
  used to cross-validate the IP encoding on small instances.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from ..core.requirements import CardinalityRequirementList, SetRequirementList
from ..core.secure_view import SecureViewProblem
from ..core.view import SecureViewSolution
from ..exceptions import InfeasibleError, SolverError
from .cardinality_ip import build_cardinality_program, w_var, x_var
from .general_lp import build_general_set_program
from .set_lp import build_set_program

__all__ = ["solve_exact_ip", "solve_exact_enumeration", "exact_optimum_cost"]


def _extract_solution(
    problem: SecureViewProblem, values: dict[str, float]
) -> SecureViewSolution:
    hidden = {
        name
        for name in problem.workflow.attribute_names
        if values.get(x_var(name), 0.0) >= 0.5
    }
    privatized = {
        module.name
        for module in problem.workflow.public_modules
        if values.get(w_var(module.name), 0.0) >= 0.5
    }
    # Privatization may be implied rather than modeled (all-private programs).
    privatized |= set(problem.required_privatizations(hidden))
    return SecureViewSolution(
        problem.workflow,
        frozenset(hidden),
        frozenset(privatized),
        meta={
            "method": "exact_ip",
            "cost": problem.solution_cost(hidden, privatized),
        },
    )


def solve_exact_ip(problem: SecureViewProblem) -> SecureViewSolution:
    """Exact optimum via the integral version of the paper's programs."""
    has_public = bool(problem.workflow.public_modules) and problem.allow_privatization
    if problem.constraint_kind == "cardinality":
        built = build_cardinality_program(
            problem, integral=True, with_privatization=has_public
        )
        result = built.solve_integer()
    elif has_public:
        built = build_general_set_program(problem, integral=True)
        result = built.solve_integer()
    else:
        built = build_set_program(problem, integral=True)
        result = built.solve_integer()
    if not result.optimal:
        raise InfeasibleError("the Secure-View instance admits no feasible solution")
    solution = _extract_solution(problem, result.values)
    solution.meta["ip_objective"] = result.objective
    problem.validate_solution(solution)
    return solution


def _candidate_hidden_sets(
    problem: SecureViewProblem, max_combinations: int
) -> Iterable[set[str]]:
    """Candidate hidden sets from requirement-option combinations."""
    module_names = list(problem.requirements)
    option_sets: list[list[set[str]]] = []
    total = 1
    hidable = set(problem.hidable_attributes)
    for module_name in module_names:
        requirement = problem.requirements[module_name]
        module = problem.workflow.module(module_name)
        options: list[set[str]] = []
        if isinstance(requirement, SetRequirementList):
            for option in requirement:
                attributes = set(option.attributes)
                if attributes <= hidable:
                    options.append(attributes)
        elif isinstance(requirement, CardinalityRequirementList):
            inputs = [n for n in module.input_names if n in hidable]
            outputs = [n for n in module.output_names if n in hidable]
            for option in requirement:
                if option.alpha > len(inputs) or option.beta > len(outputs):
                    continue
                for ins in itertools.combinations(inputs, option.alpha):
                    for outs in itertools.combinations(outputs, option.beta):
                        options.append(set(ins) | set(outs))
        if not options:
            raise InfeasibleError(
                f"module {module_name!r} has no realizable requirement option"
            )
        option_sets.append(options)
        total *= len(options)
        if total > max_combinations:
            raise SolverError(
                "exact enumeration over requirement options exceeds the limit "
                f"({total} > {max_combinations}); use solve_exact_ip instead"
            )
    for combo in itertools.product(*option_sets):
        hidden: set[str] = set()
        for chosen in combo:
            hidden |= chosen
        yield hidden


def solve_exact_enumeration(
    problem: SecureViewProblem, max_combinations: int = 2_000_000
) -> SecureViewSolution:
    """Exact optimum by enumerating requirement-option combinations.

    Every feasible solution is dominated by one whose hidden set is a union
    of one option per module (removing any other attribute keeps it
    feasible), so enumerating option combinations is exhaustive.  Raises
    :class:`SolverError` when the combination count exceeds
    ``max_combinations``.
    """
    best: tuple[float, set[str], frozenset[str]] | None = None
    for hidden in _candidate_hidden_sets(problem, max_combinations):
        privatized = problem.required_privatizations(hidden)
        if privatized and not problem.allow_privatization:
            continue
        cost = problem.solution_cost(hidden, privatized)
        if best is None or cost < best[0]:
            best = (cost, hidden, privatized)
    if best is None:
        raise InfeasibleError("the Secure-View instance admits no feasible solution")
    cost, hidden, privatized = best
    solution = SecureViewSolution(
        problem.workflow,
        frozenset(hidden),
        privatized,
        meta={"method": "exact_enumeration", "cost": cost},
    )
    problem.validate_solution(solution)
    return solution


def exact_optimum_cost(problem: SecureViewProblem) -> float:
    """Cost of the exact optimum (convenience wrapper used by benchmarks)."""
    return solve_exact_ip(problem).cost()
