"""Local-search post-processing for Secure-View solutions.

The paper's algorithms (LP rounding, greedy) can leave slack: attributes
that are hidden but not needed by any module's requirement, or expensive
option choices that a cheaper neighbouring option would cover once the rest
of the solution is fixed.  This module implements two improvement passes
that preserve feasibility:

* **pruning** — repeatedly drop the most expensive hidden attribute whose
  removal keeps every requirement satisfied (and recompute the forced
  privatizations), and
* **option swapping** — for each module, try replacing its currently
  "charged" option by each alternative option, keeping the swap when the
  total cost (including privatization) decreases.

Neither pass can worsen a solution, so all approximation guarantees carry
over; the ablation benchmark measures how much they help each base solver.
"""

from __future__ import annotations

import random
from typing import Iterable

from ..core.requirements import CardinalityRequirementList, SetRequirementList
from ..core.secure_view import SecureViewProblem
from ..core.view import SecureViewSolution

__all__ = [
    "prune_solution",
    "swap_options",
    "improve_solution",
    "solve_with_local_search",
]


def _cost(problem: SecureViewProblem, hidden: set[str]) -> float:
    return problem.solution_cost(hidden, problem.required_privatizations(hidden))


def prune_solution(
    problem: SecureViewProblem,
    solution: SecureViewSolution,
    protected: Iterable[str] = (),
) -> SecureViewSolution:
    """Drop redundant hidden attributes, most expensive first.

    Attributes in ``protected`` are never removed; the option-swapping pass
    uses this to keep the option it just committed to while clearing out the
    attributes it made redundant.
    """
    costs = problem.attribute_costs()
    protected_set = set(protected)
    hidden = set(solution.hidden_attributes)
    improved = True
    while improved:
        improved = False
        for name in sorted(hidden, key=lambda item: -costs[item]):
            if name in protected_set:
                continue
            trial = hidden - {name}
            if all(
                problem.requirement_satisfied(module_name, trial)
                for module_name in problem.requirements
            ):
                if _cost(problem, trial) <= _cost(problem, hidden):
                    hidden = trial
                    improved = True
                    break
    return problem.make_solution(
        hidden,
        meta={
            **solution.meta,
            "local_search": "pruned",
            "cost": _cost(problem, hidden),
        },
    )


def _module_option_sets(problem: SecureViewProblem, module_name: str) -> list[set[str]]:
    """Concrete attribute sets realizing each option of a module's list."""
    requirement = problem.requirements[module_name]
    module = problem.workflow.module(module_name)
    costs = problem.attribute_costs()
    hidable = set(problem.hidable_attributes)
    options: list[set[str]] = []
    if isinstance(requirement, SetRequirementList):
        for option in requirement:
            attributes = set(option.attributes)
            if attributes <= hidable:
                options.append(attributes)
    elif isinstance(requirement, CardinalityRequirementList):
        inputs = sorted(
            (name for name in module.input_names if name in hidable),
            key=lambda name: costs[name],
        )
        outputs = sorted(
            (name for name in module.output_names if name in hidable),
            key=lambda name: costs[name],
        )
        for option in requirement:
            if option.alpha > len(inputs) or option.beta > len(outputs):
                continue
            options.append(set(inputs[: option.alpha]) | set(outputs[: option.beta]))
    return options


def swap_options(
    problem: SecureViewProblem, solution: SecureViewSolution
) -> SecureViewSolution:
    """Try swapping each module's option for a cheaper one, then re-prune."""
    hidden = set(solution.hidden_attributes)
    best_cost = _cost(problem, hidden)
    improved = True
    while improved:
        improved = False
        for module_name in problem.requirements:
            for option_attrs in _module_option_sets(problem, module_name):
                trial = hidden | option_attrs
                # Remove anything no longer needed once this option is in,
                # but keep the option itself so the swap can take effect.
                pruned = prune_solution(
                    problem, problem.make_solution(trial), protected=option_attrs
                )
                trial_hidden = set(pruned.hidden_attributes)
                trial_cost = _cost(problem, trial_hidden)
                if trial_cost + 1e-9 < best_cost:
                    hidden = trial_hidden
                    best_cost = trial_cost
                    improved = True
    return problem.make_solution(
        hidden,
        meta={**solution.meta, "local_search": "swapped", "cost": best_cost},
    )


def improve_solution(
    problem: SecureViewProblem,
    solution: SecureViewSolution,
    passes: Iterable[str] = ("prune", "swap"),
) -> SecureViewSolution:
    """Apply the requested improvement passes in order (never worsens cost)."""
    current = solution
    for pass_name in passes:
        if pass_name == "prune":
            current = prune_solution(problem, current)
        elif pass_name == "swap":
            current = swap_options(problem, current)
        else:
            raise ValueError(f"unknown local-search pass {pass_name!r}")
    if current.cost() > solution.cost() + 1e-9:  # pragma: no cover - defensive
        return solution
    return current


def solve_with_local_search(
    problem: SecureViewProblem,
    method: str = "auto",
    passes: Iterable[str] = ("prune", "swap"),
    seed: int | None = None,
    rng: random.Random | None = None,
    **kwargs,
) -> SecureViewSolution:
    """Run a base solver and post-process its solution with local search.

    ``seed``/``rng`` are forwarded to the base solver only when it takes
    them, so a deterministic base (e.g. ``greedy``) can still be combined
    with an engine-supplied seed.
    """
    # Local imports to avoid a cycle with the package __init__.
    from . import SOLVERS, filter_solver_kwargs, solve_secure_view

    target = SOLVERS.get(method, solve_secure_view)
    if seed is not None:
        kwargs.setdefault("seed", seed)
    if rng is not None:
        kwargs.setdefault("rng", rng)
    kwargs = filter_solver_kwargs(target, kwargs)
    base = solve_secure_view(problem, method=method, **kwargs)
    improved = improve_solution(problem, base, passes=passes)
    improved.meta.setdefault("base_method", method)
    improved.meta["base_cost"] = base.cost()
    problem.validate_solution(improved)
    return improved
