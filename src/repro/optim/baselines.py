"""Trivial baselines for the Secure-View problem.

None of these carry approximation guarantees; they exist to anchor the
benchmark tables the way system papers anchor theirs:

* :func:`hide_everything` — hide every hidable attribute (and privatize
  whatever that forces).  Always feasible when the instance is feasible at
  all, and an upper bound every algorithm should beat.
* :func:`hide_all_intermediate` — hide all intermediate (module-to-module)
  attributes; mirrors the folklore "hide the plumbing" policy and is not
  always feasible.
* :func:`random_feasible` — add random hidable attributes until every
  requirement is met; averaged over seeds it shows how much structure the
  LP-based algorithms actually exploit.
"""

from __future__ import annotations

import random

from ..core.secure_view import SecureViewProblem
from ..core.view import SecureViewSolution
from ..exceptions import InfeasibleError, SolverError

__all__ = ["hide_everything", "hide_all_intermediate", "random_feasible"]


def _finalize(
    problem: SecureViewProblem, hidden: set[str], method: str, **meta
) -> SecureViewSolution:
    privatized = problem.required_privatizations(hidden)
    if privatized and not problem.allow_privatization:
        raise SolverError(
            f"{method} hides attributes adjacent to public modules but "
            "privatization is disallowed"
        )
    solution = SecureViewSolution(
        problem.workflow,
        frozenset(hidden),
        privatized,
        meta={
            "method": method,
            "cost": problem.solution_cost(hidden, privatized),
            **meta,
        },
    )
    problem.validate_solution(solution)
    return solution


def hide_everything(problem: SecureViewProblem) -> SecureViewSolution:
    """Hide every hidable attribute."""
    hidden = set(problem.hidable_attributes)
    for module_name in problem.requirements:
        if not problem.requirement_satisfied(module_name, hidden):
            raise InfeasibleError(
                f"even hiding every hidable attribute does not satisfy "
                f"module {module_name!r}"
            )
    return _finalize(problem, hidden, "hide_everything")


def hide_all_intermediate(problem: SecureViewProblem) -> SecureViewSolution:
    """Hide every intermediate attribute (data passed between modules)."""
    workflow = problem.workflow
    hidden = set(workflow.intermediate_attributes) & set(problem.hidable_attributes)
    for module_name in problem.requirements:
        if not problem.requirement_satisfied(module_name, hidden):
            raise InfeasibleError(
                "hiding all intermediate attributes does not satisfy module "
                f"{module_name!r}"
            )
    return _finalize(problem, hidden, "hide_all_intermediate")


def random_feasible(
    problem: SecureViewProblem,
    seed: int | None = None,
    rng: random.Random | None = None,
) -> SecureViewSolution:
    """Add random hidable attributes until every requirement is satisfied.

    ``rng`` takes precedence over ``seed`` when both are given.
    """
    if rng is None:
        rng = random.Random(seed)
    remaining = list(problem.hidable_attributes)
    rng.shuffle(remaining)
    hidden: set[str] = set()

    def all_satisfied() -> bool:
        return all(
            problem.requirement_satisfied(module_name, hidden)
            for module_name in problem.requirements
        )

    while not all_satisfied():
        if not remaining:
            raise InfeasibleError(
                "exhausted hidable attributes without satisfying every module"
            )
        hidden.add(remaining.pop())
    # Drop attributes that are not needed (reverse scan keeps it deterministic
    # for a given seed).
    for name in sorted(hidden, key=lambda item: rng.random()):
        trial = hidden - {name}
        if all(
            problem.requirement_satisfied(module_name, trial)
            for module_name in problem.requirements
        ):
            hidden = trial
    return _finalize(problem, hidden, "random_feasible", seed=seed)
