"""Command-line interface: ``python -m repro.cli <command> ...``.

The CLI exposes the everyday operations a workflow owner would run:

* ``info``      — summarize a workflow or problem file (modules, attributes,
  data-sharing degree, requirement lists),
* ``solve``     — solve a Secure-View problem file with a registered solver
  (optionally with local-search post-processing and a Γ-privacy
  certificate) and print / save the solution,
* ``verify``    — brute-force check that a solution file really provides
  Γ-privacy (small instances only),
* ``attack``    — run the reconstruction attack against one module under a
  solution's view,
* ``generate``  — write a random or scientific-workflow-shaped problem file,
* ``compare``   — run several solvers on a problem file (through one shared
  :class:`~repro.engine.Planner`) and print the comparison table,
* ``sweep``     — run a (workflow × Γ × kind × solver × seed) grid from a
  JSON grid file, optionally in parallel (``--jobs``) and against a
  persistent derivation store (``--store``), emitting a JSON report,
* ``store``     — maintain a persistent derivation store directory
  (``store stats DIR``, ``store gc DIR --max-bytes N``),
* ``serve``     — run the long-lived solve service (threaded HTTP/JSON
  server speaking the versioned ``/v1`` API with one hot derivation
  cache, request coalescing, async jobs, background maintenance — store
  GC budget, cache TTLs, restart warm-up — and ``/v1/metrics``;
  SIGTERM/SIGINT drain in-flight work and exit 0),
* ``fleet``     — spawn and supervise N ``repro serve`` replicas sharing
  one store behind a health-aware ``/v1`` proxy front (budgeted respawn
  of dead replicas; ``repro fleet restart`` or SIGHUP rolling-restarts
  one replica at a time without failing requests),
* ``submit``    — send a problem or workflow file to a running service and
  print the solve record (``--async`` submits a job and returns its
  handle; ``--watch`` polls it to completion),
* ``engine``    — inspect the solver engine (``engine list-solvers``).

``solve``, ``compare`` and ``sweep`` all accept ``--store DIR``: a warm
store serves requirement derivations (module-granular), packed relations,
out-sets and whole solve results across runs and processes.

Solving goes through :mod:`repro.engine`; ``--solver`` accepts any name in
the registry (``repro engine list-solvers``).  All files are the JSON
documents produced by :mod:`repro.workloads.serialization`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .analysis import compare_solvers, format_records
from .core import is_gamma_private_workflow
from .core.attack import reconstruction_attack
from .engine import Planner, default_registry, run_sweep, spec_from_grid
from .exceptions import ProvenanceError
from .workloads import ScientificWorkflowConfig, random_problem, scientific_problem
from .workloads.serialization import (
    dump_problem,
    load_problem,
    solution_from_dict,
    solution_to_dict,
)

__all__ = ["build_parser", "main"]

#: Default directory for the persistent derivation store (gitignored).
DEFAULT_STORE_DIR = ".repro-store"


def _package_version() -> str:
    """Installed package version, falling back to the in-tree one."""
    try:
        from importlib.metadata import version

        return version("provenance-views")
    except Exception:  # not installed, or metadata backend quirks
        from . import __version__

        return __version__


def _cmd_info(args: argparse.Namespace) -> int:
    problem = load_problem(args.problem)
    workflow = problem.workflow
    print(f"workflow          : {workflow.name}")
    print(
        f"modules           : {len(workflow)} "
        f"({len(workflow.private_modules)} private, "
        f"{len(workflow.public_modules)} public)"
    )
    print(f"attributes        : {len(workflow.attribute_names)}")
    print(f"data sharing γ    : {workflow.data_sharing_degree()}")
    print(f"privacy target Γ  : {problem.gamma}")
    print(f"constraint kind   : {problem.constraint_kind}")
    print(f"l_max             : {problem.lmax}")
    for name, requirement in problem.requirements.items():
        print(f"  requirement[{name}]: {len(requirement)} option(s)")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    problem = load_problem(args.problem)
    planner = Planner.from_problem(problem, store=args.store or None)
    result = planner.solve(
        solver=args.solver or args.method,
        seed=args.seed,
        local_search=bool(args.local_search),
        verify=args.verify,
    )
    payload = solution_to_dict(result.solution)
    payload["solver"] = result.solver
    payload["cache_stats"] = result.cache_stats.as_dict()
    if args.store:
        # Surface the warm-store win directly: how many artifacts this
        # solve was served from disk instead of deriving.
        payload["store"] = args.store
        payload["store_hits"] = result.cache_stats.store_hits
    if result.guarantee:
        payload["guarantee"] = result.guarantee
    if result.certificate is not None:
        payload["certificate"] = result.certificate.as_dict()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    print(json.dumps(payload, indent=2, sort_keys=True))
    if result.certificate is not None and not result.certificate.ok:
        return 1
    return 0


def _cmd_engine_list_solvers(args: argparse.Namespace) -> int:
    registry = default_registry()
    if args.problem:
        problem = load_problem(args.problem)
        specs = registry.applicable(problem)
        auto = registry.select(problem)
        caption = (
            f"solvers applicable to {args.problem} "
            f"(auto would pick {auto.name!r})"
        )
        records = [
            {**spec.as_record(), "guarantee": spec.guarantee_for(problem)}
            for spec in specs
        ]
    else:
        specs = registry.specs()
        caption = "registered Secure-View solvers (auto-selection order)"
        records = [spec.as_record() for spec in specs]
    print(
        format_records(
            records,
            columns=[
                "name",
                "constraints",
                "scope",
                "randomized",
                "exact",
                "baseline",
                "guarantee",
            ],
            caption=caption,
        )
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    problem = load_problem(args.problem)
    with open(args.solution, "r", encoding="utf-8") as handle:
        solution = solution_from_dict(problem.workflow, json.load(handle))
    feasible = problem.is_feasible(
        solution.hidden_attributes, solution.privatized_modules
    )
    print(f"requirement-feasible: {feasible}")
    if args.brute_force:
        private = is_gamma_private_workflow(
            problem.workflow,
            solution.visible_attributes,
            problem.gamma,
            hidden_public_modules=solution.privatized_modules,
        )
        print(f"brute-force Γ-private: {private}")
        return 0 if (feasible and private) else 1
    return 0 if feasible else 1


def _cmd_attack(args: argparse.Namespace) -> int:
    problem = load_problem(args.problem)
    with open(args.solution, "r", encoding="utf-8") as handle:
        solution = solution_from_dict(problem.workflow, json.load(handle))
    report = reconstruction_attack(
        problem.workflow,
        args.module,
        solution.visible_attributes,
        hidden_public_modules=solution.privatized_modules,
        gamma_target=problem.gamma,
    )
    print(
        format_records(
            report.as_records(),
            caption=(
                f"reconstruction attack on {args.module!r}: achieved Γ = "
                f"{report.achieved_gamma}, target Γ = {problem.gamma}"
            ),
        )
    )
    return 1 if report.breaches_target else 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.shape == "scientific":
        problem = scientific_problem(
            ScientificWorkflowConfig(
                n_modules=args.modules,
                seed=args.seed,
                public_fraction=args.public_fraction,
            ),
            kind=args.kind,
            gamma=args.gamma,
        )
    else:
        problem = random_problem(
            n_modules=args.modules,
            kind=args.kind,
            seed=args.seed,
            gamma=args.gamma,
            topology=args.shape,
            private_fraction=1.0 - args.public_fraction,
        )
    dump_problem(problem, args.output)
    print(
        f"wrote {args.output}: {len(problem.workflow)} modules, "
        f"{len(problem.workflow.attribute_names)} attributes, kind={args.kind}"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    problem = load_problem(args.problem)
    records = compare_solvers(
        problem,
        args.methods,
        seeds=tuple(range(args.seeds)),
        include_exact=not args.no_exact,
        n_jobs=args.jobs,
        store=args.store or None,
    )
    print(
        format_records(
            records,
            columns=["method", "cost", "ratio", "seconds"],
            caption=f"solver comparison on {args.problem}",
        )
    )
    return 0


def _open_store(directory: str):
    import os

    if not os.path.isdir(directory):
        print(f"error: {directory} is not a store directory", file=sys.stderr)
        return None
    from .engine import DerivationStore

    return DerivationStore(directory)


def _cmd_store_stats(args: argparse.Namespace) -> int:
    store = _open_store(args.dir)
    if store is None:
        return 1
    print(json.dumps(store.disk_stats(), indent=2, sort_keys=True))
    return 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    store = _open_store(args.dir)
    if store is None:
        return 1
    try:
        summary = store.gc(args.max_bytes)
    except ValueError as exc:  # e.g. a negative --max-bytes
        print(f"error: {exc}", file=sys.stderr)
        return 1
    summary["root"] = args.dir
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _cmd_store_migrate(args: argparse.Namespace) -> int:
    store = _open_store(args.dir)
    if store is None:
        return 1
    summary = store.migrate()
    summary["root"] = args.dir
    print(json.dumps(summary, indent=2, sort_keys=True))
    if summary["failed"]:
        print(
            f"warning: {summary['failed']} artifact(s) could not be migrated "
            "(left in place; they degrade to misses)",
            file=sys.stderr,
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import os

    try:
        with open(args.grid, "r", encoding="utf-8") as handle:
            grid = json.load(handle)
        spec = spec_from_grid(
            grid, base_dir=os.path.dirname(os.path.abspath(args.grid))
        )
    except ValueError as exc:  # malformed JSON or an empty/invalid grid
        print(f"error: invalid grid file {args.grid}: {exc}", file=sys.stderr)
        return 1
    report = run_sweep(
        spec,
        n_jobs=args.jobs,
        store=args.store or None,
        reuse_results=not args.fresh_results,
    )
    payload = report.as_dict()
    payload["grid"] = os.path.basename(args.grid)
    if args.store:
        payload["store"] = args.store
    text = json.dumps(payload, indent=2, sort_keys=True, default=str)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    print(text)
    if report.errors and not args.allow_errors:
        failed = [record["index"] for record in report.records if "error" in record]
        print(
            f"error: {report.errors} of {len(report.records)} sweep cell(s) "
            f"failed (indices {failed}); pass --allow-errors to tolerate "
            "partial failures",
            file=sys.stderr,
        )
        return 1
    if report.records and report.errors == len(report.records):
        # --allow-errors tolerates *partial* failure; a sweep with zero
        # usable records is still a failed sweep.
        print(
            f"error: all {report.errors} sweep cell(s) failed",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .service import ServiceServer, SolveService

    # Cross-flag validation argparse cannot express: maintenance against a
    # store needs a store to maintain.  Exit 2 like any other usage error.
    if not args.store and args.store_max_bytes is not None:
        print("error: --store-max-bytes requires --store", file=sys.stderr)
        return 2
    if not args.store and args.warmup:
        print(
            "error: --warmup requires --store (nothing to warm from)", file=sys.stderr
        )
        return 2
    if args.exec_workers is not None and args.exec_mode != "processes":
        print(
            "error: --exec-workers requires --exec processes",
            file=sys.stderr,
        )
        return 2
    service = SolveService(
        store=args.store or None,
        workers=args.workers,
        default_timeout=args.timeout if args.timeout > 0 else None,
        result_cache_size=args.result_cache_size,
        result_ttl=args.result_ttl,
        job_ttl=args.job_ttl,
        max_jobs=args.max_jobs,
        store_max_bytes=args.store_max_bytes,
        warmup=args.warmup,
        maintenance_interval=args.maintenance_interval or None,
        exec_mode=args.exec_mode,
        exec_workers=args.exec_workers,
        replica_id=args.replica_id or None,
    )
    try:
        server = ServiceServer(
            service, host=args.host, port=args.port, quiet=args.quiet
        )
    except OSError as exc:  # port in use, privileged bind, bad host ...
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1

    stopping = threading.Event()

    def _graceful(signum, frame) -> None:
        # serve_forever blocks this (main) thread, and httpd.shutdown must
        # not be called from the serve thread — hand the drain to a helper.
        # A second signal skips the drain: the operator asked twice.
        if stopping.is_set():
            import os

            print(
                "repro serve: second signal, exiting without draining",
                file=sys.stderr,
                flush=True,
            )
            os._exit(130)
        stopping.set()
        threading.Thread(target=server.stop, daemon=True).start()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    exec_note = (
        f"exec=processes:{service.exec_tier.workers}"
        if service.exec_tier is not None
        else "exec=threads"
    )
    replica_note = f", replica={args.replica_id}" if args.replica_id else ""
    print(
        f"repro serve: listening on {server.url} "
        f"(workers={args.workers}, {exec_note}, "
        f"store={args.store or 'none'}{replica_note})",
        flush=True,
    )
    server.serve_forever()  # returns once a signal (or /shutdown) drains us
    metrics = service.metrics()
    print(
        "repro serve: drained and stopped after "
        f"{metrics['requests']['solve']} solve / "
        f"{metrics['requests']['sweep']} sweep / "
        f"{metrics['requests']['jobs']} job request(s), "
        f"{metrics['coalesced']} coalesced",
        flush=True,
    )
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    if getattr(args, "fleet_command", None) == "restart":
        return _cmd_fleet_restart(args)
    import signal
    import threading

    from .service import FleetSupervisor

    if not args.store and args.warmup:
        print(
            "error: --warmup requires --store (nothing to warm from)", file=sys.stderr
        )
        return 2
    if args.exec_workers is not None and args.exec_mode != "processes":
        print(
            "error: --exec-workers requires --exec processes",
            file=sys.stderr,
        )
        return 2
    # Per-replica configuration rides along verbatim on every spawn (and
    # respawn), so a rolling restart brings a replica back identically.
    serve_argv: list[str] = ["--workers", str(args.workers)]
    serve_argv += ["--exec", args.exec_mode]
    if args.exec_workers is not None:
        serve_argv += ["--exec-workers", str(args.exec_workers)]
    if args.timeout is not None:
        serve_argv += ["--timeout", str(args.timeout)]
    if args.result_cache_size is not None:
        serve_argv += ["--result-cache-size", str(args.result_cache_size)]
    if args.warmup:
        serve_argv += ["--warmup", str(args.warmup)]
    if args.maintenance_interval is not None:
        serve_argv += ["--maintenance-interval", str(args.maintenance_interval)]
    supervisor = FleetSupervisor(
        replicas=args.replicas,
        store=args.store or None,
        host=args.host,
        port=args.port,
        serve_argv=serve_argv,
        restart_budget=args.restart_budget,
        quiet=args.quiet,
    )
    try:
        supervisor.start()
    except (RuntimeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    stopping = threading.Event()

    def _graceful(signum, frame) -> None:
        if stopping.is_set():
            import os

            print(
                "repro fleet: second signal, exiting without draining",
                file=sys.stderr,
                flush=True,
            )
            os._exit(130)
        stopping.set()
        threading.Thread(target=supervisor.stop, daemon=True).start()

    def _rolling(signum, frame) -> None:
        # SIGHUP: the operator's "roll the fleet" — replica at a time,
        # never failing a request.
        threading.Thread(target=supervisor.rolling_restart, daemon=True).start()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    signal.signal(signal.SIGHUP, _rolling)
    print(
        f"repro fleet: listening on {supervisor.url} "
        f"(replicas={args.replicas}, workers={args.workers}/replica, "
        f"store={args.store or 'none'})",
        flush=True,
    )
    while supervisor._thread is not None and supervisor._thread.is_alive():
        supervisor._thread.join(timeout=0.5)
    status = supervisor.status()
    respawns = sum(entry["restarts"] for entry in status["replicas"])
    print(
        f"repro fleet: drained and stopped "
        f"({status['rolling_restarts']} rolling restart(s), "
        f"{respawns} respawn(s))",
        flush=True,
    )
    return 0


def _cmd_fleet_restart(args: argparse.Namespace) -> int:
    """``repro fleet restart``: ask a running fleet front to roll."""
    from .service import ServiceClient, ServiceClientError

    client = ServiceClient(args.url, timeout=args.timeout or 300.0)
    try:
        answer = client.request("POST", "/fleet/restart", {})
    except ServiceClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(answer, indent=2, sort_keys=True, default=str))
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import ServiceClient, ServiceClientError

    with open(args.file, "r", encoding="utf-8") as handle:
        payload = json.load(handle)

    # Typed solve arguments for ServiceClient.solve — the client owns the
    # wire body now (hand-built request dicts are the deprecated path).
    solve_kwargs: dict = {
        "solver": args.solver,
        "seed": args.seed,
        "verify": args.verify,
    }
    if args.timeout:
        solve_kwargs["timeout"] = args.timeout
    if "modules" in payload:  # a bare workflow file: Γ/kind come from flags
        solve_kwargs["workflow"] = payload
        solve_kwargs["gamma"] = args.gamma if args.gamma is not None else 2
        solve_kwargs["kind"] = args.kind
    elif args.gamma is not None:
        # A problem file re-targeted at an explicit Γ: submit its workflow
        # and let the service derive requirements at (--gamma, --kind).
        solve_kwargs["workflow"] = payload.get("workflow", payload)
        solve_kwargs["gamma"] = args.gamma
        solve_kwargs["kind"] = args.kind
    else:
        solve_kwargs["problem"] = payload

    # The socket deadline must outlast the server-side wait deadline, or
    # the client's own timeout races (and usually beats) the server's 504.
    # Without an explicit --timeout the server's deadline is unknown (its
    # --timeout default is 300 but operators can raise it), so allow a
    # generous hour rather than baking in someone else's default.
    client_timeout = (args.timeout + 30.0) if args.timeout else 3600.0
    client = ServiceClient(args.url, timeout=client_timeout)
    if args.async_job or args.watch:
        return _submit_async(args, client, solve_kwargs)
    try:
        record = client.solve(**solve_kwargs)
    except ServiceClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(record, indent=2, sort_keys=True, default=str))
    return 0


def _submit_async(args: argparse.Namespace, client, solve_kwargs: dict) -> int:
    """``repro submit --async [--watch]``: job handle now, records later."""
    from .service import ServiceClientError

    # The same typed route as the blocking path: sweep_async builds the
    # one-cell grid body.  A one-element seed axis even when the seed is
    # null — the grid default would otherwise silently pin seed 0.
    grid_kwargs: dict = {
        "solvers": [solve_kwargs["solver"]],
        "seeds": [solve_kwargs["seed"]],
        "verify": solve_kwargs["verify"],
    }
    if "timeout" in solve_kwargs:
        grid_kwargs["timeout"] = solve_kwargs["timeout"]
    if "workflow" in solve_kwargs:
        grid_kwargs["workflows"] = [solve_kwargs["workflow"]]
        grid_kwargs["gammas"] = [solve_kwargs["gamma"]]
        grid_kwargs["kinds"] = [solve_kwargs["kind"]]
    else:
        grid_kwargs["problems"] = [solve_kwargs["problem"]]
    try:
        handle = client.sweep_async(**grid_kwargs)
        if not args.watch:
            print(json.dumps(handle, indent=2, sort_keys=True, default=str))
            return 0

        last_seen = {"progress": -1}

        def _progress(status: dict) -> None:
            landed = status.get("completed", 0) + status.get("failed", 0)
            if landed != last_seen["progress"]:
                last_seen["progress"] = landed
                print(
                    f"repro submit: job {handle['job']} {status.get('state')} "
                    f"{landed}/{status.get('cells')} cell(s)",
                    file=sys.stderr,
                    flush=True,
                )

        final = client.wait_job(
            handle["job"],
            timeout=args.timeout or None,
            on_progress=_progress,
        )
    except ServiceClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(final, indent=2, sort_keys=True, default=str))
    if final.get("state") != "done" or final.get("failed", 0):
        return 1
    return 0


def _arg_positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (usage error — exit 2 — otherwise)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _arg_nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _arg_positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not value > 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _arg_nonnegative_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Secure provenance views for module privacy (PODS 2011 reproduction)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {_package_version()}",
        help="print the package version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="summarize a problem file")
    info.add_argument("problem")
    info.set_defaults(func=_cmd_info)

    solver_names = ["auto", *default_registry().names()]
    solve = sub.add_parser("solve", help="solve a Secure-View problem file")
    solve.add_argument("problem")
    solve.add_argument(
        "--solver",
        default="",
        choices=["", *solver_names],
        help="registry solver name (see `repro engine list-solvers`)",
    )
    solve.add_argument(
        "--method",
        default="auto",
        choices=solver_names,
        help="deprecated alias for --solver",
    )
    solve.add_argument("--seed", type=int, default=None)
    solve.add_argument("--local-search", action="store_true")
    solve.add_argument(
        "--verify",
        action="store_true",
        help="attach a brute-force Γ-privacy certificate (small instances)",
    )
    solve.add_argument(
        "--store",
        default="",
        help=(
            "persistent derivation store directory; a warm store skips "
            f"derivation and reports store_hits (e.g. {DEFAULT_STORE_DIR})"
        ),
    )
    solve.add_argument("--output", default="")
    solve.set_defaults(func=_cmd_solve)

    engine = sub.add_parser("engine", help="inspect the solver engine")
    engine_sub = engine.add_subparsers(dest="engine_command", required=True)
    list_solvers = engine_sub.add_parser(
        "list-solvers", help="list registered solvers and their metadata"
    )
    list_solvers.add_argument(
        "--problem",
        default="",
        help="restrict to solvers applicable to this problem file",
    )
    list_solvers.set_defaults(func=_cmd_engine_list_solvers)

    verify = sub.add_parser("verify", help="check a solution file against a problem")
    verify.add_argument("problem")
    verify.add_argument("solution")
    verify.add_argument("--brute-force", action="store_true")
    verify.set_defaults(func=_cmd_verify)

    attack = sub.add_parser("attack", help="reconstruction attack against one module")
    attack.add_argument("problem")
    attack.add_argument("solution")
    attack.add_argument("module")
    attack.set_defaults(func=_cmd_attack)

    generate = sub.add_parser("generate", help="generate a synthetic problem file")
    generate.add_argument("output")
    generate.add_argument("--modules", type=int, default=12)
    generate.add_argument(
        "--kind", default="cardinality", choices=["cardinality", "set"]
    )
    generate.add_argument(
        "--shape",
        default="random",
        choices=["random", "chain", "layered", "scientific"],
    )
    generate.add_argument("--gamma", type=int, default=2)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--public-fraction", type=float, default=0.0)
    generate.set_defaults(func=_cmd_generate)

    compare = sub.add_parser("compare", help="compare solvers on a problem file")
    compare.add_argument("problem")
    compare.add_argument("--methods", nargs="+", default=["auto", "greedy"])
    compare.add_argument("--seeds", type=int, default=1)
    compare.add_argument("--no-exact", action="store_true")
    compare.add_argument(
        "--jobs", type=int, default=1, help="worker processes for the comparison"
    )
    compare.add_argument(
        "--store",
        default="",
        help=f"persistent derivation store directory (e.g. {DEFAULT_STORE_DIR})",
    )
    compare.set_defaults(func=_cmd_compare)

    store = sub.add_parser(
        "store",
        help="inspect or prune a persistent derivation store directory",
        description=(
            "Maintenance for long-lived .repro-store/ directories: 'stats' "
            "summarizes bytes/files per artifact kind, per tier (workflow "
            "vs shared module tier) and per on-disk format version; 'gc' "
            "prunes least-recently-used artifacts down to a byte budget, "
            "never touching in-flight temp files; 'migrate' upgrades a v1 "
            "(all-JSON) store to format v2 with binary memory-mappable "
            "pack/relation sidecars, atomically per artifact.  Artifacts "
            "are re-derivable caches, so gc never loses information."
        ),
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_stats = store_sub.add_parser(
        "stats", help="summarize what a store directory holds"
    )
    store_stats.add_argument("dir")
    store_stats.set_defaults(func=_cmd_store_stats)
    store_migrate = store_sub.add_parser(
        "migrate",
        help="upgrade a v1 store to format v2 (binary sidecars) in place",
    )
    store_migrate.add_argument("dir")
    store_migrate.set_defaults(func=_cmd_store_migrate)
    store_gc = store_sub.add_parser(
        "gc", help="prune a store to a byte budget (LRU by mtime)"
    )
    store_gc.add_argument("dir")
    store_gc.add_argument(
        "--max-bytes",
        type=int,
        required=True,
        help="target size; oldest-touched artifacts are deleted first",
    )
    store_gc.set_defaults(func=_cmd_store_gc)

    sweep = sub.add_parser(
        "sweep",
        help="run a solve grid from a JSON grid file, optionally in parallel",
        description=(
            "The grid file lists 'workflows' (workflow or problem files swept "
            "across the 'gammas'/'kinds' axes) and/or 'problems' (problem files "
            "used with their baked Γ/kind), plus 'solvers' and 'seeds'.  With "
            "--store, derivations and solve results persist across runs: a "
            "repeated sweep against a warm store performs zero requirement "
            "derivations (the report's stats prove it)."
        ),
    )
    sweep.add_argument("grid", help="JSON grid file (workflows/gammas/solvers/seeds)")
    sweep.add_argument(
        "--jobs", type=int, default=1, help="worker processes (0 = auto)"
    )
    sweep.add_argument(
        "--store",
        default="",
        help=f"persistent derivation store directory (e.g. {DEFAULT_STORE_DIR})",
    )
    sweep.add_argument(
        "--fresh-results",
        action="store_true",
        help="re-run solvers even when the store holds the cell's result",
    )
    sweep.add_argument(
        "--allow-errors",
        action="store_true",
        help="exit 0 even when some cells produced error records",
    )
    sweep.add_argument("--output", default="", help="also write the JSON report here")
    sweep.set_defaults(func=_cmd_sweep)

    serve = sub.add_parser(
        "serve",
        help="run the long-lived solve service (HTTP/JSON)",
        description=(
            "A threaded HTTP server holding one hot derivation cache (and "
            "optionally a persistent store) across requests.  Identical "
            "concurrent requests coalesce into one computation; GET "
            "/metrics exposes the counters.  SIGTERM/SIGINT (and POST "
            "/shutdown) drain in-flight work and exit 0."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080, help="0 picks a free port")
    serve.add_argument(
        "--workers", type=_arg_positive_int, default=4, help="solve worker threads"
    )
    serve.add_argument(
        "--exec",
        dest="exec_mode",
        choices=("threads", "processes"),
        default="threads",
        help=(
            "execution tier for leader computations: 'threads' (in-process, "
            "GIL-bound) or 'processes' (persistent worker processes; K "
            "distinct concurrent solves use K cores; default: threads)"
        ),
    )
    serve.add_argument(
        "--exec-workers",
        type=_arg_positive_int,
        default=None,
        help=(
            "worker processes for --exec processes (default: --workers); "
            "each keeps a hot cache and its own store attachment"
        ),
    )
    serve.add_argument(
        "--store",
        default="",
        help=f"persistent derivation store directory (e.g. {DEFAULT_STORE_DIR})",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="default per-request deadline in seconds (0 = unbounded)",
    )
    serve.add_argument(
        "--result-cache-size",
        type=_arg_nonnegative_int,
        default=256,
        help=(
            "bound on the in-memory completed-result cache (default 256; "
            "0 disables it so repeats read the store's result tier — what "
            "a fleet measuring cross-replica reuse wants)"
        ),
    )
    serve.add_argument(
        "--result-ttl",
        type=_arg_positive_float,
        default=None,
        help=(
            "seconds a cached result/planner stays valid; expired by the "
            "maintenance pass (default: no TTL, size bound only)"
        ),
    )
    serve.add_argument(
        "--job-ttl",
        type=_arg_positive_float,
        default=600.0,
        help="seconds a *finished* async job stays queryable (default 600)",
    )
    serve.add_argument(
        "--max-jobs",
        type=_arg_positive_int,
        default=256,
        help="bound on tracked async jobs; full of active jobs answers 429",
    )
    serve.add_argument(
        "--store-max-bytes",
        type=_arg_nonnegative_int,
        default=None,
        help=(
            "byte budget the maintenance pass GCs the store down to "
            "(requires --store; default: no GC)"
        ),
    )
    serve.add_argument(
        "--warmup",
        type=_arg_nonnegative_int,
        default=0,
        help=(
            "re-compile the N most-requested workflow fingerprints from the "
            "store at start-up (requires --store; default 0)"
        ),
    )
    serve.add_argument(
        "--maintenance-interval",
        type=_arg_nonnegative_float,
        default=30.0,
        help=(
            "seconds between background maintenance passes, jittered ±10%% "
            "(0 disables the maintenance thread; default 30)"
        ),
    )
    serve.add_argument(
        "--quiet",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="suppress per-request access logging",
    )
    serve.add_argument(
        "--replica-id",
        default="",
        help=(
            "identity of this replica in a fleet (repro fleet passes r0, "
            "r1, ...); reported in /v1/healthz, /v1/metrics, /v1/version"
        ),
    )
    serve.set_defaults(func=_cmd_serve)

    fleet = sub.add_parser(
        "fleet",
        help="run N serve replicas on one store behind a /v1 proxy front",
        description=(
            "Spawns and supervises N `repro serve` processes sharing one "
            "derivation store, and proxies /v1 traffic across whichever "
            "replicas answer healthz 200.  A dead replica is respawned up "
            "to --restart-budget times; `repro fleet restart` (or SIGHUP, "
            "or POST /v1/fleet/restart) rolling-restarts one replica at a "
            "time — drain, respawn, readmit — without failing a request.  "
            "SIGTERM/SIGINT drain every replica and exit 0."
        ),
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command")
    fleet_restart = fleet_sub.add_parser(
        "restart", help="rolling-restart a running fleet (POST /v1/fleet/restart)"
    )
    fleet_restart.add_argument(
        "--url", default="http://127.0.0.1:8080", help="fleet front endpoint"
    )
    fleet_restart.add_argument(
        "--timeout", type=float, default=300.0, help="request deadline in seconds"
    )
    fleet.add_argument("--host", default="127.0.0.1")
    fleet.add_argument(
        "--port", type=int, default=8080, help="front port (0 picks a free port)"
    )
    fleet.add_argument(
        "--replicas",
        type=_arg_positive_int,
        default=2,
        help="serve replica processes to spawn (default 2)",
    )
    fleet.add_argument(
        "--store",
        default="",
        help=(
            "store directory every replica attaches — the shared result "
            f"tier is what makes cross-replica reuse work (e.g. {DEFAULT_STORE_DIR})"
        ),
    )
    fleet.add_argument(
        "--workers",
        type=_arg_positive_int,
        default=4,
        help="solve worker threads per replica",
    )
    fleet.add_argument(
        "--exec",
        dest="exec_mode",
        choices=("threads", "processes"),
        default="threads",
        help="execution tier inside each replica (see repro serve --exec)",
    )
    fleet.add_argument(
        "--exec-workers",
        type=_arg_positive_int,
        default=None,
        help="worker processes per replica for --exec processes",
    )
    fleet.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-request deadline passed to every replica",
    )
    fleet.add_argument(
        "--result-cache-size",
        type=_arg_nonnegative_int,
        default=None,
        help="per-replica in-memory result cache bound (0 disables)",
    )
    fleet.add_argument(
        "--warmup",
        type=_arg_nonnegative_int,
        default=0,
        help=(
            "each replica preloads the N most-popular workflows from the "
            "shared store's meta tier at (re)start (requires --store)"
        ),
    )
    fleet.add_argument(
        "--maintenance-interval",
        type=_arg_nonnegative_float,
        default=None,
        help="per-replica maintenance interval (passed through to serve)",
    )
    fleet.add_argument(
        "--restart-budget",
        type=_arg_nonnegative_int,
        default=3,
        help="unexpected-death respawns allowed per replica (default 3)",
    )
    fleet.add_argument(
        "--quiet",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="suppress replica stdout forwarding",
    )
    fleet.set_defaults(func=_cmd_fleet)

    submit = sub.add_parser(
        "submit",
        help="submit a problem or workflow file to a running solve service",
        description=(
            "Sends one solve request to `repro serve`.  Problem files are "
            "submitted with their baked Γ/kind/requirements; workflow files "
            "(or problem files with an explicit --gamma) derive requirement "
            "lists server-side, where they are cached and coalesced across "
            "clients."
        ),
    )
    submit.add_argument("file", help="problem or workflow JSON file")
    submit.add_argument(
        "--url", default="http://127.0.0.1:8080", help="service endpoint"
    )
    submit.add_argument("--solver", default="auto")
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument(
        "--gamma",
        type=int,
        default=None,
        help="derive at this Γ server-side (required meaning for workflow files)",
    )
    submit.add_argument("--kind", default="set", choices=["set", "cardinality"])
    submit.add_argument("--verify", action="store_true")
    submit.add_argument(
        "--timeout", type=float, default=0.0, help="request deadline in seconds"
    )
    submit.add_argument(
        "--async",
        dest="async_job",
        action="store_true",
        help=(
            "submit as an asynchronous job (POST /jobs/sweep) and print the "
            "job handle instead of waiting for the record"
        ),
    )
    submit.add_argument(
        "--watch",
        action="store_true",
        help=(
            "with --async (implied): poll the job, stream progress to "
            "stderr, print the final status; exit 1 on failed cells"
        ),
    )
    submit.set_defaults(func=_cmd_submit)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits on --help/--version (code 0) and on unknown or
        # malformed subcommands (code 2, after printing usage to stderr);
        # surface that as a return code so embedding callers never see the
        # exception.
        return int(exc.code or 0)
    try:
        return args.func(args)
    except (ProvenanceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
