"""A library of finite-domain module functions.

The paper's examples are built from boolean functions spanning the whole
spectrum the analysis cares about:

* **constant** functions (the problematic public module ``m'`` of Example 7),
* **one-one / invertible** functions (identity, bit reversal, XOR masks,
  random permutations — Examples 6 and 7, Proposition 2),
* **lossy** functions (AND/OR gates, majority, parity, the Figure-1 module).

Each factory returns a ready :class:`repro.core.Module` over boolean
attributes; costs default to 1 and can be overridden per attribute.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from ..core.attributes import Attribute, boolean_attributes
from ..core.module import Module
from ..exceptions import SchemaError

__all__ = [
    "make_attributes",
    "identity_module",
    "bit_reversal_module",
    "xor_mask_module",
    "random_permutation_module",
    "constant_module",
    "and_module",
    "or_module",
    "parity_module",
    "majority_module",
    "threshold_module",
    "figure1_m1_module",
    "full_adder_module",
    "projection_module",
    "mux_module",
]


def make_attributes(
    names: Sequence[str], costs: Mapping[str, float] | float | None = None
) -> list[Attribute]:
    """Boolean attributes with optional costs (thin re-export for workloads)."""
    return boolean_attributes(names, costs)


def _bits(inputs: Mapping[str, int], names: Sequence[str]) -> list[int]:
    return [int(inputs[name]) for name in names]


# ---------------------------------------------------------------------------
# One-one / invertible functions
# ---------------------------------------------------------------------------

def identity_module(
    name: str,
    input_names: Sequence[str],
    output_names: Sequence[str],
    private: bool = True,
    costs: Mapping[str, float] | float | None = None,
) -> Module:
    """The identity function: output bit i equals input bit i."""
    if len(input_names) != len(output_names):
        raise SchemaError("identity_module needs equally many inputs and outputs")
    ins = make_attributes(input_names, costs)
    outs = make_attributes(output_names, costs)

    def function(x: Mapping[str, int]) -> dict[str, int]:
        return {out: x[inp] for inp, out in zip(input_names, output_names)}

    return Module(name, ins, outs, function, private=private)


def bit_reversal_module(
    name: str,
    input_names: Sequence[str],
    output_names: Sequence[str],
    private: bool = True,
    costs: Mapping[str, float] | float | None = None,
) -> Module:
    """Output bit i is the complement of input bit i (a one-one function).

    This is the second module of the Proposition-2 chain ("reverses the
    values of its k inputs").
    """
    if len(input_names) != len(output_names):
        raise SchemaError("bit_reversal_module needs equally many inputs and outputs")
    ins = make_attributes(input_names, costs)
    outs = make_attributes(output_names, costs)

    def function(x: Mapping[str, int]) -> dict[str, int]:
        return {out: 1 - x[inp] for inp, out in zip(input_names, output_names)}

    return Module(name, ins, outs, function, private=private)


def xor_mask_module(
    name: str,
    input_names: Sequence[str],
    output_names: Sequence[str],
    mask: Sequence[int],
    private: bool = True,
    costs: Mapping[str, float] | float | None = None,
) -> Module:
    """Output bit i is input bit i XOR mask[i] (invertible for any mask)."""
    if not (len(input_names) == len(output_names) == len(mask)):
        raise SchemaError(
            "xor_mask_module needs inputs, outputs and mask of equal length"
        )
    ins = make_attributes(input_names, costs)
    outs = make_attributes(output_names, costs)
    mask = [int(bit) & 1 for bit in mask]

    def function(x: Mapping[str, int]) -> dict[str, int]:
        return {
            out: x[inp] ^ bit
            for inp, out, bit in zip(input_names, output_names, mask)
        }

    return Module(name, ins, outs, function, private=private)


def random_permutation_module(
    name: str,
    input_names: Sequence[str],
    output_names: Sequence[str],
    seed: int | None = None,
    private: bool = True,
    costs: Mapping[str, float] | float | None = None,
) -> Module:
    """A random bijection on the boolean cube (a generic one-one module)."""
    if len(input_names) != len(output_names):
        raise SchemaError(
            "random_permutation_module needs equally many inputs and outputs"
        )
    k = len(input_names)
    rng = random.Random(seed)
    codes = list(range(2**k))
    shuffled = codes[:]
    rng.shuffle(shuffled)
    table = dict(zip(codes, shuffled))
    ins = make_attributes(input_names, costs)
    outs = make_attributes(output_names, costs)

    def function(x: Mapping[str, int]) -> dict[str, int]:
        code = 0
        for bit_index, inp in enumerate(input_names):
            code |= (x[inp] & 1) << bit_index
        image = table[code]
        return {
            out: (image >> bit_index) & 1
            for bit_index, out in enumerate(output_names)
        }

    return Module(name, ins, outs, function, private=private)


# ---------------------------------------------------------------------------
# Constant and lossy functions
# ---------------------------------------------------------------------------

def constant_module(
    name: str,
    input_names: Sequence[str],
    output_names: Sequence[str],
    value: int = 0,
    private: bool = False,
    costs: Mapping[str, float] | float | None = None,
) -> Module:
    """A constant function (every input maps to the same output tuple).

    Example 7 uses a public constant module feeding a private module to show
    standalone guarantees do not compose next to public modules.
    """
    ins = make_attributes(input_names, costs)
    outs = make_attributes(output_names, costs)
    value = int(value) & 1

    def function(x: Mapping[str, int]) -> dict[str, int]:
        return {out: value for out in output_names}

    return Module(name, ins, outs, function, private=private)


def and_module(
    name: str,
    input_names: Sequence[str],
    output_name: str,
    private: bool = True,
    costs: Mapping[str, float] | float | None = None,
) -> Module:
    """Single-output AND of all inputs (the Theorem-1 construction's core)."""
    ins = make_attributes(input_names, costs)
    outs = make_attributes([output_name], costs)

    def function(x: Mapping[str, int]) -> dict[str, int]:
        result = 1
        for bit in _bits(x, input_names):
            result &= bit
        return {output_name: result}

    return Module(name, ins, outs, function, private=private)


def or_module(
    name: str,
    input_names: Sequence[str],
    output_name: str,
    private: bool = True,
    costs: Mapping[str, float] | float | None = None,
) -> Module:
    """Single-output OR of all inputs."""
    ins = make_attributes(input_names, costs)
    outs = make_attributes([output_name], costs)

    def function(x: Mapping[str, int]) -> dict[str, int]:
        result = 0
        for bit in _bits(x, input_names):
            result |= bit
        return {output_name: result}

    return Module(name, ins, outs, function, private=private)


def parity_module(
    name: str,
    input_names: Sequence[str],
    output_name: str,
    private: bool = True,
    costs: Mapping[str, float] | float | None = None,
) -> Module:
    """Single-output XOR (parity) of all inputs."""
    ins = make_attributes(input_names, costs)
    outs = make_attributes([output_name], costs)

    def function(x: Mapping[str, int]) -> dict[str, int]:
        result = 0
        for bit in _bits(x, input_names):
            result ^= bit
        return {output_name: result}

    return Module(name, ins, outs, function, private=private)


def threshold_module(
    name: str,
    input_names: Sequence[str],
    output_name: str,
    threshold: int,
    private: bool = True,
    costs: Mapping[str, float] | float | None = None,
) -> Module:
    """Output 1 iff at least ``threshold`` inputs are 1."""
    ins = make_attributes(input_names, costs)
    outs = make_attributes([output_name], costs)

    def function(x: Mapping[str, int]) -> dict[str, int]:
        return {output_name: 1 if sum(_bits(x, input_names)) >= threshold else 0}

    return Module(name, ins, outs, function, private=private)


def majority_module(
    name: str,
    input_names: Sequence[str],
    output_name: str,
    private: bool = True,
    costs: Mapping[str, float] | float | None = None,
) -> Module:
    """Majority of 2k inputs (Example 6: output 1 iff at least k inputs are 1)."""
    k = len(input_names)
    return threshold_module(
        name,
        input_names,
        output_name,
        threshold=(k + 1) // 2,
        private=private,
        costs=costs,
    )


def figure1_m1_module(
    name: str = "m1",
    input_names: Sequence[str] = ("a1", "a2"),
    output_names: Sequence[str] = ("a3", "a4", "a5"),
    private: bool = True,
    costs: Mapping[str, float] | float | None = None,
) -> Module:
    """The top module of Figure 1: a3 = a1∨a2, a4 = ¬(a1∧a2), a5 = ¬(a1⊕a2)."""
    if len(input_names) != 2 or len(output_names) != 3:
        raise SchemaError("figure1_m1_module takes exactly 2 inputs and 3 outputs")
    a1, a2 = input_names
    a3, a4, a5 = output_names
    ins = make_attributes(input_names, costs)
    outs = make_attributes(output_names, costs)

    def function(x: Mapping[str, int]) -> dict[str, int]:
        return {
            a3: x[a1] | x[a2],
            a4: 1 - (x[a1] & x[a2]),
            a5: 1 - (x[a1] ^ x[a2]),
        }

    return Module(name, ins, outs, function, private=private)


def full_adder_module(
    name: str,
    input_names: Sequence[str],
    output_names: Sequence[str],
    private: bool = True,
    costs: Mapping[str, float] | float | None = None,
) -> Module:
    """A 3-input/2-output full adder (sum, carry) — a small arithmetic module."""
    if len(input_names) != 3 or len(output_names) != 2:
        raise SchemaError("full_adder_module takes exactly 3 inputs and 2 outputs")
    a, b, cin = input_names
    s, cout = output_names
    ins = make_attributes(input_names, costs)
    outs = make_attributes(output_names, costs)

    def function(x: Mapping[str, int]) -> dict[str, int]:
        total = x[a] + x[b] + x[cin]
        return {s: total & 1, cout: (total >> 1) & 1}

    return Module(name, ins, outs, function, private=private)


def projection_module(
    name: str,
    input_names: Sequence[str],
    output_names: Sequence[str],
    kept: Sequence[int],
    private: bool = False,
    costs: Mapping[str, float] | float | None = None,
) -> Module:
    """Copy a subset of the inputs to the outputs (a typical public reformatter).

    ``kept[i]`` is the index (into ``input_names``) copied to output ``i``.
    """
    if len(kept) != len(output_names):
        raise SchemaError("projection_module needs one kept index per output")
    ins = make_attributes(input_names, costs)
    outs = make_attributes(output_names, costs)
    kept = list(kept)

    def function(x: Mapping[str, int]) -> dict[str, int]:
        return {
            out: x[input_names[index]] for out, index in zip(output_names, kept)
        }

    return Module(name, ins, outs, function, private=private)


def mux_module(
    name: str,
    select_name: str,
    input_names: Sequence[str],
    output_name: str,
    private: bool = True,
    costs: Mapping[str, float] | float | None = None,
) -> Module:
    """A 2-way multiplexer: output = inputs[select]."""
    if len(input_names) != 2:
        raise SchemaError("mux_module takes exactly two data inputs")
    all_inputs = [select_name, *input_names]
    ins = make_attributes(all_inputs, costs)
    outs = make_attributes([output_name], costs)

    def function(x: Mapping[str, int]) -> dict[str, int]:
        chosen = input_names[1] if x[select_name] else input_names[0]
        return {output_name: x[chosen]}

    return Module(name, ins, outs, function, private=private)
