"""Random workflow and Secure-View instance generators.

The paper's algorithms are evaluated here on synthetic workflows because no
public corpus ships the abstract relations the model needs (see DESIGN.md).
Three layers of generators are provided:

* **topology generators** — chains, layered DAGs and random DAGs with a
  controllable data-sharing degree γ (Definition 3),
* **requirement generators** — random non-redundant cardinality or set
  requirement lists of bounded length ℓ_max, usable on workflows far too
  large for exhaustive standalone analysis,
* **problem generators** — glue the two into ready
  :class:`repro.core.SecureViewProblem` instances with random costs.

All generators are deterministic given a seed.  Like the solvers (after the
engine refactor), every generator also accepts an explicit ``rng``; passing
one :class:`random.Random` through a pipeline of generator calls makes a
whole benchmark instance reproducible end-to-end from a single seed, with
each stage consuming the same stream instead of re-seeding privately.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from ..core.attributes import Attribute, BOOLEAN, boolean_attributes
from ..core.module import Module
from ..core.requirements import (
    CardinalityRequirement,
    CardinalityRequirementList,
    RequirementList,
    SetRequirement,
    SetRequirementList,
)
from ..core.secure_view import SecureViewProblem
from ..core.workflow import Workflow
from ..exceptions import WorkflowError

__all__ = [
    "chain_workflow",
    "layered_workflow",
    "random_total_module",
    "random_workflow",
    "workflow_family",
    "random_cardinality_requirements",
    "random_set_requirements",
    "random_requirements",
    "random_problem",
]


def random_total_module(
    seed: int, n_inputs: int, n_outputs: int, name: str, prefix: str
) -> Module:
    """A random *total* boolean function as a module (dense relation).

    Every input code maps to an independently random output tuple, so the
    module's relation has ``2^n_inputs`` rows and essentially no exploitable
    structure — the derivation-dominated regime the kernel, sweep,
    incremental and service benchmarks all measure in.  Attribute names are
    ``{prefix}i<k>`` / ``{prefix}o<k>``, letting callers build workflows of
    schema-disjoint modules (or content-identical ones, by repeating
    ``seed``/``name``/``prefix``).  Deterministic in ``seed``.
    """
    rng = random.Random(seed)
    input_names = [f"{prefix}i{k}" for k in range(n_inputs)]
    output_names = [f"{prefix}o{k}" for k in range(n_outputs)]
    table = {
        code: tuple(rng.randint(0, 1) for _ in range(n_outputs))
        for code in range(2**n_inputs)
    }

    def function(values):
        code = 0
        for index, attr in enumerate(input_names):
            code |= (values[attr] & 1) << index
        return dict(zip(output_names, table[code]))

    return Module(
        name,
        boolean_attributes(input_names),
        boolean_attributes(output_names),
        function,
    )


def _resolve_rng(rng: random.Random | None, seed: int | None) -> random.Random:
    """An explicit ``rng`` wins; otherwise a fresh stream seeded by ``seed``."""
    return rng if rng is not None else random.Random(seed)


def _gate_function(
    output_names: Sequence[str],
    input_names: Sequence[str],
    kind_per_output: Sequence[str],
):
    """A deterministic boolean function mixing its inputs per output."""

    def function(x: Mapping[str, int]) -> dict[str, int]:
        bits = [int(x[name]) for name in input_names]
        result: dict[str, int] = {}
        for index, (out, kind) in enumerate(zip(output_names, kind_per_output)):
            if not bits:
                result[out] = index & 1
            elif kind == "and":
                value = 1
                for bit in bits:
                    value &= bit
                result[out] = value
            elif kind == "or":
                value = 0
                for bit in bits:
                    value |= bit
                result[out] = value
            else:  # parity, offset by the output index so outputs differ
                value = index & 1
                for bit in bits:
                    value ^= bit
                result[out] = value
        return result

    return function


def _make_module(
    name: str,
    input_attrs: Sequence[Attribute],
    n_outputs: int,
    rng: random.Random,
    private: bool,
    cost_range: tuple[float, float],
    privatization_cost_range: tuple[float, float],
    attr_prefix: str,
) -> Module:
    output_attrs = [
        Attribute(
            f"{attr_prefix}_{i}",
            BOOLEAN,
            cost=round(rng.uniform(*cost_range), 3),
        )
        for i in range(n_outputs)
    ]
    kinds = [rng.choice(["and", "or", "xor"]) for _ in range(n_outputs)]
    function = _gate_function(
        [a.name for a in output_attrs], [a.name for a in input_attrs], kinds
    )
    return Module(
        name,
        list(input_attrs),
        output_attrs,
        function,
        private=private,
        privatization_cost=round(rng.uniform(*privatization_cost_range), 3),
    )


def chain_workflow(
    n_modules: int,
    width: int = 2,
    seed: int | None = 0,
    private_fraction: float = 1.0,
    cost_range: tuple[float, float] = (1.0, 5.0),
    rng: random.Random | None = None,
) -> Workflow:
    """A chain of ``n_modules`` modules, each passing ``width`` attributes on.

    Data sharing degree is 1 (no attribute feeds two modules), which is the
    regime of Theorem 7's greedy algorithm.
    """
    if n_modules < 1 or width < 1:
        raise WorkflowError("chain_workflow needs n_modules >= 1 and width >= 1")
    rng = _resolve_rng(rng, seed)
    current = [
        Attribute(f"in_{i}", BOOLEAN, cost=round(rng.uniform(*cost_range), 3))
        for i in range(width)
    ]
    modules = []
    for index in range(n_modules):
        private = rng.random() < private_fraction
        module = _make_module(
            f"m{index}",
            current,
            width,
            rng,
            private,
            cost_range,
            (1.0, 5.0),
            attr_prefix=f"d{index}",
        )
        modules.append(module)
        current = list(module.output_schema.attributes)
    return Workflow(modules, name=f"chain[n={n_modules},w={width}]")


def layered_workflow(
    layers: int,
    modules_per_layer: int,
    inputs_per_module: int = 2,
    outputs_per_module: int = 2,
    seed: int | None = 0,
    private_fraction: float = 1.0,
    max_sharing: int | None = None,
    cost_range: tuple[float, float] = (1.0, 5.0),
    rng: random.Random | None = None,
) -> Workflow:
    """A layered DAG: every module draws its inputs from the previous layer.

    ``max_sharing`` caps how many modules a single attribute may feed
    (the γ of Definition 3); ``None`` leaves it unconstrained.
    """
    if layers < 1 or modules_per_layer < 1:
        raise WorkflowError("layered_workflow needs at least one layer and module")
    rng = _resolve_rng(rng, seed)
    previous_layer = [
        Attribute(f"src_{i}", BOOLEAN, cost=round(rng.uniform(*cost_range), 3))
        for i in range(max(modules_per_layer * outputs_per_module, inputs_per_module))
    ]
    usage: dict[str, int] = {attr.name: 0 for attr in previous_layer}
    modules = []
    for layer in range(layers):
        next_layer: list[Attribute] = []
        for position in range(modules_per_layer):
            available = [
                attr
                for attr in previous_layer
                if max_sharing is None or usage[attr.name] < max_sharing
            ]
            if len(available) < inputs_per_module:
                available = list(previous_layer)
            chosen = rng.sample(available, min(inputs_per_module, len(available)))
            for attr in chosen:
                usage[attr.name] = usage.get(attr.name, 0) + 1
            private = rng.random() < private_fraction
            module = _make_module(
                f"m{layer}_{position}",
                chosen,
                outputs_per_module,
                rng,
                private,
                cost_range,
                (1.0, 5.0),
                attr_prefix=f"d{layer}_{position}",
            )
            modules.append(module)
            outs = list(module.output_schema.attributes)
            next_layer.extend(outs)
            for attr in outs:
                usage[attr.name] = 0
        previous_layer = next_layer
    return Workflow(
        modules, name=f"layered[{layers}x{modules_per_layer}]"
    )


def random_workflow(
    n_modules: int,
    seed: int | None = 0,
    private_fraction: float = 1.0,
    max_inputs: int = 3,
    max_outputs: int = 2,
    max_sharing: int | None = None,
    fresh_input_probability: float = 0.2,
    cost_range: tuple[float, float] = (1.0, 5.0),
    rng: random.Random | None = None,
) -> Workflow:
    """A random DAG workflow built module by module in topological order.

    Each new module draws inputs from previously produced attributes (or
    fresh initial inputs with probability ``fresh_input_probability``),
    respecting the optional ``max_sharing`` bound γ.
    """
    if n_modules < 1:
        raise WorkflowError("random_workflow needs n_modules >= 1")
    rng = _resolve_rng(rng, seed)
    pool: list[Attribute] = [
        Attribute(f"src_{i}", BOOLEAN, cost=round(rng.uniform(*cost_range), 3))
        for i in range(2)
    ]
    usage: dict[str, int] = {attr.name: 0 for attr in pool}
    fresh_counter = len(pool)
    modules = []
    for index in range(n_modules):
        n_inputs = rng.randint(1, max_inputs)
        chosen: list[Attribute] = []
        for _ in range(n_inputs):
            candidates = [
                attr
                for attr in pool
                if attr not in chosen
                and (max_sharing is None or usage[attr.name] < max_sharing)
            ]
            if not candidates or rng.random() < fresh_input_probability:
                attr = Attribute(
                    f"src_{fresh_counter}",
                    BOOLEAN,
                    cost=round(rng.uniform(*cost_range), 3),
                )
                fresh_counter += 1
                pool.append(attr)
                usage[attr.name] = 0
                chosen.append(attr)
            else:
                chosen.append(rng.choice(candidates))
        for attr in chosen:
            usage[attr.name] += 1
        private = rng.random() < private_fraction
        module = _make_module(
            f"m{index}",
            chosen,
            rng.randint(1, max_outputs),
            rng,
            private,
            cost_range,
            (1.0, 5.0),
            attr_prefix=f"d{index}",
        )
        modules.append(module)
        for attr in module.output_schema.attributes:
            pool.append(attr)
            usage[attr.name] = 0
    return Workflow(modules, name=f"random[n={n_modules},seed={seed}]")


def _reroll_module(module: Module, rng: random.Random) -> Module:
    """A same-schema module with freshly randomized boolean functionality.

    Keeps the module's name and input/output attributes (so the workflow
    wiring is untouched) but replaces the function with new random gates
    plus a per-output flip mask, retrying until the tabulated functionality
    actually differs from the original — an "edit" that changes nothing
    would make edit-chains degenerate.
    """
    from ..core.module import tabulate_function

    for attr in module.schema:
        if set(attr.domain.values) != {0, 1}:
            raise WorkflowError(
                f"workflow_family can only re-roll boolean modules; "
                f"attribute {attr.name!r} of {module.name!r} is not boolean"
            )
    original = tabulate_function(module)
    output_names = list(module.output_names)
    for _ in range(16):
        kinds = [rng.choice(["and", "or", "xor"]) for _ in output_names]
        flips = [rng.randint(0, 1) for _ in output_names]
        inner = _gate_function(output_names, list(module.input_names), kinds)

        def function(values, _inner=inner, _flips=flips, _names=output_names):
            mixed = _inner(values)
            return {
                name: int(mixed[name]) ^ flip for name, flip in zip(_names, _flips)
            }

        candidate = module.with_function(function)
        if tabulate_function(candidate) != original:
            return candidate
    raise WorkflowError(
        f"could not re-roll module {module.name!r} to a distinct functionality"
    )


def workflow_family(
    base: Workflow | None = None,
    n_variants: int = 4,
    seed: int | None = 0,
    edits_per_step: int = 1,
    rng: random.Random | None = None,
    n_modules: int = 6,
    topology: str = "random",
) -> list[Workflow]:
    """An edit-chain of related workflows sharing most of their modules.

    Returns ``[base, v1, ..., v_{n_variants}]`` where each variant is the
    previous workflow with ``edits_per_step`` modules re-rolled to a new
    random boolean functionality (same name, same attribute schemas, so the
    DAG wiring is identical).  Consecutive variants therefore differ in
    exactly ``edits_per_step`` module fingerprints and share all others —
    the workload shape behind incremental re-solve (``Planner.evolve``) and
    the sweep executor's shared-module chunking: a grid over one family
    pays each *distinct* module derivation once.

    ``base`` defaults to a :func:`chain_workflow` / :func:`random_workflow`
    style instance built from ``n_modules`` and ``topology`` (``"chain"``,
    ``"layered"`` or ``"random"``).  All modules must be boolean.
    """
    if n_variants < 0:
        raise WorkflowError("workflow_family needs n_variants >= 0")
    rng = _resolve_rng(rng, seed)
    if base is None:
        if topology == "chain":
            base = chain_workflow(n_modules, rng=rng)
        elif topology == "layered":
            per_layer = max(2, int(round(n_modules**0.5)))
            base = layered_workflow(max(1, n_modules // per_layer), per_layer, rng=rng)
        elif topology == "random":
            base = random_workflow(n_modules, rng=rng)
        else:
            raise WorkflowError(f"unknown workflow_family topology {topology!r}")
    family = [base]
    current = base
    for step in range(1, n_variants + 1):
        count = min(max(1, edits_per_step), len(current.module_names))
        edited = rng.sample(list(current.module_names), count)
        replacements = {
            name: _reroll_module(current.module(name), rng) for name in edited
        }
        current = Workflow(
            [replacements.get(m.name, m) for m in current.modules],
            name=f"{base.name}@edit{step}",
        )
        family.append(current)
    return family


# ---------------------------------------------------------------------------
# Requirement generators
# ---------------------------------------------------------------------------

def random_cardinality_requirements(
    workflow: Workflow,
    seed: int | None = 0,
    max_list_length: int = 3,
    rng: random.Random | None = None,
) -> dict[str, CardinalityRequirementList]:
    """Random non-redundant cardinality lists for every private module.

    Each list holds up to ``max_list_length`` Pareto-incomparable pairs
    ``(α, β)`` with ``α ≤ |I_i|``, ``β ≤ |O_i|`` and ``α + β >= 1``.
    """
    rng = _resolve_rng(rng, seed)
    lists: dict[str, CardinalityRequirementList] = {}
    for module in workflow.private_modules:
        n_in = len(module.input_names)
        n_out = len(module.output_names)
        options: list[CardinalityRequirement] = []
        attempts = 0
        target = rng.randint(1, max_list_length)
        while len(options) < target and attempts < 20 * max_list_length:
            attempts += 1
            alpha = rng.randint(0, n_in)
            beta = rng.randint(0, n_out)
            if alpha + beta == 0:
                continue
            candidate = CardinalityRequirement(alpha, beta)
            if any(
                existing.dominates(candidate) or candidate.dominates(existing)
                for existing in options
            ):
                continue
            options.append(candidate)
        if not options:
            options.append(
                CardinalityRequirement(min(1, n_in), min(1, n_out) if n_in == 0 else 0)
            )
        lists[module.name] = CardinalityRequirementList(
            module.name, options
        ).normalized()
    return lists


def random_set_requirements(
    workflow: Workflow,
    seed: int | None = 0,
    max_list_length: int = 3,
    max_option_size: int = 2,
    rng: random.Random | None = None,
) -> dict[str, SetRequirementList]:
    """Random set-constraint lists for every private module.

    Each option is a random subset of the module's attributes of size at
    most ``max_option_size`` (and at least 1); dominated options are removed.
    """
    rng = _resolve_rng(rng, seed)
    lists: dict[str, SetRequirementList] = {}
    for module in workflow.private_modules:
        attributes = list(module.attribute_names)
        inputs = set(module.input_names)
        options: list[SetRequirement] = []
        target = rng.randint(1, max_list_length)
        attempts = 0
        while len(options) < target and attempts < 20 * max_list_length:
            attempts += 1
            size = rng.randint(1, min(max_option_size, len(attributes)))
            chosen = frozenset(rng.sample(attributes, size))
            option = SetRequirement(
                frozenset(chosen & inputs), frozenset(chosen - inputs)
            )
            if any(
                existing.attributes <= option.attributes
                or option.attributes <= existing.attributes
                for existing in options
            ):
                continue
            options.append(option)
        if not options:
            chosen = frozenset({attributes[0]})
            options.append(
                SetRequirement(frozenset(chosen & inputs), frozenset(chosen - inputs))
            )
        lists[module.name] = SetRequirementList(module.name, options).normalized()
    return lists


def random_requirements(
    workflow: Workflow,
    kind: str = "cardinality",
    seed: int | None = 0,
    max_list_length: int = 3,
    max_option_size: int = 2,
    rng: random.Random | None = None,
) -> dict[str, RequirementList]:
    """Dispatch to the cardinality or set requirement generator."""
    if kind == "cardinality":
        return random_cardinality_requirements(
            workflow, seed=seed, max_list_length=max_list_length, rng=rng
        )
    if kind == "set":
        return random_set_requirements(
            workflow,
            seed=seed,
            max_list_length=max_list_length,
            max_option_size=max_option_size,
            rng=rng,
        )
    raise WorkflowError(f"unknown requirement kind {kind!r}")


def random_problem(
    n_modules: int = 10,
    kind: str = "cardinality",
    seed: int | None = 0,
    gamma: int = 2,
    topology: str = "random",
    private_fraction: float = 1.0,
    max_sharing: int | None = None,
    max_list_length: int = 3,
    rng: random.Random | None = None,
) -> SecureViewProblem:
    """A complete random Secure-View instance (workflow + requirement lists).

    With an explicit ``rng``, topology and requirement generation draw from
    the *same* stream, so one seeded :class:`random.Random` reproduces the
    entire instance.  With only ``seed`` the historical behaviour is kept:
    each stage re-seeds its own private stream from ``seed``.
    """
    if topology == "chain":
        workflow = chain_workflow(
            n_modules, seed=seed, private_fraction=private_fraction, rng=rng
        )
    elif topology == "layered":
        per_layer = max(2, int(round(n_modules**0.5)))
        layers = max(1, n_modules // per_layer)
        workflow = layered_workflow(
            layers,
            per_layer,
            seed=seed,
            private_fraction=private_fraction,
            max_sharing=max_sharing,
            rng=rng,
        )
    else:
        workflow = random_workflow(
            n_modules,
            seed=seed,
            private_fraction=private_fraction,
            max_sharing=max_sharing,
            rng=rng,
        )
    requirements = random_requirements(
        workflow, kind=kind, seed=seed, max_list_length=max_list_length, rng=rng
    )
    return SecureViewProblem(workflow, gamma=gamma, requirements=requirements)
