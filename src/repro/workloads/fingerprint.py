"""Content-addressed workflow fingerprints.

The persistent derivation store (:mod:`repro.engine.store`) keys every
artifact — requirement lists, provenance relations, compiled kernel packs,
verification out-sets, solve results — by the *content* of the workflow it
was derived from, so two processes (or two runs weeks apart) that analyze
the same workflow share one store entry regardless of how the workflow
object was built.

A fingerprint is the SHA-256 digest of the workflow's canonical
serialization: the :func:`~repro.workloads.serialization.workflow_to_dict`
payload with modules sorted by name and every JSON object emitted with
sorted keys.  It is therefore invariant under

* the iteration order of any dict the caller assembled the payload from,
* the order modules were passed to :class:`~repro.core.workflow.Workflow`
  (module names are unique within a workflow), and
* a serialize → deserialize round trip (functionality is tabulated, so the
  rebuilt workflow re-serializes to the same tables).

It changes whenever anything semantically relevant changes: a module table,
an attribute domain or cost, a privacy flag, or the workflow's name.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Mapping

from .serialization import workflow_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.workflow import Workflow

__all__ = ["canonical_workflow_payload", "payload_fingerprint", "workflow_fingerprint"]


def canonical_workflow_payload(workflow: "Workflow") -> dict[str, Any]:
    """The serialized workflow with module order normalized by name."""
    payload = workflow_to_dict(workflow)
    payload["modules"] = sorted(payload["modules"], key=lambda m: m["name"])
    return payload


def payload_fingerprint(payload: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON encoding of an arbitrary payload.

    ``sort_keys`` makes the digest independent of dict insertion order;
    compact separators make it independent of formatting.  Values must be
    JSON-serializable (workflow payloads are by construction).
    """
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def workflow_fingerprint(workflow: "Workflow") -> str:
    """Stable content hash of a workflow (see module docstring)."""
    return payload_fingerprint(canonical_workflow_payload(workflow))
