"""Content-addressed workflow and module fingerprints.

The persistent derivation store (:mod:`repro.engine.store`) keys every
artifact — requirement lists, provenance relations, compiled kernel packs,
verification out-sets, solve results — by the *content* of the workflow it
was derived from, so two processes (or two runs weeks apart) that analyze
the same workflow share one store entry regardless of how the workflow
object was built.

A fingerprint is the SHA-256 digest of the workflow's canonical
serialization: the :func:`~repro.workloads.serialization.workflow_to_dict`
payload with modules sorted by name and every JSON object emitted with
sorted keys.  It is therefore invariant under

* the iteration order of any dict the caller assembled the payload from,
* the order modules were passed to :class:`~repro.core.workflow.Workflow`
  (module names are unique within a workflow), and
* a serialize → deserialize round trip (functionality is tabulated, so the
  rebuilt workflow re-serializes to the same tables).

It changes whenever anything semantically relevant changes: a module table,
an attribute domain or cost, a privacy flag, or the workflow's name.

**Module fingerprints** key the store's shared per-module tier.  The
paper's Γ-privacy requirement of a private module depends only on that
module's relation, so :func:`module_fingerprint` hashes exactly what the
per-module derivations consume: the module name, its input/output schemas
(names and domain values) and its tabulated functionality.  It deliberately
*excludes* attribute hiding costs, the privatization cost and the
private/public flag — none of them enter requirement derivation, privacy
levels, or the module's packed relation — so a what-if cost override or a
privatization never invalidates the module tier, and any two workflows
containing the same module (by content) share its artifacts.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Mapping

from .serialization import workflow_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.module import Module
    from ..core.workflow import Workflow

__all__ = [
    "canonical_module_payload",
    "canonical_workflow_payload",
    "module_fingerprint",
    "module_payload_fingerprint",
    "payload_fingerprint",
    "workflow_fingerprint",
]


def canonical_workflow_payload(workflow: "Workflow") -> dict[str, Any]:
    """The serialized workflow with module order normalized by name."""
    payload = workflow_to_dict(workflow)
    payload["modules"] = sorted(payload["modules"], key=lambda m: m["name"])
    return payload


def payload_fingerprint(payload: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON encoding of an arbitrary payload.

    ``sort_keys`` makes the digest independent of dict insertion order;
    compact separators make it independent of formatting.  Values must be
    JSON-serializable (workflow payloads are by construction).
    """
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def workflow_fingerprint(workflow: "Workflow") -> str:
    """Stable content hash of a workflow (see module docstring)."""
    return payload_fingerprint(canonical_workflow_payload(workflow))


def _canonical_module_dict(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Reduce a serialized module dict to its derivation-relevant content.

    Keeps the name, the input/output attribute names and domain values, and
    the tabulated functionality; drops costs and the privacy flag (see
    module docstring).  Works on any :func:`_module_to_dict`-shaped payload,
    so live modules and already-serialized sweep instances fingerprint
    identically.
    """
    return {
        "name": payload["name"],
        "inputs": [
            {"name": item["name"], "values": list(item["values"])}
            for item in payload["inputs"]
        ],
        "outputs": [
            {"name": item["name"], "values": list(item["values"])}
            for item in payload["outputs"]
        ],
        # Row order is normalized (``_module_to_dict`` already sorts, but a
        # hand-assembled payload may not) so the digest reflects the *map*,
        # not the listing order.
        "table": sorted(
            ([list(key), list(value)] for key, value in payload["table"]),
            key=lambda entry: json.dumps(entry, sort_keys=True, default=str),
        ),
    }


def canonical_module_payload(module: "Module") -> dict[str, Any]:
    """The derivation-relevant content of one module (see module docstring)."""
    from .serialization import _module_to_dict

    return _canonical_module_dict(_module_to_dict(module))


def module_payload_fingerprint(payload: Mapping[str, Any]) -> str:
    """Module fingerprint computed from a serialized module dict.

    Used by the sweep executor to group serialized instances into families
    by shared modules without rebuilding any workflow objects.
    """
    return payload_fingerprint(_canonical_module_dict(payload))


def module_fingerprint(module: "Module") -> str:
    """Stable content hash of one module's derivation-relevant content."""
    return payload_fingerprint(canonical_module_payload(module))
