"""Synthetic "scientific workflow"-shaped instances.

The paper motivates the model with workflow systems such as myGrid/Taverna,
Kepler and VisTrails and cites myExperiment [1] for the observation that
individual modules typically have fewer than 10 attributes while workflows
can contain many modules.  No public corpus provides the abstract
finite-domain relations this library works on, so this module synthesizes
workflows whose *shape statistics* follow those observations (see the
substitution table in DESIGN.md):

* a small set of source (data-staging) modules fanning out reference data,
* a long middle section of analysis modules with 1–4 inputs and 1–3 outputs,
* a few aggregation modules near the sinks with larger fan-in,
* a configurable fraction of public modules (format converters, sorters),
* log-normal-ish attribute costs so "expensive" data items exist.

The generated instances are used by the scalability benchmark (experiment
E18 in DESIGN.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..core.attributes import Attribute, BOOLEAN
from ..core.module import Module
from ..core.secure_view import SecureViewProblem
from ..core.workflow import Workflow
from .generators import random_requirements

__all__ = ["ScientificWorkflowConfig", "scientific_workflow", "scientific_suite"]


@dataclass(frozen=True)
class ScientificWorkflowConfig:
    """Shape parameters of a synthetic scientific workflow."""

    n_modules: int = 30
    source_fraction: float = 0.15
    aggregator_fraction: float = 0.1
    public_fraction: float = 0.3
    max_inputs: int = 4
    max_outputs: int = 3
    max_sharing: int = 3
    cost_mean: float = 3.0
    cost_sigma: float = 0.6
    seed: int = 0


def _cost(rng: random.Random, config: ScientificWorkflowConfig) -> float:
    return round(rng.lognormvariate(config.cost_mean**0.5, config.cost_sigma), 3)


def _analysis_function(input_names: Sequence[str], output_names: Sequence[str]):
    def function(x):
        bits = [int(x[name]) for name in input_names]
        result = {}
        for index, out in enumerate(output_names):
            value = index & 1
            for offset, bit in enumerate(bits):
                if (offset + index) % 2 == 0:
                    value ^= bit
                else:
                    value |= bit
            result[out] = value & 1
        return result

    return function


def scientific_workflow(config: ScientificWorkflowConfig | None = None) -> Workflow:
    """Generate one synthetic scientific workflow following ``config``."""
    config = config or ScientificWorkflowConfig()
    rng = random.Random(config.seed)
    n_sources = max(1, int(config.n_modules * config.source_fraction))
    n_aggregators = max(1, int(config.n_modules * config.aggregator_fraction))
    n_analysis = max(1, config.n_modules - n_sources - n_aggregators)

    modules: list[Module] = []
    pool: list[Attribute] = []
    usage: dict[str, int] = {}

    def new_attribute(prefix: str, index: int) -> Attribute:
        attr = Attribute(f"{prefix}_{index}", BOOLEAN, cost=_cost(rng, config))
        usage[attr.name] = 0
        return attr

    # Source modules: one external input each, fan out reference data.
    attr_counter = 0
    for source_index in range(n_sources):
        external = new_attribute("raw", attr_counter)
        attr_counter += 1
        outputs = [
            new_attribute("ref", attr_counter + j)
            for j in range(rng.randint(1, config.max_outputs))
        ]
        attr_counter += len(outputs)
        module = Module(
            f"stage_{source_index}",
            [external],
            outputs,
            _analysis_function([external.name], [a.name for a in outputs]),
            private=rng.random() > config.public_fraction,
            privatization_cost=_cost(rng, config),
        )
        modules.append(module)
        pool.extend(outputs)

    def draw_inputs(count: int) -> list[Attribute]:
        chosen: list[Attribute] = []
        for _ in range(count):
            candidates = [
                attr
                for attr in pool
                if attr not in chosen and usage[attr.name] < config.max_sharing
            ]
            if not candidates:
                candidates = [attr for attr in pool if attr not in chosen]
            if not candidates:
                break
            attr = rng.choice(candidates)
            usage[attr.name] += 1
            chosen.append(attr)
        return chosen

    # Analysis modules.
    for analysis_index in range(n_analysis):
        inputs = draw_inputs(rng.randint(1, config.max_inputs))
        if not inputs:
            inputs = [new_attribute("raw", attr_counter)]
            attr_counter += 1
        outputs = [
            new_attribute("data", attr_counter + j)
            for j in range(rng.randint(1, config.max_outputs))
        ]
        attr_counter += len(outputs)
        module = Module(
            f"analyze_{analysis_index}",
            inputs,
            outputs,
            _analysis_function([a.name for a in inputs], [a.name for a in outputs]),
            private=rng.random() > config.public_fraction,
            privatization_cost=_cost(rng, config),
        )
        modules.append(module)
        pool.extend(outputs)

    # Aggregator modules: larger fan-in, single result.
    for agg_index in range(n_aggregators):
        inputs = draw_inputs(min(len(pool), config.max_inputs + 2))
        if not inputs:
            inputs = [new_attribute("raw", attr_counter)]
            attr_counter += 1
        output = new_attribute("result", attr_counter)
        attr_counter += 1
        module = Module(
            f"aggregate_{agg_index}",
            inputs,
            [output],
            _analysis_function([a.name for a in inputs], [output.name]),
            private=True,
            privatization_cost=_cost(rng, config),
        )
        modules.append(module)
        pool.append(output)

    return Workflow(
        modules, name=f"scientific[n={config.n_modules},seed={config.seed}]"
    )


def scientific_problem(
    config: ScientificWorkflowConfig | None = None,
    kind: str = "cardinality",
    gamma: int = 2,
    max_list_length: int = 3,
) -> SecureViewProblem:
    """A Secure-View instance over one synthetic scientific workflow."""
    config = config or ScientificWorkflowConfig()
    workflow = scientific_workflow(config)
    requirements = random_requirements(
        workflow, kind=kind, seed=config.seed, max_list_length=max_list_length
    )
    return SecureViewProblem(workflow, gamma=gamma, requirements=requirements)


def scientific_suite(
    sizes: Sequence[int] = (10, 20, 40, 80),
    seed: int = 0,
    kind: str = "cardinality",
    public_fraction: float = 0.0,
) -> Iterator[SecureViewProblem]:
    """A suite of instances of increasing size (the E18 scalability sweep)."""
    for index, size in enumerate(sizes):
        config = ScientificWorkflowConfig(
            n_modules=size, seed=seed + index, public_fraction=public_fraction
        )
        yield scientific_problem(config, kind=kind)
