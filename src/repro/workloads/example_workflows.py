"""The worked examples of the paper as executable workflows.

* :func:`figure1_workflow` — the 3-module boolean workflow of Figure 1 used
  by Examples 1–4,
* :func:`example5_workflow` / :func:`example5_problem` — the (n+2)-module
  star workflow of Example 5 exhibiting the Ω(n) gap between the union of
  standalone optima and the workflow optimum,
* :func:`proposition2_chain` — the two-module one-one chain of
  Proposition 2,
* :func:`example7_chain` — the public→private→public chain of Examples 7/8
  where standalone privacy fails to compose,
* :func:`example6_one_one_module` / :func:`example6_majority_module` — the
  modules of Example 6 whose set-constraint lists blow up exponentially
  while their cardinality lists stay constant-size.
"""

from __future__ import annotations

from typing import Mapping

from ..core.attributes import Attribute, BOOLEAN
from ..core.module import Module
from ..core.requirements import (
    SetRequirement,
    SetRequirementList,
)
from ..core.secure_view import SecureViewProblem
from ..core.workflow import Workflow
from .boolean_modules import (
    bit_reversal_module,
    constant_module,
    figure1_m1_module,
    identity_module,
    majority_module,
    make_attributes,
    random_permutation_module,
    xor_mask_module,
)

__all__ = [
    "figure1_workflow",
    "figure1_view_attributes",
    "example5_workflow",
    "example5_problem",
    "proposition2_chain",
    "example7_chain",
    "example6_one_one_module",
    "example6_majority_module",
]


def figure1_workflow(costs: Mapping[str, float] | float | None = None) -> Workflow:
    """The workflow of Figure 1 (modules m1, m2, m3 over a1..a7).

    ``m1`` computes a3 = a1∨a2, a4 = ¬(a1∧a2), a5 = ¬(a1⊕a2); ``m2``
    computes a6 = ¬(a3∧a4) and ``m3`` computes a7 = ¬(a4∧a5) — these
    reproduce exactly the executions listed in Figure 1b.
    """
    m1 = figure1_m1_module(costs=costs)

    a3, a4, a5 = make_attributes(["a3", "a4", "a5"], costs)
    a6, = make_attributes(["a6"], costs)
    a7, = make_attributes(["a7"], costs)

    def f2(x: Mapping[str, int]) -> dict[str, int]:
        return {"a6": 1 - (x["a3"] & x["a4"])}

    def f3(x: Mapping[str, int]) -> dict[str, int]:
        return {"a7": 1 - (x["a4"] & x["a5"])}

    m2 = Module("m2", [a3, a4], [a6], f2)
    m3 = Module("m3", [a4, a5], [a7], f3)
    return Workflow([m1, m2, m3], name="figure1")


def figure1_view_attributes() -> frozenset[str]:
    """The visible set V = {a1, a3, a5} used in Examples 2–3 and Figure 1d."""
    return frozenset({"a1", "a3", "a5"})


def example5_workflow(
    n: int, epsilon: float = 0.1, gamma: int = 2
) -> Workflow:
    """The star workflow of Example 5 with ``n`` middle modules.

    Module ``m`` copies the initial input ``a1`` (cost 1) to the shared data
    item ``a2`` (cost 1+ε), which is fed to every middle module ``m_i``; each
    ``m_i`` outputs ``b_i`` (cost 1) to the collector module ``m'`` which
    produces the final output ``c`` (cost 1).  All modules are private.
    """
    if n < 1:
        raise ValueError("example5_workflow needs n >= 1")
    a1 = Attribute("a1", BOOLEAN, cost=1.0)
    a2 = Attribute("a2", BOOLEAN, cost=1.0 + epsilon)
    b_attrs = [Attribute(f"b{i}", BOOLEAN, cost=1.0) for i in range(1, n + 1)]
    c = Attribute("c", BOOLEAN, cost=1.0)

    def copy_function(x: Mapping[str, int]) -> dict[str, int]:
        return {"a2": x["a1"]}

    head = Module("m", [a1], [a2], copy_function)
    middles = []
    for i in range(1, n + 1):
        out_name = f"b{i}"

        def middle_function(
            x: Mapping[str, int], _out: str = out_name
        ) -> dict[str, int]:
            return {_out: 1 - x["a2"]}

        middles.append(Module(f"m_{i}", [a2], [b_attrs[i - 1]], middle_function))

    def collector_function(x: Mapping[str, int]) -> dict[str, int]:
        result = 0
        for i in range(1, n + 1):
            result ^= x[f"b{i}"]
        return {"c": result}

    collector = Module("m_prime", b_attrs, [c], collector_function)
    return Workflow([head, *middles, collector], name=f"example5[n={n}]")


def example5_problem(
    n: int, epsilon: float = 0.1
) -> SecureViewProblem:
    """The Secure-View instance of Example 5 (set constraints).

    Requirement lists follow the example verbatim: ``m`` is safe if its
    incoming data ``a1`` *or* its outgoing data ``a2`` is hidden, each
    ``m_i`` is safe if ``a2`` or ``b_i`` is hidden, and ``m'`` is safe if any
    one of the ``b_i`` is hidden.  The union of standalone optima costs
    ``n + 1`` while the workflow optimum hides ``a2`` and one ``b_i`` for a
    cost of ``2 + ε``.
    """
    workflow = example5_workflow(n, epsilon)
    empty: frozenset[str] = frozenset()
    requirements: dict[str, SetRequirementList] = {
        "m": SetRequirementList(
            "m",
            [
                SetRequirement(frozenset({"a1"}), empty),
                SetRequirement(empty, frozenset({"a2"})),
            ],
        ),
        "m_prime": SetRequirementList(
            "m_prime",
            [
                SetRequirement(frozenset({f"b{i}"}), empty)
                for i in range(1, n + 1)
            ],
        ),
    }
    for i in range(1, n + 1):
        requirements[f"m_{i}"] = SetRequirementList(
            f"m_{i}",
            [
                SetRequirement(frozenset({"a2"}), empty),
                SetRequirement(empty, frozenset({f"b{i}"})),
            ],
        )
    return SecureViewProblem(workflow, gamma=2, requirements=requirements)


def proposition2_chain(k: int, private: bool = True) -> Workflow:
    """The Proposition-2 chain: identity followed by bit reversal, k bits each.

    Both modules are one-one; hiding ``log Γ`` of the intermediate
    attributes keeps each module Γ-private, yet the number of workflow
    worlds collapses doubly exponentially compared to the standalone worlds.
    """
    if k < 1:
        raise ValueError("proposition2_chain needs k >= 1")
    inputs = [f"x{i}" for i in range(k)]
    mids = [f"y{i}" for i in range(k)]
    outs = [f"z{i}" for i in range(k)]
    m1 = identity_module("m1", inputs, mids, private=private)
    m2 = bit_reversal_module("m2", mids, outs, private=private)
    return Workflow([m1, m2], name=f"proposition2[k={k}]")


def example7_chain(
    k: int,
    seed: int | None = 7,
    public_head: bool = True,
    public_tail: bool = True,
) -> Workflow:
    """The chain m' → m → m'' of Examples 7 and 8.

    ``m'`` is a public constant module, ``m`` a private one-one module (a
    random permutation of the k-bit cube), and ``m''`` a public invertible
    module (an XOR mask).  With both neighbours public and visible, hiding
    only inputs or only outputs of ``m`` cannot make it Γ-workflow-private;
    privatizing the offending public module restores Theorem 8's guarantee.
    """
    if k < 1:
        raise ValueError("example7_chain needs k >= 1")
    sources = [f"s{i}" for i in range(k)]
    xs = [f"x{i}" for i in range(k)]
    ys = [f"y{i}" for i in range(k)]
    zs = [f"z{i}" for i in range(k)]
    head = constant_module(
        "m_head", sources, xs, value=0, private=not public_head
    )
    middle = random_permutation_module("m_mid", xs, ys, seed=seed, private=True)
    tail = xor_mask_module(
        "m_tail", ys, zs, mask=[1] * k, private=not public_tail
    )
    return Workflow([head, middle, tail], name=f"example7[k={k}]")


def example6_one_one_module(k: int, seed: int | None = 11) -> Module:
    """Example 6 (first half): a one-one function on k boolean inputs/outputs.

    Hiding any k inputs or any k outputs guarantees 2^k-privacy, so listing
    the safe sets explicitly needs Ω(C(2k, k)) entries, while the cardinality
    list is just [(k, 0), (0, k)].
    """
    inputs = [f"u{i}" for i in range(k)]
    outputs = [f"v{i}" for i in range(k)]
    return random_permutation_module("one_one", inputs, outputs, seed=seed)


def example6_majority_module(k: int) -> Module:
    """Example 6 (second half): majority on 2k boolean inputs, one output.

    Hiding k+1 inputs or the single output guarantees 2-privacy; the
    cardinality list is [(k+1, 0), (0, 1)].
    """
    inputs = [f"u{i}" for i in range(2 * k)]
    return majority_module("majority", inputs, "v0")
