"""JSON (de)serialization of workflows, requirement lists, problems and solutions.

Module functions are arbitrary Python callables and therefore cannot be
serialized in general; workflows are instead serialized with their
functionality *tabulated* (the explicit input-tuple → output-tuple map each
module induces over its finite domain).  That is lossless for the purposes
of this library — every algorithm only ever consults the module relation —
and keeps the format a plain, inspectable JSON document:

```json
{
  "name": "figure1",
  "modules": [
    {"name": "m1", "private": true, "privatization_cost": 1.0,
     "inputs": [{"name": "a1", "values": [0, 1], "cost": 1.0}, ...],
     "outputs": [...],
     "table": [[[0, 0], [0, 1, 1]], ...]}
  ]
}
```

Secure-View problems serialize their requirement lists alongside the
workflow; solutions serialize hidden attributes and privatized modules.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from ..core.attributes import Attribute, Domain, Schema
from ..core.module import Module, tabulate_function
from ..core.relation import Relation
from ..core.requirements import (
    CardinalityRequirement,
    CardinalityRequirementList,
    RequirementList,
    SetRequirement,
    SetRequirementList,
)
from ..core.secure_view import SecureViewProblem
from ..core.view import SecureViewSolution
from ..core.workflow import Workflow
from ..exceptions import SchemaError

__all__ = [
    "workflow_to_dict",
    "workflow_from_dict",
    "problem_to_dict",
    "problem_from_dict",
    "solution_to_dict",
    "solution_from_dict",
    "requirement_to_dict",
    "requirement_from_dict",
    "relation_to_dict",
    "relation_from_dict",
    "dump_workflow",
    "load_workflow",
    "dump_problem",
    "load_problem",
]


# ---------------------------------------------------------------------------
# Attributes and modules
# ---------------------------------------------------------------------------

def _attribute_to_dict(attribute: Attribute) -> dict[str, Any]:
    return {
        "name": attribute.name,
        "values": list(attribute.domain.values),
        "cost": attribute.cost,
    }


def _attribute_from_dict(payload: Mapping[str, Any]) -> Attribute:
    return Attribute(
        payload["name"],
        Domain(payload["values"]),
        float(payload.get("cost", 1.0)),
    )


def _module_to_dict(module: Module) -> dict[str, Any]:
    table = tabulate_function(module)
    return {
        "name": module.name,
        "private": module.private,
        "privatization_cost": module.privatization_cost,
        "inputs": [_attribute_to_dict(a) for a in module.input_schema],
        "outputs": [_attribute_to_dict(a) for a in module.output_schema],
        "table": [[list(key), list(value)] for key, value in sorted(table.items())],
    }


def _module_from_dict(payload: Mapping[str, Any]) -> Module:
    inputs = [_attribute_from_dict(item) for item in payload["inputs"]]
    outputs = [_attribute_from_dict(item) for item in payload["outputs"]]
    input_names = [a.name for a in inputs]
    output_names = [a.name for a in outputs]
    table = {
        tuple(key): tuple(value) for key, value in payload["table"]
    }

    def function(values: Mapping[str, Any]) -> dict[str, Any]:
        key = tuple(values[name] for name in input_names)
        try:
            image = table[key]
        except KeyError as exc:
            raise SchemaError(
                f"module {payload['name']!r} has no tabulated output for {key!r}"
            ) from exc
        return dict(zip(output_names, image))

    return Module(
        payload["name"],
        inputs,
        outputs,
        function,
        private=bool(payload.get("private", True)),
        privatization_cost=float(payload.get("privatization_cost", 1.0)),
    )


# ---------------------------------------------------------------------------
# Workflows
# ---------------------------------------------------------------------------

def workflow_to_dict(workflow: Workflow) -> dict[str, Any]:
    """Serialize a workflow (with tabulated module functionality)."""
    return {
        "name": workflow.name,
        "modules": [_module_to_dict(module) for module in workflow.modules],
    }


def workflow_from_dict(payload: Mapping[str, Any]) -> Workflow:
    """Rebuild a workflow from :func:`workflow_to_dict` output."""
    modules = [_module_from_dict(item) for item in payload["modules"]]
    return Workflow(modules, name=payload.get("name", "workflow"))


def dump_workflow(workflow: Workflow, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(workflow_to_dict(workflow), handle, indent=2, sort_keys=True)


def load_workflow(path: str) -> Workflow:
    with open(path, "r", encoding="utf-8") as handle:
        return workflow_from_dict(json.load(handle))


# ---------------------------------------------------------------------------
# Requirement lists, problems and solutions
# ---------------------------------------------------------------------------

def requirement_to_dict(requirement: RequirementList) -> dict[str, Any]:
    """Serialize one requirement list (set or cardinality) to plain JSON."""
    if isinstance(requirement, SetRequirementList):
        return {
            "kind": "set",
            "module": requirement.module_name,
            "options": [
                {
                    "hidden_inputs": sorted(option.hidden_inputs),
                    "hidden_outputs": sorted(option.hidden_outputs),
                }
                for option in requirement
            ],
        }
    if isinstance(requirement, CardinalityRequirementList):
        return {
            "kind": "cardinality",
            "module": requirement.module_name,
            "options": [
                {"alpha": option.alpha, "beta": option.beta} for option in requirement
            ],
        }
    raise SchemaError(
        f"cannot serialize requirement list of type {type(requirement)!r}"
    )


def requirement_from_dict(payload: Mapping[str, Any]) -> RequirementList:
    """Rebuild a requirement list from :func:`requirement_to_dict` output."""
    module_name = payload["module"]
    if payload["kind"] == "set":
        return SetRequirementList(
            module_name,
            [
                SetRequirement(
                    frozenset(option["hidden_inputs"]),
                    frozenset(option["hidden_outputs"]),
                )
                for option in payload["options"]
            ],
        )
    if payload["kind"] == "cardinality":
        return CardinalityRequirementList(
            module_name,
            [
                CardinalityRequirement(int(option["alpha"]), int(option["beta"]))
                for option in payload["options"]
            ],
        )
    raise SchemaError(f"unknown requirement kind {payload['kind']!r}")


def relation_to_dict(relation: Relation) -> dict[str, Any]:
    """Serialize a relation as domain-index rows (exact for any domain).

    Rows are encoded positionally as indices into each attribute's canonical
    domain order, so arbitrary hashable domain values (not just JSON types)
    round-trip exactly through :func:`relation_from_dict` given the same
    schema.  Used by the persistent derivation store.
    """
    indexers = [
        {value: idx for idx, value in enumerate(attribute.domain.values)}
        for attribute in relation.schema
    ]
    return {
        "attributes": list(relation.attribute_names),
        "rows": [
            [indexer[value] for indexer, value in zip(indexers, tup)]
            for tup in relation.tuples
        ],
    }


def relation_from_dict(schema: Schema, payload: Mapping[str, Any]) -> Relation:
    """Rebuild a relation from :func:`relation_to_dict` against a schema.

    The schema must carry the same attributes (name, domain order) the
    relation was serialized under; a mismatch raises :class:`SchemaError`.
    """
    names = tuple(payload["attributes"])
    if names != schema.names:
        raise SchemaError(
            f"stored relation attributes {names!r} do not match schema "
            f"{schema.names!r}"
        )
    domains = [schema[name].domain.values for name in names]
    tuples = []
    for row in payload["rows"]:
        values = []
        for domain, index in zip(domains, row):
            index = int(index)
            # Explicit bounds check: negative indexing would silently map a
            # corrupt -1 to the last domain value instead of failing.
            if not 0 <= index < len(domain):
                raise SchemaError(f"stored relation index {index} out of range")
            values.append(domain[index])
        tuples.append(tuple(values))
    return Relation.from_tuples(schema, tuples, check_domains=False)


def problem_to_dict(problem: SecureViewProblem) -> dict[str, Any]:
    """Serialize a Secure-View problem (workflow + requirements + options)."""
    return {
        "workflow": workflow_to_dict(problem.workflow),
        "gamma": problem.gamma,
        "allow_privatization": problem.allow_privatization,
        "hidable_attributes": sorted(problem.hidable_attributes),
        "requirements": [
            requirement_to_dict(requirement)
            for requirement in problem.requirements.values()
        ],
    }


def problem_from_dict(payload: Mapping[str, Any]) -> SecureViewProblem:
    """Rebuild a Secure-View problem from :func:`problem_to_dict` output."""
    workflow = workflow_from_dict(payload["workflow"])
    requirements = {
        item["module"]: requirement_from_dict(item)
        for item in payload["requirements"]
    }
    return SecureViewProblem(
        workflow,
        gamma=int(payload["gamma"]),
        requirements=requirements,
        hidable_attributes=frozenset(payload["hidable_attributes"]),
        allow_privatization=bool(payload.get("allow_privatization", True)),
    )


def dump_problem(problem: SecureViewProblem, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(problem_to_dict(problem), handle, indent=2, sort_keys=True)


def load_problem(path: str) -> SecureViewProblem:
    with open(path, "r", encoding="utf-8") as handle:
        return problem_from_dict(json.load(handle))


def solution_to_dict(solution: SecureViewSolution) -> dict[str, Any]:
    """Serialize a solution (hidden attributes, privatized modules, cost)."""
    return {
        "hidden_attributes": sorted(solution.hidden_attributes),
        "privatized_modules": sorted(solution.privatized_modules),
        "cost": solution.cost(),
        "method": solution.meta.get("method"),
    }


def solution_from_dict(
    workflow: Workflow, payload: Mapping[str, Any]
) -> SecureViewSolution:
    """Rebuild a solution against a workflow (costs are recomputed, not trusted)."""
    return SecureViewSolution(
        workflow,
        frozenset(payload["hidden_attributes"]),
        frozenset(payload.get("privatized_modules", ())),
        meta={"method": payload.get("method", "loaded")},
    )
