"""Vertex cover in cubic graphs and the Theorem-7 APX-hardness reduction.

The reduction (Figure 5) shows the Secure-View problem with cardinality
constraints stays NP-hard (indeed APX-hard) even with **no data sharing**:

* one module ``x_uv`` per edge of the graph, with one incoming data item and
  one outgoing item to each endpoint's module,
* one module ``y_v`` per vertex, forwarding a single item to the collector
  ``z``,
* requirement lists ``L_uv = {(0, 1)}``, ``L_v = {(d_v, 0), (0, 1)}``,
  ``L_z = {(1, 0)}``, all attributes of unit cost.

Lemma 6: the graph has a vertex cover of size K iff the instance has a
secure view of cost ``|E| + K``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Sequence

import networkx as nx

from ..core.attributes import Attribute, BOOLEAN
from ..core.module import Module
from ..core.requirements import (
    CardinalityRequirement,
    CardinalityRequirementList,
)
from ..core.secure_view import SecureViewProblem
from ..core.workflow import Workflow
from ..exceptions import InfeasibleError

__all__ = [
    "VertexCoverInstance",
    "random_cubic_graph",
    "greedy_vertex_cover",
    "exact_vertex_cover",
    "vertex_cover_to_secure_view",
]


@dataclass(frozen=True)
class VertexCoverInstance:
    """An undirected graph whose minimum vertex cover we want."""

    vertices: tuple[int, ...]
    edges: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        vertex_set = set(self.vertices)
        for u, v in self.edges:
            if u not in vertex_set or v not in vertex_set:
                raise InfeasibleError(f"edge ({u}, {v}) uses an unknown vertex")
            if u == v:
                raise InfeasibleError("self-loops are not allowed")

    @property
    def n_vertices(self) -> int:
        return len(self.vertices)

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def degree(self, vertex: int) -> int:
        return sum(1 for u, v in self.edges if vertex in (u, v))

    def is_cover(self, cover: Sequence[int]) -> bool:
        chosen = set(cover)
        return all(u in chosen or v in chosen for u, v in self.edges)

    def to_networkx(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(self.vertices)
        graph.add_edges_from(self.edges)
        return graph


def random_cubic_graph(n_vertices: int, seed: int | None = 0) -> VertexCoverInstance:
    """A random (near-)cubic graph via networkx's random regular generator.

    ``n_vertices`` must be even for a 3-regular graph to exist; smaller odd
    inputs fall back to degree 2 so the generator never fails.
    """
    if n_vertices < 4:
        raise InfeasibleError("random_cubic_graph needs at least 4 vertices")
    degree = 3 if n_vertices % 2 == 0 else 2
    graph = nx.random_regular_graph(degree, n_vertices, seed=seed)
    return VertexCoverInstance(
        tuple(sorted(graph.nodes)),
        tuple(sorted(tuple(sorted(edge)) for edge in graph.edges)),
    )


def greedy_vertex_cover(instance: VertexCoverInstance) -> list[int]:
    """The classical 2-approximation (take both endpoints of a maximal matching)."""
    cover: set[int] = set()
    for u, v in instance.edges:
        if u not in cover and v not in cover:
            cover.add(u)
            cover.add(v)
    return sorted(cover)


def exact_vertex_cover(
    instance: VertexCoverInstance, max_vertices: int = 24
) -> list[int]:
    """Exact minimum vertex cover by exhaustive search (small graphs only)."""
    if instance.n_vertices > max_vertices:
        raise InfeasibleError(
            f"exact_vertex_cover limited to {max_vertices} vertices"
        )
    for size in range(instance.n_vertices + 1):
        for candidate in itertools.combinations(instance.vertices, size):
            if instance.is_cover(candidate):
                return list(candidate)
    raise InfeasibleError("no vertex cover exists")  # pragma: no cover


def _copy_function(output_names: Sequence[str], input_names: Sequence[str]):
    def function(x: Mapping[str, int]) -> dict[str, int]:
        value = 0
        for name in input_names:
            value ^= int(x[name])
        return {name: value for name in output_names}

    return function


def vertex_cover_to_secure_view(instance: VertexCoverInstance) -> SecureViewProblem:
    """The Figure-5 reduction from vertex cover (unit costs, γ = 1)."""
    modules: list[Module] = []
    vertex_inputs: dict[int, list[Attribute]] = {v: [] for v in instance.vertices}

    # Edge modules x_uv: one external input, one output per endpoint.
    for index, (u, v) in enumerate(instance.edges):
        source = Attribute(f"e{index}_in", BOOLEAN, cost=1.0)
        out_u = Attribute(f"e{index}_to_{u}", BOOLEAN, cost=1.0)
        out_v = Attribute(f"e{index}_to_{v}", BOOLEAN, cost=1.0)
        modules.append(
            Module(
                f"x_{u}_{v}",
                [source],
                [out_u, out_v],
                _copy_function([out_u.name, out_v.name], [source.name]),
                private=True,
            )
        )
        vertex_inputs[u].append(out_u)
        vertex_inputs[v].append(out_v)

    # Vertex modules y_v: forward one data item to the collector z.
    collector_inputs: list[Attribute] = []
    for v in instance.vertices:
        inputs = vertex_inputs[v]
        if not inputs:
            inputs = [Attribute(f"isolated_{v}", BOOLEAN, cost=1.0)]
        output = Attribute(f"y{v}_out", BOOLEAN, cost=1.0)
        collector_inputs.append(output)
        modules.append(
            Module(
                f"y_{v}",
                inputs,
                [output],
                _copy_function([output.name], [a.name for a in inputs]),
                private=True,
            )
        )

    final = Attribute("z_out", BOOLEAN, cost=1.0)
    modules.append(
        Module(
            "z",
            collector_inputs,
            [final],
            _copy_function([final.name], [a.name for a in collector_inputs]),
            private=True,
        )
    )
    workflow = Workflow(
        modules, name=f"vertexcover[{instance.n_vertices}v,{instance.n_edges}e]"
    )

    requirements: dict[str, CardinalityRequirementList] = {}
    for u, v in instance.edges:
        requirements[f"x_{u}_{v}"] = CardinalityRequirementList(
            f"x_{u}_{v}", [CardinalityRequirement(0, 1)]
        )
    for v in instance.vertices:
        degree = max(instance.degree(v), 1)
        requirements[f"y_{v}"] = CardinalityRequirementList(
            f"y_{v}",
            [CardinalityRequirement(degree, 0), CardinalityRequirement(0, 1)],
        )
    requirements["z"] = CardinalityRequirementList(
        "z", [CardinalityRequirement(1, 0)]
    )
    return SecureViewProblem(
        workflow,
        gamma=2,
        requirements=requirements,
        meta={"reduction": "vertex_cover", "instance": instance},
    )
