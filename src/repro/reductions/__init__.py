"""The paper's hardness constructions as executable instance generators.

Each reduction maps a classical hard problem onto a Secure-View instance (or
a Safe-View question) exactly as in the corresponding proof, so benchmarks
can verify that optima are preserved and tests can exercise the boundary
cases the proofs rely on.

==============================  ==========================================
construction                    paper reference
==============================  ==========================================
set disjointness → Safe-View    Theorem 1 (Ω(N) data-supplier calls)
UNSAT → Safe-View               Theorem 2 (co-NP-hardness)
adaptive oracle adversary       Theorem 3 (2^Ω(k) oracle calls)
set cover → Secure-View         Theorem 5 hardness / Theorem 9
label cover → Secure-View       Theorem 6 (Fig. 4) / Theorem 10 (Fig. 6)
vertex cover → Secure-View      Theorem 7 APX-hardness (Fig. 5)
==============================  ==========================================
"""

from .label_cover import (
    LabelCoverInstance,
    exact_label_cover,
    greedy_label_cover,
    label_cover_to_general_secure_view,
    label_cover_to_set_secure_view,
    random_label_cover,
)
from .oracle_adversary import (
    AdversarialSafeViewOracle,
    candidate_special_sets,
    input_names,
    make_m1,
    make_m2,
    theorem3_costs,
)
from .set_cover import (
    SetCoverInstance,
    exact_set_cover,
    greedy_set_cover,
    random_set_cover,
    set_cover_to_general_secure_view,
    set_cover_to_secure_view,
)
from .set_disjointness import (
    CountingDataSupplier,
    DisjointnessInstance,
    build_disjointness_relation,
    disjointness_schema,
    random_disjointness_instance,
    safe_view_decision,
    safe_view_via_supplier,
)
from .unsat import (
    CNFFormula,
    brute_force_satisfiable,
    random_cnf,
    unsat_privacy_level,
    unsat_safe_view_decision,
    unsat_to_module,
)
from .vertex_cover import (
    VertexCoverInstance,
    exact_vertex_cover,
    greedy_vertex_cover,
    random_cubic_graph,
    vertex_cover_to_secure_view,
)

__all__ = [
    # set cover
    "SetCoverInstance",
    "random_set_cover",
    "greedy_set_cover",
    "exact_set_cover",
    "set_cover_to_secure_view",
    "set_cover_to_general_secure_view",
    # vertex cover
    "VertexCoverInstance",
    "random_cubic_graph",
    "greedy_vertex_cover",
    "exact_vertex_cover",
    "vertex_cover_to_secure_view",
    # label cover
    "LabelCoverInstance",
    "random_label_cover",
    "exact_label_cover",
    "greedy_label_cover",
    "label_cover_to_set_secure_view",
    "label_cover_to_general_secure_view",
    # set disjointness
    "DisjointnessInstance",
    "random_disjointness_instance",
    "CountingDataSupplier",
    "build_disjointness_relation",
    "disjointness_schema",
    "safe_view_decision",
    "safe_view_via_supplier",
    # unsat
    "CNFFormula",
    "random_cnf",
    "brute_force_satisfiable",
    "unsat_to_module",
    "unsat_safe_view_decision",
    "unsat_privacy_level",
    # oracle adversary
    "make_m1",
    "make_m2",
    "input_names",
    "theorem3_costs",
    "AdversarialSafeViewOracle",
    "candidate_special_sets",
]
