"""Minimum label cover and its two Secure-View reductions.

Label cover is the canonical starting point for super-polylogarithmic
hardness; the paper uses it twice:

* **Theorem 6 (Figure 4)** — Secure-View with *set constraints* in
  all-private workflows: a hub module ``z`` produces an item ``b_{u,ℓ}`` per
  (vertex, label) pair; every edge module ``x_{uw}`` lists one option
  ``{b_{u,ℓ1}, b_{w,ℓ2}}`` per relation pair ``(ℓ1, ℓ2) ∈ R_{uw}``.  A label
  assignment of total size K corresponds exactly to a secure view of cost K
  (Lemma 5).
* **Theorem 10 (Figure 6)** — Secure-View with *cardinality constraints* in
  general workflows: the (vertex, label) pairs become public modules
  ``z_{u,ℓ}`` of privatization cost 1; all data items cost 0, so again the
  solution cost equals the label-cover cost (Lemma 8).

Besides the reductions this module ships an instance type, a random
generator and exact/greedy label-cover solvers used as benchmark baselines.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.attributes import Attribute, BOOLEAN
from ..core.module import Module
from ..core.requirements import (
    CardinalityRequirement,
    CardinalityRequirementList,
    SetRequirement,
    SetRequirementList,
)
from ..core.secure_view import SecureViewProblem
from ..core.workflow import Workflow
from ..exceptions import InfeasibleError

__all__ = [
    "LabelCoverInstance",
    "random_label_cover",
    "exact_label_cover",
    "greedy_label_cover",
    "label_cover_to_set_secure_view",
    "label_cover_to_general_secure_view",
]


@dataclass(frozen=True)
class LabelCoverInstance:
    """A minimum label cover instance on a bipartite graph.

    ``relations[(u, w)]`` is the non-empty set of admissible label pairs
    ``(ℓ1, ℓ2)`` for the edge ``(u, w)`` with ``u`` on the left side and
    ``w`` on the right side.
    """

    left: tuple[str, ...]
    right: tuple[str, ...]
    labels: tuple[int, ...]
    relations: Mapping[tuple[str, str], frozenset[tuple[int, int]]]

    def __post_init__(self) -> None:
        left_set, right_set = set(self.left), set(self.right)
        for (u, w), pairs in self.relations.items():
            if u not in left_set or w not in right_set:
                raise InfeasibleError(f"edge ({u}, {w}) uses unknown vertices")
            if not pairs:
                raise InfeasibleError(f"edge ({u}, {w}) has an empty relation")
            for l1, l2 in pairs:
                if l1 not in self.labels or l2 not in self.labels:
                    raise InfeasibleError(f"edge ({u}, {w}) uses unknown labels")

    @property
    def vertices(self) -> tuple[str, ...]:
        return self.left + self.right

    @property
    def edges(self) -> tuple[tuple[str, str], ...]:
        return tuple(self.relations)

    def is_feasible(self, assignment: Mapping[str, frozenset[int]]) -> bool:
        """Does the label assignment satisfy every edge relation?"""
        for (u, w), pairs in self.relations.items():
            labels_u = assignment.get(u, frozenset())
            labels_w = assignment.get(w, frozenset())
            if not any((l1 in labels_u and l2 in labels_w) for l1, l2 in pairs):
                return False
        return True

    def cost(self, assignment: Mapping[str, frozenset[int]]) -> int:
        return sum(len(labels) for labels in assignment.values())


def random_label_cover(
    n_left: int,
    n_right: int,
    n_labels: int,
    pairs_per_edge: int = 2,
    edge_probability: float = 0.6,
    seed: int | None = 0,
) -> LabelCoverInstance:
    """A random label-cover instance with at least one edge per left vertex."""
    rng = random.Random(seed)
    left = tuple(f"u{i}" for i in range(n_left))
    right = tuple(f"w{i}" for i in range(n_right))
    labels = tuple(range(n_labels))
    relations: dict[tuple[str, str], frozenset[tuple[int, int]]] = {}
    all_pairs = [(l1, l2) for l1 in labels for l2 in labels]
    for u in left:
        attached = False
        for w in right:
            if rng.random() < edge_probability:
                count = min(pairs_per_edge, len(all_pairs))
                relations[(u, w)] = frozenset(rng.sample(all_pairs, count))
                attached = True
        if not attached:
            w = rng.choice(right)
            count = min(pairs_per_edge, len(all_pairs))
            relations[(u, w)] = frozenset(rng.sample(all_pairs, count))
    return LabelCoverInstance(left, right, labels, relations)


def exact_label_cover(
    instance: LabelCoverInstance, max_cost: int | None = None
) -> dict[str, frozenset[int]]:
    """Exact minimum label cover by exhaustive search over assignments.

    Enumerates assignments by increasing total label count; intended for the
    small instances the reduction benchmarks use.
    """
    vertices = instance.vertices
    labels = instance.labels
    ceiling = max_cost if max_cost is not None else len(vertices) * len(labels)

    # Candidate (vertex, label) picks; assignments are subsets of these.
    picks = [(vertex, label) for vertex in vertices for label in labels]
    for total in range(0, ceiling + 1):
        for chosen in itertools.combinations(picks, total):
            assignment: dict[str, set[int]] = {vertex: set() for vertex in vertices}
            for vertex, label in chosen:
                assignment[vertex].add(label)
            frozen = {v: frozenset(s) for v, s in assignment.items()}
            if instance.is_feasible(frozen):
                return frozen
    raise InfeasibleError("no feasible label assignment within the cost ceiling")


def greedy_label_cover(instance: LabelCoverInstance) -> dict[str, frozenset[int]]:
    """A simple feasible heuristic: per edge, add the first admissible pair."""
    assignment: dict[str, set[int]] = {vertex: set() for vertex in instance.vertices}
    for (u, w), pairs in instance.relations.items():
        if any(
            l1 in assignment[u] and l2 in assignment[w] for l1, l2 in pairs
        ):
            continue
        l1, l2 = min(pairs)
        assignment[u].add(l1)
        assignment[w].add(l2)
    return {v: frozenset(s) for v, s in assignment.items()}


def _broadcast(output_names: Sequence[str], input_name: str):
    def function(x: Mapping[str, int]) -> dict[str, int]:
        return {name: int(x[input_name]) for name in output_names}

    return function


def _parity(output_name: str, input_names: Sequence[str]):
    def function(x: Mapping[str, int]) -> dict[str, int]:
        value = 0
        for name in input_names:
            value ^= int(x[name])
        return {output_name: value}

    return function


def _pair_attr(vertex: str, label: int) -> str:
    return f"b_{vertex}_{label}"


def label_cover_to_set_secure_view(instance: LabelCoverInstance) -> SecureViewProblem:
    """The Figure-4 reduction (Theorem 6): set constraints, all-private."""
    pair_attrs = {
        (vertex, label): Attribute(_pair_attr(vertex, label), BOOLEAN, cost=1.0)
        for vertex in instance.vertices
        for label in instance.labels
    }
    source = Attribute("bz", BOOLEAN, cost=0.0)
    z = Module(
        "z",
        [source],
        list(pair_attrs.values()),
        _broadcast([a.name for a in pair_attrs.values()], source.name),
        private=True,
    )
    modules = [z]
    requirements: dict[str, SetRequirementList] = {
        "z": SetRequirementList(
            "z",
            [
                SetRequirement(frozenset(), frozenset({attr.name}))
                for attr in pair_attrs.values()
            ],
        )
    }
    empty: frozenset[str] = frozenset()
    for (u, w), pairs in instance.relations.items():
        inputs = [pair_attrs[(u, label)] for label in instance.labels]
        inputs += [pair_attrs[(w, label)] for label in instance.labels]
        output = Attribute(f"b_{u}_{w}", BOOLEAN, cost=0.0)
        name = f"x_{u}_{w}"
        modules.append(
            Module(
                name,
                inputs,
                [output],
                _parity(output.name, [a.name for a in inputs]),
                private=True,
            )
        )
        requirements[name] = SetRequirementList(
            name,
            [
                SetRequirement(
                    frozenset({_pair_attr(u, l1), _pair_attr(w, l2)}), empty
                )
                for l1, l2 in sorted(pairs)
            ],
        )
    workflow = Workflow(
        modules,
        name=f"labelcover-set[{len(instance.left)}+{len(instance.right)},L={len(instance.labels)}]",
    )
    hidable = frozenset(attr.name for attr in pair_attrs.values())
    return SecureViewProblem(
        workflow,
        gamma=2,
        requirements=requirements,
        hidable_attributes=hidable,
        meta={"reduction": "label_cover_set", "instance": instance},
    )


def label_cover_to_general_secure_view(
    instance: LabelCoverInstance,
) -> SecureViewProblem:
    """The Figure-6 reduction (Theorem 10): cardinality constraints, general.

    Private modules: ``v`` (hub), one ``y_{ℓ1,ℓ2}`` per label pair, one
    ``x_{u,w}`` per edge.  Public modules: ``z_{u,ℓ}`` per (vertex, label)
    pair, privatization cost 1.  All attributes cost 0.  Hiding the item
    ``d_{u,w,ℓ1,ℓ2}`` that feeds ``x_{u,w}`` also forces privatizing
    ``z_{u,ℓ1}`` and ``z_{w,ℓ2}``, so feasible solutions encode label
    assignments of the same cost.
    """
    source = Attribute("ds", BOOLEAN, cost=0.0)
    dv = Attribute("dv", BOOLEAN, cost=0.0)
    hub = Module("v", [source], [dv], _broadcast([dv.name], source.name), private=True)
    modules: list[Module] = [hub]

    used_pairs = sorted(
        {pair for pairs in instance.relations.values() for pair in pairs}
    )
    # Data item per (edge, label pair) and bookkeeping of who consumes what.
    edge_pair_attrs: dict[tuple[str, str, int, int], Attribute] = {}
    per_pair_outputs: dict[tuple[int, int], list[Attribute]] = {
        p: [] for p in used_pairs
    }
    per_public_inputs: dict[tuple[str, int], list[Attribute]] = {}
    per_edge_inputs: dict[tuple[str, str], list[Attribute]] = {
        edge: [] for edge in instance.relations
    }
    for (u, w), pairs in instance.relations.items():
        for l1, l2 in sorted(pairs):
            attr = Attribute(f"d_{u}_{w}_{l1}_{l2}", BOOLEAN, cost=0.0)
            edge_pair_attrs[(u, w, l1, l2)] = attr
            per_pair_outputs[(l1, l2)].append(attr)
            per_edge_inputs[(u, w)].append(attr)
            per_public_inputs.setdefault((u, l1), []).append(attr)
            per_public_inputs.setdefault((w, l2), []).append(attr)

    requirements: dict[str, CardinalityRequirementList] = {
        "v": CardinalityRequirementList("v", [CardinalityRequirement(0, 1)])
    }

    # Label-pair modules y_{l1,l2}: consume dv, produce the per-edge items
    # plus a final output d_{l1,l2}.
    for l1, l2 in used_pairs:
        outputs = list(per_pair_outputs[(l1, l2)])
        final = Attribute(f"dy_{l1}_{l2}", BOOLEAN, cost=0.0)
        outputs.append(final)
        name = f"y_{l1}_{l2}"
        modules.append(
            Module(
                name,
                [dv],
                outputs,
                _broadcast([a.name for a in outputs], dv.name),
                private=True,
            )
        )
        requirements[name] = CardinalityRequirementList(
            name, [CardinalityRequirement(1, 0)]
        )

    # Public modules z_{u,l}: consume every edge item mentioning (u, l).
    for (vertex, label), inputs in sorted(per_public_inputs.items()):
        output = Attribute(f"dz_{vertex}_{label}", BOOLEAN, cost=0.0)
        modules.append(
            Module(
                f"z_{vertex}_{label}",
                inputs,
                [output],
                _parity(output.name, [a.name for a in inputs]),
                private=False,
                privatization_cost=1.0,
            )
        )

    # Edge modules x_{u,w}: consume their per-pair items, need one hidden.
    for (u, w), inputs in per_edge_inputs.items():
        output = Attribute(f"dx_{u}_{w}", BOOLEAN, cost=0.0)
        name = f"x_{u}_{w}"
        modules.append(
            Module(
                name,
                inputs,
                [output],
                _parity(output.name, [a.name for a in inputs]),
                private=True,
            )
        )
        requirements[name] = CardinalityRequirementList(
            name, [CardinalityRequirement(1, 0)]
        )

    workflow = Workflow(
        modules,
        name=f"labelcover-general[{len(instance.left)}+{len(instance.right)},L={len(instance.labels)}]",
    )
    return SecureViewProblem(
        workflow,
        gamma=2,
        requirements=requirements,
        allow_privatization=True,
        meta={"reduction": "label_cover_general", "instance": instance},
    )
