"""The Theorem-2 construction: Safe-View is co-NP-hard for succinct modules.

Theorem 2 reduces UNSAT to the Safe-View problem: given a CNF formula ``g``
over variables ``x_1 .. x_ℓ``, build the module

    ``m(x_1, ..., x_ℓ, y) = ¬g(x_1, ..., x_ℓ) ∧ ¬y``

with boolean output ``z``.  With hidden attribute ``{y}`` (visible
``{x_1..x_ℓ, z}``) and Γ = 2:

    the view is safe  ⇔  ``g`` is unsatisfiable.

This module provides a tiny CNF representation, random k-CNF generation, a
brute-force satisfiability check (the ground truth), the module
construction, and the safety decision — the tests and the lower-bound
benchmark assert the equivalence above.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.attributes import Attribute, BOOLEAN
from ..core.module import Module
from ..core.privacy import is_standalone_private, standalone_privacy_level
from ..exceptions import PrivacyError

__all__ = [
    "CNFFormula",
    "random_cnf",
    "brute_force_satisfiable",
    "unsat_to_module",
    "unsat_safe_view_decision",
]


@dataclass(frozen=True)
class CNFFormula:
    """A CNF formula: a conjunction of clauses of non-zero integer literals.

    Literal ``+i`` means variable ``x_i`` and ``-i`` its negation
    (DIMACS-style, 1-based).
    """

    n_variables: int
    clauses: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            if not clause:
                raise PrivacyError("empty clauses are not allowed")
            for literal in clause:
                if literal == 0 or abs(literal) > self.n_variables:
                    raise PrivacyError(f"literal {literal} out of range")

    def evaluate(self, assignment: Sequence[int] | Mapping[int, int]) -> bool:
        """Evaluate the formula under a 0/1 assignment (1-based indexing)."""
        if isinstance(assignment, Mapping):
            lookup = dict(assignment)
        else:
            lookup = {index + 1: value for index, value in enumerate(assignment)}
        for clause in self.clauses:
            satisfied = False
            for literal in clause:
                value = lookup[abs(literal)]
                if (literal > 0 and value) or (literal < 0 and not value):
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True


def random_cnf(
    n_variables: int,
    n_clauses: int,
    clause_width: int = 3,
    seed: int | None = 0,
) -> CNFFormula:
    """A random k-CNF formula (clauses drawn uniformly, no tautologies)."""
    if n_variables < 1:
        raise PrivacyError("random_cnf needs at least one variable")
    rng = random.Random(seed)
    clauses = []
    width = min(clause_width, n_variables)
    for _ in range(n_clauses):
        variables = rng.sample(range(1, n_variables + 1), width)
        clause = tuple(
            variable if rng.random() < 0.5 else -variable for variable in variables
        )
        clauses.append(clause)
    return CNFFormula(n_variables, tuple(clauses))


def brute_force_satisfiable(formula: CNFFormula) -> bool:
    """Ground-truth satisfiability by enumerating all assignments."""
    for assignment in itertools.product((0, 1), repeat=formula.n_variables):
        if formula.evaluate(assignment):
            return True
    return False


def unsat_to_module(formula: CNFFormula) -> Module:
    """The Theorem-2 module ``m(x_1..x_ℓ, y) = ¬g(x) ∧ ¬y`` with output ``z``.

    The module has a succinct description (the formula itself); its relation
    has ``2^(ℓ+1)`` rows and is only materialized by the explicit privacy
    checks, mirroring the role of the data supplier in the proof.
    """
    variable_names = [f"x{i}" for i in range(1, formula.n_variables + 1)]
    inputs = [Attribute(name, BOOLEAN, cost=1.0) for name in variable_names]
    inputs.append(Attribute("y", BOOLEAN, cost=1.0))
    output = Attribute("z", BOOLEAN, cost=1.0)

    def function(values: Mapping[str, int]) -> dict[str, int]:
        assignment = {
            index + 1: int(values[name]) for index, name in enumerate(variable_names)
        }
        g_value = formula.evaluate(assignment)
        return {"z": int((not g_value) and not values["y"])}

    return Module("unsat_gadget", inputs, [output], function)


def unsat_safe_view_decision(formula: CNFFormula, gamma: int = 2) -> bool:
    """Is the view hiding only ``y`` safe for Γ?  Equals UNSAT at Γ = 2.

    If ``g`` is unsatisfiable, then ``z = ¬y`` on every row, so with ``y``
    hidden every input has two candidate outputs.  If some assignment
    satisfies ``g``, its rows force ``z = 0`` for both values of ``y`` and
    the view leaks the output exactly.
    """
    module = unsat_to_module(formula)
    visible = set(module.attribute_names) - {"y"}
    return is_standalone_private(module, visible, gamma)


def unsat_privacy_level(formula: CNFFormula) -> int:
    """The exact privacy level of the ``y``-hiding view (1 or 2)."""
    module = unsat_to_module(formula)
    visible = set(module.attribute_names) - {"y"}
    return standalone_privacy_level(module, visible)
