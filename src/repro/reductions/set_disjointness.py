"""The Theorem-1 construction: Safe-View needs Ω(N) data-supplier calls.

Theorem 1 reduces two-party set disjointness to the Safe-View decision
problem.  Given sets ``A, B ⊆ {1..N}`` the module has input attributes
``a, b, id`` and output ``y = a ∧ b``; row ``i ≤ N`` encodes membership of
element ``i`` in ``A`` and ``B``, and row ``N+1`` is the fixed ``(1, 0)``
row.  The safety question the proof actually exercises is "do both output
values occur?", i.e.

    the view hiding the inputs is safe for Γ = 2  ⇔  ``A ∩ B ≠ ∅``.

Reproduction note: the paper states the checked view as ``V = {id, y}``, but
its argument groups *all* rows together, which under Definition 2 is the
grouping obtained when the row identifier is hidden as well.  We therefore
check ``V = {y}`` (hidden ``{a, b, id}``); this preserves exactly the
behaviour the theorem needs — the answer equals disjointness, and deciding
it requires scanning Ω(N) rows through the data supplier.

The :class:`CountingDataSupplier` hands out rows on demand and counts how
many were requested, so the benchmark can demonstrate that deciding safety
requires reading essentially the whole relation, while the reduction's
correctness is asserted by the tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from ..core.attributes import Attribute, BOOLEAN, Schema, integer_domain
from ..core.relation import Relation
from ..exceptions import PrivacyError

__all__ = [
    "DisjointnessInstance",
    "random_disjointness_instance",
    "CountingDataSupplier",
    "build_disjointness_relation",
    "disjointness_schema",
    "safe_view_decision",
    "safe_view_via_supplier",
]


@dataclass(frozen=True)
class DisjointnessInstance:
    """Alice's set ``A`` and Bob's set ``B`` over the universe ``{1..n}``."""

    universe_size: int
    alice: frozenset[int]
    bob: frozenset[int]

    def __post_init__(self) -> None:
        for name, side in (("alice", self.alice), ("bob", self.bob)):
            if not all(1 <= element <= self.universe_size for element in side):
                raise PrivacyError(f"{name}'s set leaves the universe")

    @property
    def intersects(self) -> bool:
        return bool(self.alice & self.bob)


def random_disjointness_instance(
    universe_size: int,
    density: float = 0.3,
    force_disjoint: bool | None = None,
    seed: int | None = 0,
) -> DisjointnessInstance:
    """Random instance; ``force_disjoint`` pins the answer when not ``None``."""
    rng = random.Random(seed)
    alice = {i for i in range(1, universe_size + 1) if rng.random() < density}
    bob = {i for i in range(1, universe_size + 1) if rng.random() < density}
    if force_disjoint is True:
        bob -= alice
    elif force_disjoint is False and not (alice & bob):
        pick = rng.randint(1, universe_size)
        alice.add(pick)
        bob.add(pick)
    return DisjointnessInstance(universe_size, frozenset(alice), frozenset(bob))


def disjointness_schema(universe_size: int) -> Schema:
    """Schema of the Theorem-1 relation: inputs a, b, id and output y."""
    return Schema(
        [
            Attribute("a", BOOLEAN, cost=1.0),
            Attribute("b", BOOLEAN, cost=1.0),
            Attribute("id", integer_domain(universe_size + 1, start=1), cost=1.0),
            Attribute("y", BOOLEAN, cost=1.0),
        ]
    )


def _row(instance: DisjointnessInstance, index: int) -> dict[str, int]:
    if index <= instance.universe_size:
        a = 1 if index in instance.alice else 0
        b = 1 if index in instance.bob else 0
    else:  # the extra (1, 0) row of the construction
        a, b = 1, 0
    return {"a": a, "b": b, "id": index, "y": a & b}


class CountingDataSupplier:
    """The "data supplier" of Theorem 1: serves rows on demand, counts calls."""

    def __init__(self, instance: DisjointnessInstance) -> None:
        self.instance = instance
        self.calls = 0

    @property
    def n_rows(self) -> int:
        return self.instance.universe_size + 1

    def fetch(self, index: int) -> dict[str, int]:
        """Return row ``index`` (1-based) of the relation R."""
        if not 1 <= index <= self.n_rows:
            raise PrivacyError(f"row index {index} out of range")
        self.calls += 1
        return _row(self.instance, index)

    def fetch_all(self) -> Iterable[dict[str, int]]:
        for index in range(1, self.n_rows + 1):
            yield self.fetch(index)


def build_disjointness_relation(instance: DisjointnessInstance) -> Relation:
    """Materialize the full Theorem-1 relation (N+1 rows)."""
    schema = disjointness_schema(instance.universe_size)
    rows = [_row(instance, index) for index in range(1, instance.universe_size + 2)]
    return Relation(schema, rows)


def safe_view_decision(instance: DisjointnessInstance, gamma: int = 2) -> bool:
    """Ground truth: is the input-hiding view safe for Γ?

    Checks Definition 2 on the materialized relation with visible set
    ``{y}`` (see the module docstring for why the row identifier is hidden
    along with ``a`` and ``b``); at Γ = 2 the answer equals ``A ∩ B ≠ ∅``.
    """
    relation = build_disjointness_relation(instance)
    from ..core.module import Module
    from ..core.privacy import standalone_out_counts

    schema = disjointness_schema(instance.universe_size)

    def function(x):  # pragma: no cover - never called on hidden-domain rows
        return {"y": x["a"] & x["b"]}

    module = Module(
        "disjointness",
        [schema["a"], schema["b"], schema["id"]],
        [schema["y"]],
        function,
    )
    counts = standalone_out_counts(module, {"y"}, relation=relation)
    return min(counts.values()) >= gamma


def safe_view_via_supplier(
    supplier: CountingDataSupplier, gamma: int = 2
) -> bool:
    """Decide safety of V = {id, y} by scanning rows through the supplier.

    Scans rows until two distinct ``y`` values are seen (early exit) or the
    relation is exhausted.  The benchmark reports ``supplier.calls`` to show
    that "no" instances require reading all N+1 rows, matching the Ω(N)
    communication lower bound.
    """
    if gamma != 2:
        raise PrivacyError("the Theorem-1 construction is stated for Γ = 2")
    seen: set[int] = set()
    for index in range(1, supplier.n_rows + 1):
        row = supplier.fetch(index)
        seen.add(row["y"])
        if len(seen) >= gamma:
            return True
    return False
