"""Set cover and its reductions to Secure-View.

Two hardness proofs in the paper go through minimum set cover:

* **Theorem 5 (lower bound)** — Secure-View with cardinality constraints in
  all-private workflows is Ω(log n)-hard: element modules ``f_j`` demand one
  hidden incoming data item, the extra module ``z`` demands one hidden
  outgoing data item, and the only hidable data are the "subset" items
  ``a_i`` shared between ``z`` and the elements ``u_j ∈ S_i``.
* **Theorem 9** — in *general* workflows the problem stays Ω(log n)-hard even
  without data sharing: subsets become public modules with privatization
  cost 1, elements become private modules demanding one hidden incoming
  edge, and every edge has cost 0 — paying happens only through
  privatization.

This module provides a set-cover instance type, exact and greedy set-cover
solvers (the baselines the reduction benchmarks compare against), a random
instance generator, and both workflow reductions.  Lemma "cover of size K
⟺ secure view of cost K" is checked empirically by the tests/benchmarks.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.attributes import Attribute, BOOLEAN
from ..core.module import Module
from ..core.requirements import (
    CardinalityRequirement,
    CardinalityRequirementList,
)
from ..core.secure_view import SecureViewProblem
from ..core.workflow import Workflow
from ..exceptions import InfeasibleError

__all__ = [
    "SetCoverInstance",
    "random_set_cover",
    "greedy_set_cover",
    "exact_set_cover",
    "set_cover_to_secure_view",
    "set_cover_to_general_secure_view",
]


@dataclass(frozen=True)
class SetCoverInstance:
    """A minimum set cover instance (universe + family of subsets)."""

    universe: frozenset[int]
    subsets: tuple[frozenset[int], ...]

    def __post_init__(self) -> None:
        covered = frozenset().union(*self.subsets) if self.subsets else frozenset()
        if not self.universe <= covered:
            raise InfeasibleError("the subsets do not cover the universe")

    @property
    def n_elements(self) -> int:
        return len(self.universe)

    @property
    def n_subsets(self) -> int:
        return len(self.subsets)

    def is_cover(self, selection: Sequence[int]) -> bool:
        """Do the selected subset indices cover the universe?"""
        covered: set[int] = set()
        for index in selection:
            covered |= self.subsets[index]
        return self.universe <= covered


def random_set_cover(
    n_elements: int,
    n_subsets: int,
    element_probability: float = 0.3,
    seed: int | None = 0,
) -> SetCoverInstance:
    """A random set-cover instance (each element joins each subset i.i.d.).

    Every element is additionally forced into at least one subset so the
    instance is always feasible.
    """
    rng = random.Random(seed)
    universe = frozenset(range(n_elements))
    subsets = [set() for _ in range(n_subsets)]
    for element in universe:
        joined = False
        for subset in subsets:
            if rng.random() < element_probability:
                subset.add(element)
                joined = True
        if not joined:
            subsets[rng.randrange(n_subsets)].add(element)
    return SetCoverInstance(universe, tuple(frozenset(s) for s in subsets))


def greedy_set_cover(instance: SetCoverInstance) -> list[int]:
    """The classical greedy ln(n)-approximation for set cover."""
    uncovered = set(instance.universe)
    chosen: list[int] = []
    while uncovered:
        best_index = max(
            range(instance.n_subsets),
            key=lambda index: len(instance.subsets[index] & uncovered),
        )
        gain = instance.subsets[best_index] & uncovered
        if not gain:
            raise InfeasibleError("greedy set cover stalled; instance infeasible")
        chosen.append(best_index)
        uncovered -= gain
    return chosen


def exact_set_cover(instance: SetCoverInstance, max_subsets: int = 24) -> list[int]:
    """Exact minimum set cover by exhaustive search over subset selections.

    Intended for the small instances the reduction benchmarks use; raises
    when the family is too large to enumerate.
    """
    if instance.n_subsets > max_subsets:
        raise InfeasibleError(
            f"exact_set_cover limited to {max_subsets} subsets "
            f"(got {instance.n_subsets})"
        )
    indices = range(instance.n_subsets)
    for size in range(0, instance.n_subsets + 1):
        for selection in itertools.combinations(indices, size):
            if instance.is_cover(selection):
                return list(selection)
    raise InfeasibleError("no cover exists")  # pragma: no cover - guarded by init


def _parity_function(output_name: str, input_names: Sequence[str]):
    def function(x: Mapping[str, int]) -> dict[str, int]:
        value = 0
        for name in input_names:
            value ^= int(x[name])
        return {output_name: value}

    return function


def _broadcast_function(output_names: Sequence[str], input_name: str):
    def function(x: Mapping[str, int]) -> dict[str, int]:
        return {name: int(x[input_name]) for name in output_names}

    return function


def set_cover_to_secure_view(instance: SetCoverInstance) -> SecureViewProblem:
    """The Theorem-5 reduction: all-private workflow, cardinality constraints.

    The workflow has one hub module ``z`` broadcasting a subset-item ``a_i``
    per subset, and one module ``f_j`` per universe element consuming the
    items of the subsets containing it.  Only the ``a_i`` are hidable (cost
    1 each); ``z`` requires one hidden output and every ``f_j`` one hidden
    input, so minimum-cost secure views correspond exactly to minimum set
    covers.
    """
    subset_attrs = [
        Attribute(f"a{i}", BOOLEAN, cost=1.0) for i in range(instance.n_subsets)
    ]
    source = Attribute("bs", BOOLEAN, cost=0.0)
    z = Module(
        "z",
        [source],
        subset_attrs,
        _broadcast_function([a.name for a in subset_attrs], source.name),
        private=True,
    )
    modules = [z]
    for element in sorted(instance.universe):
        member_attrs = [
            subset_attrs[i]
            for i in range(instance.n_subsets)
            if element in instance.subsets[i]
        ]
        output = Attribute(f"b{element}", BOOLEAN, cost=0.0)
        modules.append(
            Module(
                f"f{element}",
                member_attrs,
                [output],
                _parity_function(output.name, [a.name for a in member_attrs]),
                private=True,
            )
        )
    workflow = Workflow(
        modules, name=f"setcover[{instance.n_elements}x{instance.n_subsets}]"
    )

    requirements: dict[str, CardinalityRequirementList] = {
        "z": CardinalityRequirementList("z", [CardinalityRequirement(0, 1)]),
    }
    for element in sorted(instance.universe):
        requirements[f"f{element}"] = CardinalityRequirementList(
            f"f{element}", [CardinalityRequirement(1, 0)]
        )
    hidable = frozenset(a.name for a in subset_attrs)
    return SecureViewProblem(
        workflow,
        gamma=2,
        requirements=requirements,
        hidable_attributes=hidable,
        meta={"reduction": "set_cover", "instance": instance},
    )


def set_cover_to_general_secure_view(instance: SetCoverInstance) -> SecureViewProblem:
    """The Theorem-9 reduction: general workflow, no data sharing.

    Subsets become *public* modules with privatization cost 1, elements
    become private modules requiring one hidden incoming edge, and all
    attributes cost 0, so the entire solution cost comes from privatizing
    the public "subset" modules touched by hidden edges — i.e. from the set
    cover.
    """
    modules: list[Module] = []
    element_inputs: dict[int, list[Attribute]] = {e: [] for e in instance.universe}
    for i, subset in enumerate(instance.subsets):
        source = Attribute(f"a{i}", BOOLEAN, cost=0.0)
        edge_attrs = [
            Attribute(f"b_{i}_{element}", BOOLEAN, cost=0.0)
            for element in sorted(subset)
        ]
        if not edge_attrs:
            # A subset containing no elements still needs an output attribute.
            edge_attrs = [Attribute(f"b_{i}_none", BOOLEAN, cost=0.0)]
        modules.append(
            Module(
                f"S{i}",
                [source],
                edge_attrs,
                _broadcast_function([a.name for a in edge_attrs], source.name),
                private=False,
                privatization_cost=1.0,
            )
        )
        for attr, element in zip(edge_attrs, sorted(subset)):
            element_inputs[element].append(attr)
    for element in sorted(instance.universe):
        inputs = element_inputs[element]
        output = Attribute(f"out_{element}", BOOLEAN, cost=0.0)
        modules.append(
            Module(
                f"u{element}",
                inputs,
                [output],
                _parity_function(output.name, [a.name for a in inputs]),
                private=True,
            )
        )
    workflow = Workflow(
        modules, name=f"setcover-general[{instance.n_elements}x{instance.n_subsets}]"
    )
    requirements = {
        f"u{element}": CardinalityRequirementList(
            f"u{element}", [CardinalityRequirement(1, 0)]
        )
        for element in sorted(instance.universe)
    }
    return SecureViewProblem(
        workflow,
        gamma=2,
        requirements=requirements,
        allow_privatization=True,
        meta={"reduction": "set_cover_general", "instance": instance},
    )
