"""The Theorem-3 construction: Secure-View needs 2^Ω(k) Safe-View oracle calls.

Theorem 3 shows that even with a free Safe-View oracle, finding (or even
approximating the cost of) a minimum-cost safe subset requires exponentially
many oracle calls.  The proof plays an adaptive adversary game with two
threshold functions on ``ℓ`` boolean inputs (``ℓ`` divisible by 4) and one
output:

* ``m1(x) = 1``  iff at least ``ℓ/4`` inputs are 1,
* ``m2(x) = 1``  iff at least ``ℓ/4`` inputs are 1 *and* some input outside
  the special set ``A`` (``|A| = ℓ/2``) is 1.

Every input costs 1 and the output costs ``ℓ``, so safe hidden subsets never
include the output.  For ``m1`` the cheapest safe hidden subset costs
``3ℓ/4`` (more than ``3ℓ/4`` inputs must be hidden); for ``m2`` hiding the
complement of ``A`` costs only ``ℓ/2``.  The adversary answers every query
according to ``m1``'s safety pattern:

* (P1) a visible input set of size < ``ℓ/4`` is safe,
* (P2) anything larger is unsafe,

and such answers stay consistent with ``m2`` for *every* candidate ``A``
that is not a superset of a queried visible set — of which exponentially
many survive any sub-exponential number of queries.

This module implements the two functions as library modules (so their
claimed safety pattern can be verified with the real privacy check), the
adaptive adversary with candidate tracking, and the resulting lower-bound
"game" used by the benchmark.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.attributes import Attribute, BOOLEAN
from ..core.module import Module
from ..exceptions import PrivacyError

__all__ = [
    "make_m1",
    "make_m2",
    "input_names",
    "theorem3_costs",
    "AdversarialSafeViewOracle",
    "candidate_special_sets",
]


def input_names(ell: int) -> list[str]:
    """The input attribute names ``x1 .. xℓ`` of the construction."""
    return [f"x{i}" for i in range(1, ell + 1)]


def _check_ell(ell: int) -> None:
    if ell < 4 or ell % 4 != 0:
        raise PrivacyError("the Theorem-3 construction needs ℓ divisible by 4, ℓ >= 4")


def theorem3_costs(ell: int) -> dict[str, float]:
    """Attribute costs of the construction: inputs cost 1, the output costs ℓ."""
    _check_ell(ell)
    costs = {name: 1.0 for name in input_names(ell)}
    costs["y"] = float(ell)
    return costs


def _build_module(ell: int, name: str, predicate) -> Module:
    costs = theorem3_costs(ell)
    inputs = [Attribute(attr, BOOLEAN, cost=costs[attr]) for attr in input_names(ell)]
    output = Attribute("y", BOOLEAN, cost=costs["y"])

    def function(values):
        bits = [int(values[attr]) for attr in input_names(ell)]
        return {"y": int(predicate(bits))}

    return Module(name, inputs, [output], function)


def make_m1(ell: int) -> Module:
    """``m1``: 1 iff at least ℓ/4 inputs are 1."""
    _check_ell(ell)
    threshold = ell // 4

    def predicate(bits: Sequence[int]) -> bool:
        return sum(bits) >= threshold

    return _build_module(ell, "m1", predicate)


def make_m2(ell: int, special: Iterable[str]) -> Module:
    """``m2``: 1 iff at least ℓ/4 inputs are 1 and some input outside A is 1."""
    _check_ell(ell)
    special_set = set(special)
    names = input_names(ell)
    if not special_set <= set(names) or len(special_set) != ell // 2:
        raise PrivacyError(
            "the special set A must contain exactly ℓ/2 input attributes"
        )
    threshold = ell // 4
    outside_positions = [i for i, name in enumerate(names) if name not in special_set]

    def predicate(bits: Sequence[int]) -> bool:
        if sum(bits) < threshold:
            return False
        return any(bits[i] for i in outside_positions)

    return _build_module(ell, "m2", predicate)


def candidate_special_sets(ell: int) -> list[frozenset[str]]:
    """All candidate special sets A (size ℓ/2) — the adversary's secret space."""
    _check_ell(ell)
    names = input_names(ell)
    return [frozenset(combo) for combo in itertools.combinations(names, ell // 2)]


@dataclass
class AdversarialSafeViewOracle:
    """The adaptive Safe-View oracle of the Theorem-3 lower-bound game.

    Queries are visible subsets of the input attributes (the output is never
    worth hiding, so the interesting queries never expose it to the budget).
    Answers follow (P1)/(P2); the oracle tracks which candidate special sets
    remain consistent with all answers given so far, so the experiment can
    report how slowly the candidate space shrinks.
    """

    ell: int
    track_candidates: bool = True
    calls: int = 0
    eliminated: int = 0
    _queries: list[frozenset[str]] = field(default_factory=list)
    _candidates: list[frozenset[str]] | None = None

    def __post_init__(self) -> None:
        _check_ell(self.ell)
        if self.track_candidates:
            self._candidates = candidate_special_sets(self.ell)

    # -- the oracle interface ----------------------------------------------------
    def is_safe(self, visible_inputs: Iterable[str]) -> bool:
        """Answer a Safe-View query per (P1)/(P2)."""
        visible = frozenset(visible_inputs)
        unknown = visible - set(input_names(self.ell))
        if unknown:
            raise PrivacyError(f"unknown input attributes {sorted(unknown)!r}")
        self.calls += 1
        self._queries.append(visible)
        answer = len(visible) < self.ell // 4
        if not answer and self._candidates is not None:
            before = len(self._candidates)
            # A NO answer is inconsistent with m2 for candidates A ⊇ visible.
            self._candidates = [
                candidate
                for candidate in self._candidates
                if not visible <= candidate
            ]
            self.eliminated += before - len(self._candidates)
        return answer

    def is_safe_hidden(self, hidden_inputs: Iterable[str]) -> bool:
        """Same oracle phrased on the hidden side."""
        hidden = set(hidden_inputs)
        visible = [name for name in input_names(self.ell) if name not in hidden]
        return self.is_safe(visible)

    # -- adversary bookkeeping ------------------------------------------------------
    @property
    def remaining_candidates(self) -> int:
        """Number of special sets A still consistent with every answer."""
        if self._candidates is None:
            raise PrivacyError("candidate tracking is disabled for this oracle")
        return len(self._candidates)

    @property
    def total_candidates(self) -> int:
        return math.comb(self.ell, self.ell // 2)

    def max_eliminated_per_query(self) -> int:
        """The C(3ℓ/4, ℓ/4) bound on candidates killed by one query."""
        return math.comb(3 * self.ell // 4, self.ell // 4)

    def query_lower_bound(self) -> float:
        """The (4/3)^(ℓ/2) lower bound on queries needed to empty the space."""
        return self.total_candidates / self.max_eliminated_per_query()

    def resolve(self, claimed_cheap_solution_exists: bool) -> Module:
        """End the game: reveal a module that makes the claimed answer wrong.

        If the algorithm claims a safe hidden subset of cost ≤ ℓ/2 exists,
        the adversary reveals ``m1`` (whose cheapest safe subset costs
        3ℓ/4); if the algorithm claims none exists and some candidate ``A``
        survives, the adversary reveals ``m2`` with that ``A``.  When no
        candidate survives the algorithm genuinely distinguished the two and
        the adversary concedes by revealing ``m1``.
        """
        if claimed_cheap_solution_exists:
            return make_m1(self.ell)
        if self._candidates:
            return make_m2(self.ell, next(iter(self._candidates)))
        return make_m1(self.ell)

    # -- ground-truth costs ------------------------------------------------------------
    def m1_optimal_cost(self) -> float:
        """Cheapest safe hidden subset cost for ``m1``: 3ℓ/4 + 1 inputs...

        Precisely, ``m1`` is safe exactly when fewer than ℓ/4 inputs stay
        visible, i.e. at least ``3ℓ/4 + 1`` inputs are hidden; with unit
        input costs the optimum is ``3ℓ/4 + 1``.  The paper rounds this to
        "more than 3ℓ/4"; the exact value is what the tests assert.
        """
        return 3 * self.ell / 4 + 1

    def m2_optimal_cost(self) -> float:
        """Cheapest safe hidden subset cost for ``m2``: hide the ℓ/2 inputs outside A."""
        return self.ell / 2
