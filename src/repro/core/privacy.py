"""Γ-privacy checks for standalone modules and workflows.

Two layers are provided:

* a fast, exact **standalone** check based on the counting condition of
  Appendix A.4: for a visible subset ``V``, a module is Γ-standalone-private
  iff for every visible-input value the executions sharing that visible
  input exhibit at least ``Γ / prod_{a in O\\V} |Δ_a|`` distinct visible
  output values.  Equivalently ``|OUT_x| = D_x * prod_{a in O\\V} |Δ_a|``
  where ``D_x`` is that distinct count; this is what
  :func:`standalone_out_counts` returns.
* an exact but exponential **workflow** check (Definitions 5/6) via
  possible-worlds enumeration.  It is intended for small instances and for
  validating the composition theorems (Theorems 4 and 8) empirically.

Every check accepts a ``backend`` argument: ``"kernel"`` (the default, see
:mod:`repro.kernel`) evaluates the same conditions on bit-packed relations;
``"reference"`` keeps the original per-tuple implementations as the
validation oracle.  The two backends are property-tested to agree.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..exceptions import PrivacyError
from .attributes import Value
from .module import Module
from .possible_worlds import workflow_out_sets
from .relation import Relation
from .workflow import Workflow

__all__ = [
    "hidden_output_completions",
    "standalone_out_counts",
    "standalone_out_set",
    "standalone_privacy_level",
    "is_standalone_private",
    "workflow_privacy_level",
    "is_workflow_private",
    "is_gamma_private_workflow",
]


# ---------------------------------------------------------------------------
# Standalone privacy (Definition 2, Appendix A.4)
# ---------------------------------------------------------------------------

def hidden_output_completions(module: Module, visible: Iterable[str]) -> int:
    """``prod_{a in O \\ V} |Δ_a|``: completions of the hidden output attributes."""
    visible_set = set(visible)
    size = 1
    for name in module.output_names:
        if name not in visible_set:
            size *= module.output_schema[name].domain.size
    return size


def standalone_out_counts(
    module: Module,
    visible: Iterable[str],
    relation: Relation | None = None,
    backend: str | None = None,
) -> dict[tuple[Value, ...], int]:
    """``|OUT_x|`` for every visible-input value of the module.

    The returned dict maps each distinct *visible input* value (a tuple in
    the order of the module's visible input attributes) to the size of the
    OUT set of any input ``x`` with that visible part.  The relation
    defaults to the module's full standalone relation but can be restricted
    (e.g. to the executions actually occurring inside a workflow).
    """
    from ..kernel import compile_module, resolve_backend

    if resolve_backend(backend) == "kernel":
        return compile_module(module, relation).out_counts(visible)
    rel = relation if relation is not None else module.relation()
    visible_set = set(visible)
    vin = [name for name in module.input_names if name in visible_set]
    vout = [name for name in module.output_names if name in visible_set]
    completions = hidden_output_completions(module, visible_set)

    groups: dict[tuple[Value, ...], set[tuple[Value, ...]]] = {}
    for row in rel:
        key = tuple(row[name] for name in vin)
        out_key = tuple(row[name] for name in vout)
        groups.setdefault(key, set()).add(out_key)
    return {key: len(outs) * completions for key, outs in groups.items()}


def standalone_out_set(
    module: Module,
    x: Mapping[str, Value],
    visible: Iterable[str],
    relation: Relation | None = None,
) -> set[tuple[Value, ...]]:
    """The explicit set ``OUT_{x,m}`` of candidate outputs for input ``x``.

    Follows Lemma 2: ``y`` is a candidate output iff some execution shares
    ``x``'s visible input values and ``y``'s visible output values; the
    hidden output attributes are then free.
    """
    rel = relation if relation is not None else module.relation()
    visible_set = set(visible)
    vin = [name for name in module.input_names if name in visible_set]
    vout = [name for name in module.output_names if name in visible_set]
    hout = [name for name in module.output_names if name not in visible_set]
    key = tuple(x[name] for name in vin)

    visible_out_values = {
        tuple(row[name] for name in vout)
        for row in rel
        if tuple(row[name] for name in vin) == key
    }
    outputs: set[tuple[Value, ...]] = set()
    for vis_out in visible_out_values:
        for hidden in module.output_schema.iter_assignments(hout):
            full = dict(zip(vout, vis_out))
            full.update(hidden)
            outputs.add(tuple(full[name] for name in module.output_names))
    return outputs


def standalone_privacy_level(
    module: Module,
    visible: Iterable[str],
    relation: Relation | None = None,
    backend: str | None = None,
) -> int:
    """The largest Γ for which the module is Γ-standalone-private w.r.t. ``V``.

    This is ``min_x |OUT_x|``; a module with an empty relation is vacuously
    private at any level and reported as its range size.
    """
    from ..kernel import compile_module, resolve_backend

    if resolve_backend(backend) == "kernel":
        return compile_module(module, relation).privacy_level(visible)
    counts = standalone_out_counts(
        module, visible, relation=relation, backend="reference"
    )
    if not counts:
        return module.range_size()
    return min(counts.values())


def is_standalone_private(
    module: Module,
    visible: Iterable[str],
    gamma: int,
    relation: Relation | None = None,
    backend: str | None = None,
) -> bool:
    """Definition 2: is ``V`` a safe subset for the module and Γ?"""
    if gamma < 1:
        raise PrivacyError("the privacy requirement Γ must be at least 1")
    return (
        standalone_privacy_level(module, visible, relation=relation, backend=backend)
        >= gamma
    )


# ---------------------------------------------------------------------------
# Workflow privacy (Definitions 4, 5 and 6)
# ---------------------------------------------------------------------------

def workflow_privacy_level(
    workflow: Workflow,
    module_name: str,
    visible: Iterable[str],
    hidden_public_modules: Iterable[str] = (),
    relation: Relation | None = None,
    stop_at: int | None = None,
    work_limit: int | None = None,
    backend: str | None = None,
) -> int:
    """``min_x |OUT_{x,W}|`` for one module of the workflow.

    This is an exact, exponential computation via possible-worlds
    enumeration; ``stop_at`` short-circuits each OUT computation once enough
    distinct outputs have been found (pass ``stop_at=Γ`` when only a yes/no
    answer is needed).
    """
    rel = relation if relation is not None else workflow.provenance_relation()
    kwargs: dict = {}
    if work_limit is not None:
        kwargs["work_limit"] = work_limit
    out_sets = workflow_out_sets(
        workflow,
        module_name,
        visible,
        hidden_public_modules=hidden_public_modules,
        relation=rel,
        stop_at=stop_at,
        backend=backend,
        **kwargs,
    )
    if not out_sets:
        return workflow.module(module_name).range_size()
    return min(len(out) for out in out_sets.values())


def is_workflow_private(
    workflow: Workflow,
    module_name: str,
    visible: Iterable[str],
    gamma: int,
    hidden_public_modules: Iterable[str] = (),
    relation: Relation | None = None,
    work_limit: int | None = None,
    backend: str | None = None,
) -> bool:
    """Definition 5/6: is one module Γ-workflow-private w.r.t. ``V`` (and P)?"""
    if gamma < 1:
        raise PrivacyError("the privacy requirement Γ must be at least 1")
    level = workflow_privacy_level(
        workflow,
        module_name,
        visible,
        hidden_public_modules=hidden_public_modules,
        relation=relation,
        stop_at=gamma,
        work_limit=work_limit,
        backend=backend,
    )
    return level >= gamma


def is_gamma_private_workflow(
    workflow: Workflow,
    visible: Iterable[str],
    gamma: int,
    hidden_public_modules: Iterable[str] = (),
    relation: Relation | None = None,
    work_limit: int | None = None,
    backend: str | None = None,
) -> bool:
    """Is the whole workflow Γ-private (every private module private)?

    Public modules carry no privacy requirement (their behaviour is already
    known); privatized public modules likewise need no guarantee in the
    paper's formulation — privatization is only a tool to protect private
    modules.
    """
    rel = relation if relation is not None else workflow.provenance_relation()
    for module in workflow.private_modules:
        if not is_workflow_private(
            workflow,
            module.name,
            visible,
            gamma,
            hidden_public_modules=hidden_public_modules,
            relation=rel,
            work_limit=work_limit,
            backend=backend,
        ):
            return False
    return True
