"""Workflows: DAGs of modules and their provenance relations.

A workflow ``W`` (Section 2.3) consists of modules ``m_1 ... m_n`` connected
in a directed acyclic multigraph.  The wiring is expressed purely through
attribute names:

1. for each module, input and output attribute names are disjoint,
2. output attribute names of distinct modules are disjoint (each data item
   is produced by a unique module),
3. whenever an output of ``m_i`` is fed to ``m_j``, the corresponding output
   and input attributes share the same name.

Executions of ``W`` form the *provenance relation* ``R`` over
``A = ∪_i (I_i ∪ O_i)``, satisfying every functional dependency
``I_i -> O_i``.  This module builds the DAG (on top of :mod:`networkx`),
validates the wiring rules, executes workflows, materializes provenance
relations, and computes the data-sharing degree γ of Definition 3.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import networkx as nx

from ..exceptions import CycleError, SchemaError, WiringError, WorkflowError
from .attributes import Attribute, Schema, Value
from .module import Module
from .relation import Relation

__all__ = ["Workflow"]


class Workflow:
    """A DAG of modules with a joint provenance relation.

    Parameters
    ----------
    modules:
        The modules of the workflow.  Module names must be unique.
    name:
        Optional workflow name used in reports.
    """

    def __init__(self, modules: Iterable[Module], name: str = "workflow") -> None:
        self.name = name
        self._modules: dict[str, Module] = {}
        for module in modules:
            if module.name in self._modules:
                raise WorkflowError(f"duplicate module name {module.name!r}")
            self._modules[module.name] = module
        if not self._modules:
            raise WorkflowError("a workflow needs at least one module")
        self._validate_wiring()
        self._graph = self._build_graph()
        self._check_acyclic()
        self._order = tuple(nx.topological_sort(self._graph))
        self._schema = self._build_schema()
        self._relation_cache: Relation | None = None

    # -- construction & validation --------------------------------------------
    def _validate_wiring(self) -> None:
        producers: dict[str, str] = {}
        attr_decl: dict[str, Attribute] = {}
        for module in self._modules.values():
            for attr in module.output_schema:
                if attr.name in producers:
                    raise WiringError(
                        f"attribute {attr.name!r} is produced by both "
                        f"{producers[attr.name]!r} and {module.name!r}"
                    )
                producers[attr.name] = module.name
            for attr in list(module.input_schema) + list(module.output_schema):
                declared = attr_decl.get(attr.name)
                if declared is None:
                    attr_decl[attr.name] = attr
                elif declared != attr:
                    raise WiringError(
                        f"attribute {attr.name!r} declared with different "
                        "domain or cost by different modules"
                    )
        self._producers = producers
        self._attr_decl = attr_decl

    def _build_graph(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        graph.add_nodes_from(self._modules)
        for module in self._modules.values():
            for name in module.input_names:
                producer = self._producers.get(name)
                if producer is not None and producer != module.name:
                    graph.add_edge(producer, module.name, attribute=name)
        return graph

    def _check_acyclic(self) -> None:
        if not nx.is_directed_acyclic_graph(self._graph):
            cycle = nx.find_cycle(self._graph)
            raise CycleError(f"workflow module graph has a cycle: {cycle}")

    def _build_schema(self) -> Schema:
        schema = Schema(())
        for name in self._order:
            schema = schema.union(self._modules[name].schema)
        return schema

    # -- basic accessors --------------------------------------------------------
    @property
    def modules(self) -> tuple[Module, ...]:
        """Modules in topological order."""
        return tuple(self._modules[name] for name in self._order)

    @property
    def module_names(self) -> tuple[str, ...]:
        return self._order

    def module(self, name: str) -> Module:
        try:
            return self._modules[name]
        except KeyError as exc:
            raise WorkflowError(f"unknown module {name!r}") from exc

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules)

    def __contains__(self, name: str) -> bool:
        return name in self._modules

    @property
    def graph(self) -> nx.DiGraph:
        """The module dependency graph (copy-free; treat as read-only)."""
        return self._graph

    @property
    def schema(self) -> Schema:
        """Schema over all workflow attributes ``A = ∪_i (I_i ∪ O_i)``."""
        return self._schema

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return self._schema.names

    @property
    def private_modules(self) -> tuple[Module, ...]:
        return tuple(m for m in self.modules if m.private)

    @property
    def public_modules(self) -> tuple[Module, ...]:
        return tuple(m for m in self.modules if m.public)

    @property
    def is_all_private(self) -> bool:
        """True if every module is private (the Section 4 setting)."""
        return all(m.private for m in self.modules)

    def with_attribute_costs(self, costs: Mapping[str, float]) -> "Workflow":
        """Copy of the workflow with some attribute hiding costs overridden.

        Attribute names absent from ``costs`` keep their declared cost; an
        unknown name raises :class:`SchemaError`.  Module relations and the
        provenance relation are shared with this workflow (privacy analysis
        never depends on costs), which is what lets the engine's derivation
        cache reuse requirement lists across what-if cost scenarios.
        """
        unknown = set(costs) - set(self._schema.names)
        if unknown:
            raise SchemaError(
                f"unknown attributes in cost override {sorted(unknown)!r}"
            )
        clone = Workflow(
            (module.with_attribute_costs(costs) for module in self.modules),
            name=self.name,
        )
        clone._relation_cache = self._relation_cache
        return clone

    # -- attribute roles ---------------------------------------------------------
    @property
    def initial_inputs(self) -> tuple[str, ...]:
        """Attributes not produced by any module (external workflow inputs)."""
        return tuple(
            name for name in self._schema.names if name not in self._producers
        )

    @property
    def final_outputs(self) -> tuple[str, ...]:
        """Attributes produced by some module and consumed by none."""
        consumed = {
            name for module in self.modules for name in module.input_names
        }
        return tuple(
            name
            for name in self._schema.names
            if name in self._producers and name not in consumed
        )

    @property
    def intermediate_attributes(self) -> tuple[str, ...]:
        """Attributes produced by one module and consumed by another."""
        consumed = {
            name for module in self.modules for name in module.input_names
        }
        return tuple(
            name
            for name in self._schema.names
            if name in self._producers and name in consumed
        )

    def producer_of(self, attribute: str) -> Module | None:
        """The module producing ``attribute``, or ``None`` for initial inputs."""
        if attribute not in self._schema:
            raise SchemaError(f"unknown attribute {attribute!r}")
        name = self._producers.get(attribute)
        return self._modules[name] if name is not None else None

    def consumers_of(self, attribute: str) -> tuple[Module, ...]:
        """Modules that take ``attribute`` as input (may be empty)."""
        if attribute not in self._schema:
            raise SchemaError(f"unknown attribute {attribute!r}")
        return tuple(
            module for module in self.modules if attribute in module.input_names
        )

    def data_sharing_degree(self) -> int:
        """γ of Definition 3: max #modules any single attribute feeds into."""
        return max(
            (len(self.consumers_of(name)) for name in self._schema.names),
            default=0,
        )

    def has_bounded_data_sharing(self, gamma: int) -> bool:
        """True iff the workflow has γ-bounded data sharing."""
        return self.data_sharing_degree() <= gamma

    def functional_dependencies(
        self,
    ) -> tuple[tuple[tuple[str, ...], tuple[str, ...]], ...]:
        """The FD set ``F = {I_i -> O_i}`` as (determinant, dependent) pairs."""
        return tuple(
            (module.input_names, module.output_names) for module in self.modules
        )

    # -- execution ----------------------------------------------------------------
    def run(self, initial_inputs: Mapping[str, Value]) -> dict[str, Value]:
        """Execute the workflow once and return the full attribute assignment.

        ``initial_inputs`` must assign a value to every initial input
        attribute.  The returned dict covers all attributes of ``A``.
        """
        missing = set(self.initial_inputs) - set(initial_inputs)
        if missing:
            raise WorkflowError(
                f"missing initial inputs: {sorted(missing)}"
            )
        state: dict[str, Value] = {
            name: initial_inputs[name] for name in self.initial_inputs
        }
        self._schema.validate_assignment(state)
        for name in self._order:
            module = self._modules[name]
            state.update(module.apply(state))
        return state

    def run_many(
        self, inputs: Iterable[Mapping[str, Value]]
    ) -> list[dict[str, Value]]:
        """Execute the workflow on several initial-input assignments."""
        return [self.run(assignment) for assignment in inputs]

    # -- provenance relation ---------------------------------------------------------
    def provenance_relation(self) -> Relation:
        """The full provenance relation ``R`` over all executions.

        Every assignment of the initial input attributes is executed once; the
        result is the relation of Section 2.3 (equal to the join of the module
        relations restricted to reachable inputs).  The result is cached.
        """
        if self._relation_cache is None:
            rows = [
                self.run(assignment)
                for assignment in self._schema.iter_assignments(self.initial_inputs)
            ]
            self._relation_cache = Relation(self._schema, rows, check_domains=False)
        return self._relation_cache

    def provenance_relation_for(
        self, initial_inputs: Iterable[Mapping[str, Value]]
    ) -> Relation:
        """Provenance relation restricted to the given executions."""
        rows = [self.run(assignment) for assignment in initial_inputs]
        return Relation(self._schema, rows, check_domains=False)

    def join_relation(self) -> Relation:
        """``R_1 ⋈ R_2 ⋈ ... ⋈ R_n`` computed by natural joins.

        This is the algebraic definition of the provenance relation used in
        Section 4.  For workflows whose modules are total functions over
        their input domains this coincides with :meth:`provenance_relation`
        projected on attributes reachable from the initial inputs; it is
        exposed separately so tests can cross-check the two constructions.
        """
        relation: Relation | None = None
        for module in self.modules:
            relation = (
                module.relation()
                if relation is None
                else relation.natural_join(module.relation())
            )
        assert relation is not None
        return relation

    # -- derived workflows ------------------------------------------------------------
    def with_privatized(self, module_names: Iterable[str]) -> "Workflow":
        """Copy of the workflow with the given public modules made private.

        Privatization (Section 5.1) hides the identity of a public module so
        the adversary can no longer use its known functionality; the module
        then behaves like a private module in the possible-worlds semantics.
        """
        to_privatize = set(module_names)
        unknown = to_privatize - set(self._modules)
        if unknown:
            raise WorkflowError(f"unknown modules {sorted(unknown)!r}")
        new_modules = []
        for module in self.modules:
            if module.name in to_privatize and module.public:
                new_modules.append(module.as_private())
            else:
                new_modules.append(module)
        return Workflow(new_modules, name=self.name)

    def with_modules_replaced(self, replacements: Mapping[str, Module]) -> "Workflow":
        """Copy of the workflow with some modules swapped for new ones.

        Replacement modules must keep the same name and schemas; this is the
        primitive behind possible-world construction (replacing ``m_j`` by the
        flipped module ``g_j`` of Lemma 1).
        """
        new_modules = []
        for module in self.modules:
            replacement = replacements.get(module.name, module)
            if replacement.name != module.name:
                raise WorkflowError(
                    "replacement module must keep the original name "
                    f"({module.name!r} -> {replacement.name!r})"
                )
            if (
                replacement.input_names != module.input_names
                or replacement.output_names != module.output_names
            ):
                raise WorkflowError(
                    f"replacement for {module.name!r} changes its schema"
                )
            new_modules.append(replacement)
        return Workflow(new_modules, name=self.name)

    # -- costs -------------------------------------------------------------------------
    def attribute_cost(self, names: Iterable[str]) -> float:
        """Total hiding cost ``c(V̄) = Σ c(a)`` of a set of attributes."""
        return self._schema.total_cost(names)

    def privatization_cost(self, module_names: Iterable[str]) -> float:
        """Total privatization cost ``c(P̄) = Σ c(m)`` of hidden public modules."""
        total = 0.0
        for name in module_names:
            module = self.module(name)
            if module.private:
                continue
            total += module.privatization_cost
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Workflow({self.name!r}, modules={len(self)}, "
            f"attributes={len(self._schema)}, gamma={self.data_sharing_degree()})"
        )
