"""The workflow Secure-View optimization problem (Sections 4.2 and 5.2).

A :class:`SecureViewProblem` packages everything the optimization layer
needs: the workflow, the privacy parameter Γ, a requirement list per private
module (set or cardinality constraints), and which attributes may be hidden.
Feasibility of a candidate solution is:

* **all-private workflows** — for every private module some option of its
  requirement list is covered by the hidden attribute set;
* **general workflows** — additionally, every *public* module with a hidden
  input or output attribute must be privatized (this is constraint (21) of
  the general LP in Appendix C.4), and privatized modules contribute their
  privatization cost.

The :meth:`SecureViewProblem.solve` dispatcher routes to the algorithms in
:mod:`repro.optim` by name so examples and benchmarks can switch solvers
with a single string.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..exceptions import RequirementError
from .requirements import (
    CardinalityRequirementList,
    RequirementList,
    SetRequirementList,
    derive_workflow_requirements,
)
from .view import SecureViewSolution
from .workflow import Workflow

__all__ = ["SecureViewProblem"]


@dataclass
class SecureViewProblem:
    """An instance of the (workflow) Secure-View optimization problem.

    Attributes
    ----------
    workflow:
        The workflow whose provenance view is being secured.
    gamma:
        The privacy requirement Γ (recorded for reporting; requirement lists
        already encode what Γ demands of each module).
    requirements:
        Mapping from private-module name to its requirement list.  All lists
        must be of the same kind (all set constraints or all cardinality
        constraints).
    hidable_attributes:
        Attributes allowed to be hidden; defaults to every workflow
        attribute.
    allow_privatization:
        Whether public modules may be privatized (Section 5).  When false
        and the workflow has public modules adjacent to hidden attributes,
        solutions touching them are infeasible.
    """

    workflow: Workflow
    gamma: int
    requirements: Mapping[str, RequirementList]
    hidable_attributes: frozenset[str] | None = None
    allow_privatization: bool = True
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.requirements:
            raise RequirementError("a Secure-View problem needs requirement lists")
        kinds = {type(req) for req in self.requirements.values()}
        if len(kinds) > 1:
            raise RequirementError(
                "requirement lists must all be set constraints or all "
                "cardinality constraints"
            )
        for name, req in self.requirements.items():
            module = self.workflow.module(name)
            if not module.private:
                raise RequirementError(
                    f"module {name!r} is public; only private modules carry "
                    "privacy requirements"
                )
            req.validate_against(module)
        if self.hidable_attributes is None:
            self.hidable_attributes = frozenset(self.workflow.attribute_names)
        else:
            unknown = set(self.hidable_attributes) - set(self.workflow.attribute_names)
            if unknown:
                raise RequirementError(
                    f"unknown hidable attributes {sorted(unknown)!r}"
                )
            self.hidable_attributes = frozenset(self.hidable_attributes)

    # -- constructors -----------------------------------------------------------
    @classmethod
    def from_standalone_analysis(
        cls,
        workflow: Workflow,
        gamma: int,
        kind: str = "set",
        allow_privatization: bool = True,
        backend: str | None = None,
    ) -> "SecureViewProblem":
        """Build a problem by deriving requirement lists from the modules.

        Uses standalone privacy analysis (Section 3) on each private module;
        by Theorems 4/8 satisfying these lists yields Γ-workflow-privacy.
        """
        requirements = derive_workflow_requirements(
            workflow, gamma, kind=kind, backend=backend
        )
        return cls(
            workflow,
            gamma,
            requirements,
            allow_privatization=allow_privatization,
        )

    # -- basic properties ----------------------------------------------------------
    @property
    def constraint_kind(self) -> str:
        """``"set"`` or ``"cardinality"``."""
        first = next(iter(self.requirements.values()))
        return "set" if isinstance(first, SetRequirementList) else "cardinality"

    @property
    def is_all_private(self) -> bool:
        return self.workflow.is_all_private

    @property
    def lmax(self) -> int:
        """``l_max``: the longest requirement list (drives approximation factors)."""
        return max(len(req) for req in self.requirements.values())

    def attribute_costs(self) -> dict[str, float]:
        return {attr.name: attr.cost for attr in self.workflow.schema}

    def privatization_costs(self) -> dict[str, float]:
        return {
            module.name: module.privatization_cost
            for module in self.workflow.public_modules
        }

    # -- feasibility ------------------------------------------------------------------
    def requirement_satisfied(self, module_name: str, hidden: Iterable[str]) -> bool:
        """Is module ``module_name``'s requirement met by the hidden set?"""
        requirement = self.requirements[module_name]
        hidden_set = set(hidden)
        if isinstance(requirement, SetRequirementList):
            return requirement.satisfied_by(hidden_set)
        if isinstance(requirement, CardinalityRequirementList):
            return requirement.satisfied_by(
                hidden_set, self.workflow.module(module_name)
            )
        raise RequirementError(f"unsupported requirement type {type(requirement)!r}")

    def required_privatizations(self, hidden: Iterable[str]) -> frozenset[str]:
        """Public modules forced into ``P̄`` by hiding these attributes."""
        hidden_set = set(hidden)
        return frozenset(
            module.name
            for module in self.workflow.public_modules
            if hidden_set & set(module.attribute_names)
        )

    def is_feasible(
        self,
        hidden_attributes: Iterable[str],
        privatized_modules: Iterable[str] = (),
    ) -> bool:
        """Full feasibility check for a candidate (V̄, P̄)."""
        hidden_set = set(hidden_attributes)
        if not hidden_set <= set(self.hidable_attributes):
            return False
        for module_name in self.requirements:
            if not self.requirement_satisfied(module_name, hidden_set):
                return False
        needed = self.required_privatizations(hidden_set)
        if not needed:
            return True
        if not self.allow_privatization:
            return False
        return needed <= set(privatized_modules)

    def validate_solution(self, solution: SecureViewSolution) -> None:
        """Raise :class:`RequirementError` if the solution is infeasible."""
        if not self.is_feasible(
            solution.hidden_attributes, solution.privatized_modules
        ):
            raise RequirementError("solution does not satisfy the Secure-View instance")

    def solution_cost(
        self,
        hidden_attributes: Iterable[str],
        privatized_modules: Iterable[str] = (),
    ) -> float:
        """``c(V̄) + c(P̄)`` for a candidate solution."""
        costs = self.attribute_costs()
        module_costs = self.privatization_costs()
        total = sum(costs[name] for name in set(hidden_attributes))
        total += sum(module_costs[name] for name in set(privatized_modules))
        return total

    def make_solution(
        self,
        hidden_attributes: Iterable[str],
        privatized_modules: Iterable[str] | None = None,
        meta: dict | None = None,
    ) -> SecureViewSolution:
        """Package a hidden set (and implied privatizations) as a solution.

        If ``privatized_modules`` is omitted, the minimal privatization set
        forced by the hidden attributes is used.
        """
        hidden = frozenset(hidden_attributes)
        privatized = (
            frozenset(privatized_modules)
            if privatized_modules is not None
            else self.required_privatizations(hidden)
        )
        return SecureViewSolution(self.workflow, hidden, privatized, meta or {})

    # -- solving -----------------------------------------------------------------------
    def solve(self, method: str = "auto", **kwargs) -> SecureViewSolution:
        """Solve the instance with the named algorithm.

        Methods
        -------
        ``"exact"``
            Optimal solution by branch and bound (small instances, any kind).
        ``"lp_rounding"``
            Figure-3 LP relaxation + Algorithm-1 randomized rounding
            (cardinality constraints, all-private workflows).
        ``"set_lp"``
            ℓ_max-approximation by LP rounding (set constraints).
        ``"greedy"``
            Per-module cheapest option, (γ+1)-approximation for bounded data
            sharing.
        ``"general_lp"``
            ℓ_max-approximation with privatization variables (general
            workflows, set constraints).
        ``"auto"``
            Picks a sensible default based on the instance shape.
        """
        from ..optim import solve_secure_view  # local import to avoid a cycle

        return solve_secure_view(self, method=method, **kwargs)
