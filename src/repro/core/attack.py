"""Adversary simulation: reconstructing module functionality from a view.

Γ-privacy (Definition 5) promises that an adversary with unbounded
computational power who sees the provenance view cannot guess ``m(x)`` with
probability above ``1/Γ``.  This module plays that adversary:

* :func:`candidate_outputs` — the adversary's full uncertainty set for one
  input (a thin wrapper over the possible-worlds machinery),
* :func:`reconstruction_attack` — for every actual input of a target module,
  compute the uncertainty set and the adversary's best guessing probability,
* :class:`AttackReport` — a per-module summary (worst-case and average
  guessing probability, which inputs are fully exposed).

The attack is exact (it enumerates possible worlds), so it doubles as an
independent check of the privacy guarantees: tests assert that on a
Γ-private view no input's guessing probability exceeds ``1/Γ``, and that on
an unprotected view the attack recovers the module's true function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..exceptions import PrivacyError
from .attributes import Value
from .possible_worlds import workflow_out_sets
from .relation import Relation
from .workflow import Workflow

__all__ = [
    "InputExposure",
    "AttackReport",
    "candidate_outputs",
    "reconstruction_attack",
]


@dataclass(frozen=True)
class InputExposure:
    """The adversary's view of one module input."""

    input_values: tuple[Value, ...]
    candidates: frozenset[tuple[Value, ...]]
    true_output: tuple[Value, ...]

    @property
    def guessing_probability(self) -> float:
        """Best probability of guessing the output (uniform over candidates)."""
        return 1.0 / len(self.candidates)

    @property
    def exposed(self) -> bool:
        """True when the adversary can pin the output down exactly."""
        return len(self.candidates) == 1

    @property
    def recovered_correctly(self) -> bool:
        """True when the only candidate is the true output."""
        return self.exposed and next(iter(self.candidates)) == self.true_output


@dataclass(frozen=True)
class AttackReport:
    """Summary of a reconstruction attack against one module."""

    module_name: str
    gamma_target: int | None
    exposures: tuple[InputExposure, ...]

    @property
    def worst_guessing_probability(self) -> float:
        return max(e.guessing_probability for e in self.exposures)

    @property
    def average_guessing_probability(self) -> float:
        return sum(e.guessing_probability for e in self.exposures) / len(self.exposures)

    @property
    def exposed_inputs(self) -> tuple[InputExposure, ...]:
        return tuple(e for e in self.exposures if e.exposed)

    @property
    def achieved_gamma(self) -> int:
        """The effective Γ the view provides: min candidate-set size."""
        return min(len(e.candidates) for e in self.exposures)

    @property
    def breaches_target(self) -> bool:
        """True when a target Γ was given and some input falls below it."""
        if self.gamma_target is None:
            return False
        return self.achieved_gamma < self.gamma_target

    def as_records(self) -> list[dict[str, object]]:
        """Flat records for the reporting layer."""
        return [
            {
                "input": exposure.input_values,
                "candidates": len(exposure.candidates),
                "guess_probability": exposure.guessing_probability,
                "exposed": exposure.exposed,
            }
            for exposure in self.exposures
        ]


def candidate_outputs(
    workflow: Workflow,
    module_name: str,
    x: Mapping[str, Value],
    visible: Iterable[str],
    hidden_public_modules: Iterable[str] = (),
    relation: Relation | None = None,
) -> frozenset[tuple[Value, ...]]:
    """The adversary's uncertainty set ``OUT_{x,W}`` for one input."""
    module = workflow.module(module_name)
    key = tuple(x[name] for name in module.input_names)
    out_sets = workflow_out_sets(
        workflow,
        module_name,
        visible,
        hidden_public_modules=hidden_public_modules,
        relation=relation,
    )
    try:
        return frozenset(out_sets[key])
    except KeyError as exc:
        raise PrivacyError(
            f"input {dict(x)!r} does not occur in the provenance relation"
        ) from exc


def reconstruction_attack(
    workflow: Workflow,
    module_name: str,
    visible: Iterable[str],
    hidden_public_modules: Iterable[str] = (),
    gamma_target: int | None = None,
    relation: Relation | None = None,
) -> AttackReport:
    """Attack one module: compute the uncertainty set of every actual input.

    The attack enumerates possible worlds once (shared across inputs) and is
    therefore only practical on the small instances the rest of the
    brute-force machinery targets; that is enough to validate (or break)
    privacy claims in tests, benchmarks and examples.
    """
    module = workflow.module(module_name)
    base = relation if relation is not None else workflow.provenance_relation()
    out_sets = workflow_out_sets(
        workflow,
        module_name,
        visible,
        hidden_public_modules=hidden_public_modules,
        relation=base,
    )
    true_outputs: dict[tuple[Value, ...], tuple[Value, ...]] = {}
    for row in base:
        key = tuple(row[name] for name in module.input_names)
        true_outputs[key] = tuple(row[name] for name in module.output_names)

    exposures = []
    for key, candidates in sorted(out_sets.items()):
        exposures.append(
            InputExposure(
                input_values=key,
                candidates=frozenset(candidates),
                true_output=true_outputs[key],
            )
        )
    if not exposures:
        raise PrivacyError(
            f"module {module_name!r} has no executions to attack"
        )
    return AttackReport(
        module_name=module_name,
        gamma_target=gamma_target,
        exposures=tuple(exposures),
    )
