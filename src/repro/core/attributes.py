"""Attributes and finite domains.

The paper models every data item flowing through a workflow as an
*attribute* ``a`` with a finite (but arbitrarily large) domain ``Delta_a``
(Section 2.1).  This module provides:

* :class:`Domain` — an immutable finite domain of hashable values,
* :class:`Attribute` — a named attribute bound to a domain and a hiding cost,
* :class:`Schema` — an ordered collection of attributes with name lookup.

Domains are deliberately tiny objects: the library enumerates cartesian
products of domains when materializing module relations and possible worlds,
so all the combinatorial blow-up the paper talks about (``N <= delta^k``)
shows up here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from ..exceptions import DomainError, SchemaError

__all__ = [
    "Domain",
    "BOOLEAN",
    "Attribute",
    "Schema",
    "boolean_attributes",
    "integer_domain",
]

Value = Hashable


@dataclass(frozen=True)
class Domain:
    """A finite domain of attribute values.

    Parameters
    ----------
    values:
        The allowed values, in a canonical order.  Values must be hashable
        and are de-duplicated while preserving order.
    name:
        Optional human-readable name (``"bool"``, ``"int8"`` ...).
    """

    values: tuple[Value, ...]
    name: str = ""

    def __init__(self, values: Iterable[Value], name: str = "") -> None:
        seen: dict[Value, None] = {}
        for value in values:
            seen.setdefault(value, None)
        if not seen:
            raise DomainError("a Domain must contain at least one value")
        object.__setattr__(self, "values", tuple(seen))
        object.__setattr__(self, "name", name or f"domain{len(seen)}")

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Value]:
        return iter(self.values)

    def __contains__(self, value: Value) -> bool:
        return value in self.values

    @property
    def size(self) -> int:
        """Number of values in the domain (``|Delta_a|`` in the paper)."""
        return len(self.values)

    def index(self, value: Value) -> int:
        """Position of ``value`` in the canonical order."""
        try:
            return self.values.index(value)
        except ValueError as exc:  # pragma: no cover - defensive
            raise DomainError(f"{value!r} not in domain {self.name}") from exc

    def validate(self, value: Value) -> Value:
        """Return ``value`` if it belongs to the domain, raise otherwise."""
        if value not in self.values:
            raise DomainError(
                f"value {value!r} is not in domain {self.name} "
                f"(allowed: {self.values!r})"
            )
        return value


#: The 0/1 boolean domain used by most of the paper's examples.
BOOLEAN = Domain((0, 1), name="bool")


def integer_domain(size: int, start: int = 0) -> Domain:
    """Return the domain ``{start, ..., start + size - 1}``.

    Convenient for identifiers (such as the ``id`` attribute in the
    Theorem 1 construction) and for experimenting with non-boolean domains.
    """
    if size <= 0:
        raise DomainError("integer_domain requires size >= 1")
    return Domain(range(start, start + size), name=f"int{size}")


@dataclass(frozen=True)
class Attribute:
    """A named data item with a finite domain and a hiding cost.

    The cost ``c(a)`` is the utility lost when the attribute is hidden from
    the provenance view (Section 2.2).  Costs are non-negative floats; the
    default cost is 1 so that uncosted problems count hidden attributes.
    """

    name: str
    domain: Domain = field(default=BOOLEAN)
    cost: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be a non-empty string")
        if self.cost < 0:
            raise SchemaError(f"attribute {self.name!r} has negative cost")

    def with_cost(self, cost: float) -> "Attribute":
        """Return a copy of this attribute with a different hiding cost."""
        return Attribute(self.name, self.domain, cost)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class Schema:
    """An ordered set of attributes with fast name lookup.

    A :class:`Schema` behaves like an ordered mapping from attribute name to
    :class:`Attribute`.  Relations, modules and workflows all carry schemas;
    the order is the column order used when tuples are materialized.
    """

    __slots__ = ("_attributes", "_by_name")

    def __init__(self, attributes: Iterable[Attribute]) -> None:
        attrs = tuple(attributes)
        by_name: dict[str, Attribute] = {}
        for attr in attrs:
            if attr.name in by_name:
                raise SchemaError(f"duplicate attribute name {attr.name!r}")
            by_name[attr.name] = attr
        self._attributes = attrs
        self._by_name = by_name

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Attribute):
            return item.name in self._by_name
        return item in self._by_name

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise SchemaError(f"unknown attribute {name!r}") from exc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(self.names)
        return f"Schema({names})"

    # -- accessors ----------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names in column order."""
        return tuple(attr.name for attr in self._attributes)

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    def domain_of(self, name: str) -> Domain:
        return self[name].domain

    def cost_of(self, name: str) -> float:
        return self[name].cost

    def total_cost(self, names: Iterable[str] | None = None) -> float:
        """Sum of hiding costs of ``names`` (all attributes if ``None``)."""
        if names is None:
            return sum(attr.cost for attr in self._attributes)
        return sum(self[name].cost for name in names)

    # -- construction helpers -----------------------------------------------
    def subset(self, names: Iterable[str]) -> "Schema":
        """Schema restricted to ``names``, keeping this schema's order."""
        wanted = set(names)
        unknown = wanted - set(self.names)
        if unknown:
            raise SchemaError(f"unknown attributes {sorted(unknown)!r}")
        return Schema(attr for attr in self._attributes if attr.name in wanted)

    def union(self, other: "Schema") -> "Schema":
        """Union of two schemas; shared names must be identical attributes."""
        merged: dict[str, Attribute] = {a.name: a for a in self._attributes}
        for attr in other:
            existing = merged.get(attr.name)
            if existing is not None and existing != attr:
                raise SchemaError(
                    f"attribute {attr.name!r} declared twice with different "
                    "domain or cost"
                )
            merged.setdefault(attr.name, attr)
        return Schema(merged.values())

    def project_order(self, names: Iterable[str]) -> tuple[str, ...]:
        """Return ``names`` re-ordered to match this schema's column order."""
        wanted = set(names)
        unknown = wanted - set(self.names)
        if unknown:
            raise SchemaError(f"unknown attributes {sorted(unknown)!r}")
        return tuple(name for name in self.names if name in wanted)

    def iter_assignments(
        self, names: Sequence[str] | None = None
    ) -> Iterator[dict[str, Value]]:
        """Iterate over all assignments of ``names`` (cartesian product).

        This is the enumeration primitive behind relation materialization
        and the possible-worlds machinery.  The iteration order is the
        lexicographic order induced by each domain's canonical order.
        """
        if names is None:
            names = self.names
        domains = [self[name].domain.values for name in names]
        for combo in itertools.product(*domains):
            yield dict(zip(names, combo))

    def assignment_count(self, names: Sequence[str] | None = None) -> int:
        """Number of assignments :meth:`iter_assignments` would yield."""
        if names is None:
            names = self.names
        count = 1
        for name in names:
            count *= self[name].domain.size
        return count

    def validate_assignment(self, assignment: Mapping[str, Value]) -> None:
        """Check that ``assignment`` maps known attributes to legal values."""
        for name, value in assignment.items():
            self[name].domain.validate(value)


def boolean_attributes(
    names: Iterable[str], costs: Mapping[str, float] | float | None = None
) -> list[Attribute]:
    """Build a list of boolean attributes, optionally with costs.

    ``costs`` may be a mapping from name to cost, a single float applied to
    every attribute, or ``None`` for unit costs.
    """
    attrs = []
    for name in names:
        if costs is None:
            cost = 1.0
        elif isinstance(costs, Mapping):
            cost = float(costs.get(name, 1.0))
        else:
            cost = float(costs)
        attrs.append(Attribute(name, BOOLEAN, cost))
    return attrs
