"""Provenance views and secure-view solutions.

A *provenance view* (Section 2.2) is the projection of a provenance relation
on the attributes the workflow owner decided to keep visible.  A
*secure-view solution* additionally records which public modules were
privatized (Section 5) and carries the cost bookkeeping used throughout the
optimization layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..exceptions import SchemaError
from .costs import solution_cost
from .relation import Relation
from .workflow import Workflow

__all__ = ["ProvenanceView", "SecureViewSolution"]


@dataclass(frozen=True)
class ProvenanceView:
    """The view ``R_V = pi_V(R)`` a user is shown.

    Attributes
    ----------
    workflow:
        The underlying workflow.
    visible_attributes:
        The visible attribute set ``V``.
    hidden_public_modules:
        Names of public modules whose identity is hidden (privatized).
    """

    workflow: Workflow
    visible_attributes: frozenset[str]
    hidden_public_modules: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        all_names = set(self.workflow.attribute_names)
        unknown = set(self.visible_attributes) - all_names
        if unknown:
            raise SchemaError(f"unknown visible attributes {sorted(unknown)!r}")
        unknown_modules = set(self.hidden_public_modules) - set(
            self.workflow.module_names
        )
        if unknown_modules:
            raise SchemaError(f"unknown modules {sorted(unknown_modules)!r}")

    @classmethod
    def from_hidden(
        cls,
        workflow: Workflow,
        hidden_attributes: Iterable[str],
        hidden_public_modules: Iterable[str] = (),
    ) -> "ProvenanceView":
        """Build a view by specifying the hidden side ``V̄`` instead of ``V``."""
        hidden = set(hidden_attributes)
        visible = frozenset(set(workflow.attribute_names) - hidden)
        return cls(workflow, visible, frozenset(hidden_public_modules))

    @property
    def hidden_attributes(self) -> frozenset[str]:
        """``V̄ = A \\ V``."""
        return frozenset(set(self.workflow.attribute_names) - self.visible_attributes)

    @property
    def visible_public_modules(self) -> frozenset[str]:
        """Public modules whose identity (and functionality) stays known."""
        return frozenset(
            module.name
            for module in self.workflow.public_modules
            if module.name not in self.hidden_public_modules
        )

    def relation(self) -> Relation:
        """The visible relation ``pi_V(R)`` over all executions."""
        return self.workflow.provenance_relation().project(self.visible_attributes)

    def hiding_cost(self) -> float:
        """``c(V̄)``: total cost of the hidden attributes."""
        return self.workflow.attribute_cost(self.hidden_attributes)

    def privatization_cost(self) -> float:
        """``c(P̄)``: total cost of the privatized public modules."""
        return self.workflow.privatization_cost(self.hidden_public_modules)

    def total_cost(self) -> float:
        return self.hiding_cost() + self.privatization_cost()

    def restrict(self, attributes: Iterable[str]) -> "ProvenanceView":
        """A coarser view showing only ``attributes ∩ V`` (Proposition 1)."""
        return ProvenanceView(
            self.workflow,
            frozenset(self.visible_attributes) & set(attributes),
            self.hidden_public_modules,
        )


@dataclass(frozen=True)
class SecureViewSolution:
    """A candidate solution to a Secure-View problem instance.

    ``hidden_attributes`` is ``V̄`` and ``privatized_modules`` is ``P̄`` (empty
    in all-private workflows).  ``meta`` carries solver diagnostics (LP value,
    rounding seed, number of oracle calls, ...) that benchmarks report.
    """

    workflow: Workflow
    hidden_attributes: frozenset[str]
    privatized_modules: frozenset[str] = frozenset()
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        unknown = set(self.hidden_attributes) - set(self.workflow.attribute_names)
        if unknown:
            raise SchemaError(f"unknown hidden attributes {sorted(unknown)!r}")
        unknown_modules = set(self.privatized_modules) - set(self.workflow.module_names)
        if unknown_modules:
            raise SchemaError(f"unknown modules {sorted(unknown_modules)!r}")

    @property
    def visible_attributes(self) -> frozenset[str]:
        return frozenset(
            set(self.workflow.attribute_names) - set(self.hidden_attributes)
        )

    def cost(self) -> float:
        """``c(V̄) + c(P̄)`` under the workflow's declared costs."""
        return solution_cost(
            self.workflow, self.hidden_attributes, self.privatized_modules
        )

    def view(self) -> ProvenanceView:
        """The provenance view this solution induces."""
        return ProvenanceView(
            self.workflow, self.visible_attributes, self.privatized_modules
        )

    def with_extra_hidden(self, attributes: Iterable[str]) -> "SecureViewSolution":
        """Solution with additional hidden attributes (still safe, Prop. 1)."""
        return SecureViewSolution(
            self.workflow,
            frozenset(set(self.hidden_attributes) | set(attributes)),
            self.privatized_modules,
            dict(self.meta),
        )
